//! O(expected faults) fault sampling.
//!
//! [`crate::FaultInjector::inject`] draws one uniform per cell, which is
//! O(array size) even at the paper's ~1e-5 mean fault rates where almost
//! every draw is a no-op. This module samples only the *faults*: cells
//! are partitioned by programmed level ([`LevelPartition`]), and for each
//! level the gaps between consecutive faulted cells are drawn from the
//! geometric distribution Geom(p) with `p = p_up + p_down`
//! ([`SparseFaultSampler`]). Each skip costs one uniform, so a trial
//! costs O(expected faults) uniforms instead of O(cells).
//!
//! The marginal distribution is exactly Binomial(n_level, p) faults per
//! level with independent uniform positions — the same law the per-cell
//! injector realizes — but the two samplers consume their RNG streams
//! differently, so equivalence is statistical, not bitwise. The per-cell
//! path is retained as the reference arm for the chi-square tests below.

use crate::fault::FaultMap;
use rand::Rng;

/// Cells of one storage structure partitioned by programmed level:
/// per-level ascending position lists plus the level histogram the
/// sampler (and exact expected-fault accounting) needs.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelPartition {
    /// `positions[l]` = ascending indices of the cells programmed to
    /// level `l`.
    positions: Vec<Vec<u32>>,
    num_cells: usize,
}

impl LevelPartition {
    /// Partitions `cells` by programmed level for a `levels`-level map.
    ///
    /// # Panics
    ///
    /// Panics if any cell's level is out of range, or if the array is too
    /// large for `u32` positions.
    pub fn new(cells: &[u8], levels: usize) -> Self {
        assert!(
            cells.len() <= u32::MAX as usize,
            "array too large for sparse sampling"
        );
        let mut positions: Vec<Vec<u32>> = vec![Vec::new(); levels];
        for (i, &c) in cells.iter().enumerate() {
            let level = c as usize;
            assert!(
                level < levels,
                "cell level {level} out of range ({levels} levels)"
            );
            positions[level].push(i as u32);
        }
        Self {
            positions,
            num_cells: cells.len(),
        }
    }

    /// Number of cells partitioned.
    pub fn num_cells(&self) -> usize {
        self.num_cells
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.positions.len()
    }

    /// Cells programmed to each level (`histogram()[l]` = count at `l`).
    pub fn histogram(&self) -> Vec<usize> {
        self.positions.iter().map(Vec::len).collect()
    }
}

/// Draws fault positions by geometric skips over a [`LevelPartition`].
#[derive(Debug, Clone)]
pub struct SparseFaultSampler {
    map: FaultMap,
}

impl SparseFaultSampler {
    /// Creates a sampler from a fault map.
    pub fn new(map: FaultMap) -> Self {
        Self { map }
    }

    /// The underlying fault map.
    pub fn map(&self) -> &FaultMap {
        &self.map
    }

    /// Samples one trial's faults: `(cell position, misread level)` pairs,
    /// sorted by position. Levels are visited in ascending order and
    /// positions within a level in ascending order, so the RNG stream —
    /// and therefore the output — is a pure function of (partition, rng
    /// state), independent of any scheduling.
    ///
    /// # Panics
    ///
    /// Panics if the partition has more levels than the map.
    pub fn sample_faults<R: Rng + ?Sized>(
        &self,
        partition: &LevelPartition,
        rng: &mut R,
    ) -> Vec<(u32, u8)> {
        let levels = self.map.num_levels();
        assert!(
            partition.num_levels() <= levels,
            "partition has {} levels, map has {levels}",
            partition.num_levels()
        );
        let mut out = Vec::new();
        for (level, positions) in partition.positions.iter().enumerate() {
            let p = self.map.p_total(level);
            if p <= 0.0 || positions.is_empty() {
                continue;
            }
            let n = positions.len();
            if p >= 1.0 {
                // Degenerate (rate-scaled) case: every cell faults.
                for &pos in positions {
                    out.push((pos, self.direction(level, p, rng)));
                }
                continue;
            }
            // Geometric skips: P(skip = j) = (1-p)^j · p, so each cell is
            // independently faulted with probability p and the per-level
            // fault count is Binomial(n, p). ln_1p keeps the log finite
            // and negative even when p is far below f64 epsilon (real SLC
            // rates are ~1e-100, where `(1.0 - p).ln()` would round to 0
            // and turn every skip into 0).
            let ln_q = (-p).ln_1p();
            let mut i = 0usize;
            loop {
                let u: f64 = rng.gen();
                // u < 1 always, so the log is finite and non-positive; the
                // float-to-usize cast saturates on overflow.
                let skip = ((1.0 - u).ln() / ln_q) as usize;
                i = i.saturating_add(skip);
                if i >= n {
                    break;
                }
                out.push((positions[i], self.direction(level, p, rng)));
                i += 1;
            }
        }
        out.sort_unstable_by_key(|&(pos, _)| pos);
        out
    }

    /// Given that a cell at `level` faulted (total rate `p`), draws the
    /// direction: up with probability `p_up / p`, down otherwise.
    fn direction<R: Rng + ?Sized>(&self, level: usize, p: f64, rng: &mut R) -> u8 {
        let d: f64 = rng.gen();
        if d * p < self.map.p_up(level) {
            (level + 1) as u8
        } else {
            (level - 1) as u8
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultInjector;
    use rand::SeedableRng;

    fn map(levels: usize, up: f64, down: f64) -> FaultMap {
        let mut u = vec![up; levels];
        let mut d = vec![down; levels];
        *u.last_mut().unwrap() = 0.0;
        d[0] = 0.0;
        FaultMap::new(u, d)
    }

    fn test_cells(n: usize, levels: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 7 + 3) % levels) as u8).collect()
    }

    #[test]
    fn partition_round_trips_positions() {
        let cells = test_cells(100, 4);
        let part = LevelPartition::new(&cells, 4);
        assert_eq!(part.num_cells(), 100);
        assert_eq!(part.histogram().iter().sum::<usize>(), 100);
        for (level, positions) in (0..4).map(|l| (l, &part.positions[l])) {
            assert!(positions.windows(2).all(|w| w[0] < w[1]), "unsorted");
            for &pos in positions {
                assert_eq!(cells[pos as usize] as usize, level);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn partition_rejects_out_of_range_levels() {
        LevelPartition::new(&[7u8], 4);
    }

    #[test]
    fn perfect_map_samples_no_faults() {
        let sampler = SparseFaultSampler::new(FaultMap::perfect(8));
        let part = LevelPartition::new(&test_cells(1000, 8), 8);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert!(sampler.sample_faults(&part, &mut rng).is_empty());
    }

    #[test]
    fn sub_epsilon_rates_sample_no_spurious_faults() {
        // Real SLC rates sit far below f64 epsilon; a naive `(1-p).ln()`
        // rounds to zero there and every skip collapses to 0.
        let sampler = SparseFaultSampler::new(map(2, 1e-100, 1e-100));
        let part = LevelPartition::new(&test_cells(4096, 2), 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..20 {
            assert!(sampler.sample_faults(&part, &mut rng).is_empty());
        }
    }

    #[test]
    fn faults_are_adjacent_sorted_and_unique() {
        let sampler = SparseFaultSampler::new(map(4, 0.05, 0.03));
        let cells = test_cells(5000, 4);
        let part = LevelPartition::new(&cells, 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let faults = sampler.sample_faults(&part, &mut rng);
            assert!(faults.windows(2).all(|w| w[0].0 < w[1].0));
            for &(pos, new) in &faults {
                let old = cells[pos as usize] as i16;
                assert_eq!((old - new as i16).abs(), 1, "non-adjacent fault");
            }
        }
    }

    #[test]
    fn saturated_rate_faults_every_cell() {
        let sampler = SparseFaultSampler::new(map(2, 1.0, 1.0));
        let part = LevelPartition::new(&test_cells(64, 2), 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        assert_eq!(sampler.sample_faults(&part, &mut rng).len(), 64);
    }

    #[test]
    fn sampler_output_is_pinned_per_seed() {
        let sampler = SparseFaultSampler::new(map(4, 0.02, 0.01));
        let part = LevelPartition::new(&test_cells(2000, 4), 4);
        let draw = |seed: u64| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            sampler.sample_faults(&part, &mut rng)
        };
        // Identical seed → identical faults; the stream is a pure function
        // of the seed, so any worker mapping trial → seed reproduces it.
        assert_eq!(draw(7), draw(7));
        assert_eq!(draw(8), draw(8));
        assert_ne!(draw(7), draw(8), "seeds must decorrelate trials");
    }

    /// Two-sample chi-square between the sparse sampler and the per-cell
    /// reference injector over per-(level, direction) fault totals.
    #[test]
    fn chi_square_matches_per_cell_reference() {
        const TRIALS: usize = 10_000;
        let levels = 4;
        let fmap = map(levels, 0.004, 0.002);
        let cells = test_cells(512, levels);
        let part = LevelPartition::new(&cells, levels);

        // Category index for a fault old → new: 2*old + (went up).
        let cat = |old: u8, new: u8| 2 * old as usize + usize::from(new > old);
        let mut sparse_counts = vec![0u64; 2 * levels];
        let mut ref_counts = vec![0u64; 2 * levels];

        let sampler = SparseFaultSampler::new(fmap.clone());
        let mut rng = rand::rngs::StdRng::seed_from_u64(101);
        for _ in 0..TRIALS {
            for (pos, new) in sampler.sample_faults(&part, &mut rng) {
                sparse_counts[cat(cells[pos as usize], new)] += 1;
            }
        }

        let injector = FaultInjector::new(fmap);
        let mut rng = rand::rngs::StdRng::seed_from_u64(202);
        let mut scratch = cells.clone();
        for _ in 0..TRIALS {
            scratch.copy_from_slice(&cells);
            injector.inject(&mut scratch, &mut rng);
            for (&old, &new) in cells.iter().zip(&scratch) {
                if old != new {
                    ref_counts[cat(old, new)] += 1;
                }
            }
        }

        // 6 live categories (top level never goes up, bottom never down);
        // χ²(df=6) < 22.46 at p = 0.001.
        let mut chi2 = 0.0f64;
        let mut live = 0;
        for (&a, &b) in sparse_counts.iter().zip(&ref_counts) {
            if a + b == 0 {
                continue;
            }
            live += 1;
            let (a, b) = (a as f64, b as f64);
            chi2 += (a - b).powi(2) / (a + b);
        }
        assert_eq!(live, 6, "sparse {sparse_counts:?} vs ref {ref_counts:?}");
        assert!(
            chi2 < 22.46,
            "chi-square {chi2:.2} over {live} categories: sparse {sparse_counts:?} vs reference {ref_counts:?}"
        );

        // Totals agree within 2% as a direct rate check.
        let s: u64 = sparse_counts.iter().sum();
        let r: u64 = ref_counts.iter().sum();
        let rel = (s as f64 - r as f64).abs() / r as f64;
        assert!(rel < 0.02, "sparse total {s} vs reference total {r}");
    }
}
