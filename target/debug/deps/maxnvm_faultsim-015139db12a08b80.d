/root/repo/target/debug/deps/maxnvm_faultsim-015139db12a08b80.d: crates/faultsim/src/lib.rs crates/faultsim/src/analytic.rs crates/faultsim/src/campaign.rs crates/faultsim/src/dse.rs crates/faultsim/src/evaluate.rs crates/faultsim/src/vulnerability.rs

/root/repo/target/debug/deps/maxnvm_faultsim-015139db12a08b80: crates/faultsim/src/lib.rs crates/faultsim/src/analytic.rs crates/faultsim/src/campaign.rs crates/faultsim/src/dse.rs crates/faultsim/src/evaluate.rs crates/faultsim/src/vulnerability.rs

crates/faultsim/src/lib.rs:
crates/faultsim/src/analytic.rs:
crates/faultsim/src/campaign.rs:
crates/faultsim/src/dse.rs:
crates/faultsim/src/evaluate.rs:
crates/faultsim/src/vulnerability.rs:
