//! Storage configuration: which encoding, how many bits per cell for
//! each structure, and what protection applies where.

use crate::{EncodingKind, StructureKind};
use maxnvm_ecc::SecDed;
use maxnvm_envm::MlcConfig;
use serde::{Deserialize, Serialize};

/// Which structures receive SEC-DED protection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EccScope {
    /// No ECC anywhere.
    None,
    /// Protect the alignment-critical metadata structures (CSR column
    /// indexes and row counters, the bitmask, IdxSync counters) — the
    /// paper's configuration.
    Metadata,
    /// Protect everything including weight values.
    All,
}

impl EccScope {
    /// Whether `kind` is protected under this scope.
    pub fn covers(self, kind: StructureKind) -> bool {
        match self {
            EccScope::None => false,
            EccScope::All => kind != StructureKind::Centroids,
            EccScope::Metadata => matches!(
                kind,
                StructureKind::ColIndex
                    | StructureKind::RowCounter
                    | StructureKind::Mask
                    | StructureKind::SyncCounter
            ),
        }
    }
}

/// Bits-per-cell per structure — the paper sweeps these independently
/// ("we vary the number of bits per cell used to store each structure",
/// §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StructureBpc {
    /// Weight values (cluster indices).
    pub values: MlcConfig,
    /// CSR relative column indexes.
    pub col_index: MlcConfig,
    /// CSR row counters.
    pub row_counter: MlcConfig,
    /// BitMask indicator bits.
    pub mask: MlcConfig,
    /// IdxSync counters.
    pub sync_counter: MlcConfig,
}

impl StructureBpc {
    /// All structures at the same bits-per-cell.
    pub fn uniform(bpc: MlcConfig) -> Self {
        Self {
            values: bpc,
            col_index: bpc,
            row_counter: bpc,
            mask: bpc,
            sync_counter: bpc,
        }
    }

    /// The setting for a given structure (centroids are always SLC).
    pub fn for_kind(&self, kind: StructureKind) -> MlcConfig {
        match kind {
            StructureKind::Values => self.values,
            StructureKind::ColIndex => self.col_index,
            StructureKind::RowCounter => self.row_counter,
            StructureKind::Mask => self.mask,
            StructureKind::SyncCounter => self.sync_counter,
            StructureKind::Centroids => MlcConfig::SLC,
        }
    }
}

/// A complete storage configuration for one layer: encoding choice,
/// per-structure density, and protection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageScheme {
    /// Sparse-encoding strategy.
    pub encoding: EncodingKind,
    /// Whether BitMask storage includes IdxSync counters.
    pub idx_sync: bool,
    /// ECC coverage.
    pub ecc: EccScope,
    /// SEC-DED block configuration used where ECC applies.
    pub ecc_code: SecDed,
    /// Bits-per-cell per structure.
    pub bpc: StructureBpc,
    /// Mask bits per IdxSync block (`IDXSYNC_BLOCK_BITS` = the paper's
    /// 128-byte alignment; stand-in models may scale it down with their
    /// layer sizes).
    pub sync_block_bits: usize,
}

impl StorageScheme {
    /// A uniform scheme: every structure at `bpc`, no protection.
    pub fn uniform(encoding: EncodingKind, bpc: MlcConfig) -> Self {
        Self {
            encoding,
            idx_sync: false,
            ecc: EccScope::None,
            ecc_code: SecDed::default_512b(),
            bpc: StructureBpc::uniform(bpc),
            sync_block_bits: crate::IDXSYNC_BLOCK_BITS,
        }
    }

    /// Overrides the IdxSync block size.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`.
    pub fn with_sync_block_bits(mut self, bits: usize) -> Self {
        assert!(bits > 0, "empty IdxSync block");
        self.sync_block_bits = bits;
        self
    }

    /// Enables IdxSync (meaningful for [`EncodingKind::BitMask`] only).
    pub fn with_idx_sync(mut self) -> Self {
        self.idx_sync = true;
        self
    }

    /// Enables metadata ECC.
    pub fn with_ecc(mut self) -> Self {
        self.ecc = EccScope::Metadata;
        self
    }

    /// Overrides the bits-per-cell map.
    pub fn with_bpc(mut self, bpc: StructureBpc) -> Self {
        self.bpc = bpc;
        self
    }

    /// The paper's label for this configuration, e.g. `"BitM+IdxSync"`.
    pub fn label(&self) -> String {
        let base = match self.encoding {
            EncodingKind::DenseClustered => "P+C",
            EncodingKind::Csr => "CSR",
            EncodingKind::BitMask => {
                if self.idx_sync {
                    "BitM+IdxSync"
                } else {
                    "BitMask"
                }
            }
        };
        if self.ecc != EccScope::None {
            format!("{base}+ECC")
        } else {
            base.to_string()
        }
    }

    /// The maximum bits-per-cell used by any structure (Table 4's "BPC").
    pub fn max_bpc(&self) -> MlcConfig {
        let mut kinds = vec![StructureKind::Values];
        match self.encoding {
            EncodingKind::Csr => {
                kinds.push(StructureKind::ColIndex);
                kinds.push(StructureKind::RowCounter);
            }
            EncodingKind::BitMask => {
                kinds.push(StructureKind::Mask);
                if self.idx_sync {
                    kinds.push(StructureKind::SyncCounter);
                }
            }
            EncodingKind::DenseClustered => {}
        }
        // `kinds` always contains Values, so the fallback is dead.
        kinds
            .into_iter()
            .map(|k| self.bpc.for_kind(k))
            .max()
            .unwrap_or_else(|| self.bpc.for_kind(StructureKind::Values))
    }
}
