//! Cross-tier differential tests: every SIMD tier this host supports
//! must produce bit-identical results to the scalar tier on the dense,
//! sparse, and row kernels — the uniform fused-multiply-add semantics
//! the `gemm` module documents. Tier pinning mutates process-global
//! dispatch state, so every test serializes on [`tier_lock`] and
//! restores detection before releasing it.

use maxnvm_dnn::gemm::{self, force_tier_for_tests, supported_tiers, SimdTier};
use maxnvm_dnn::{gemm_into, gemm_row_into, sparse_row_into, GemmScratch, SparseMatrix};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes tests that pin the dispatch tier (process-global state).
fn tier_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Clears the tier pin even if the test body panics. The held lock is
/// never read — it serializes the test for the guard's lifetime.
struct TierGuard {
    _lock: MutexGuard<'static, ()>,
}
impl TierGuard {
    fn new() -> Self {
        Self { _lock: tier_lock() }
    }
}
impl Drop for TierGuard {
    fn drop(&mut self) {
        force_tier_for_tests(None);
    }
}

fn random(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect()
}

/// Random matrix with roughly `sparsity` of the slots forced to zero.
fn random_sparse(len: usize, seed: u64, sparsity: f64) -> Vec<f32> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            if rng.gen::<f64>() < sparsity {
                0.0
            } else {
                rng.gen::<f32>() * 2.0 - 1.0
            }
        })
        .collect()
}

fn gemm_on_tier(tier: SimdTier, a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    force_tier_for_tests(Some(tier));
    let mut c = vec![0.0f32; m * n];
    gemm_into(&mut c, a, b, m, k, n, &mut GemmScratch::default());
    c
}

fn sparse_on_tier(tier: SimdTier, a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    force_tier_for_tests(Some(tier));
    let sp = SparseMatrix::from_dense(m, k, a);
    let mut c = vec![0.0f32; m * n];
    gemm::sparse_gemm_into(&mut c, &sp, b, n, &mut GemmScratch::default());
    c
}

fn assert_bits_eq(got: &[f32], want: &[f32], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{ctx}: element {i}: {g} vs {w}");
    }
}

/// Shapes with M/N/K remainders smaller than every tier's tile (the
/// widest is 8×32), straddling the KC panel split, plus exact-tile
/// shapes for each tier.
fn edge_shapes() -> Vec<(usize, usize, usize)> {
    let mut shapes = vec![
        (1, 1, 1),
        (7, 13, 31), // below every tile dimension
        (3, gemm::KC + 1, 5),
        (9, 2 * gemm::KC + 3, 33),
        (17, 40, 70),
    ];
    for t in supported_tiers() {
        shapes.push((t.mr(), 19, t.nr()));
        shapes.push((t.mr() + 1, gemm::KC, t.nr() + 1));
        shapes.push((t.mr() - 1, 9, t.nr() * 2 + 3));
        shapes.push((t.mc() + 1, 11, t.nr()));
    }
    shapes
}

#[test]
fn dense_kernel_is_bit_identical_across_tiers() {
    let _guard = TierGuard::new();
    let tiers = supported_tiers();
    for (m, k, n) in edge_shapes() {
        let a = random(m * k, 1000 + (m * 31 + k * 7 + n) as u64);
        let b = random(k * n, 2000 + (m * 31 + k * 7 + n) as u64);
        let reference = gemm_on_tier(SimdTier::Scalar, &a, &b, m, k, n);
        for &tier in &tiers[1..] {
            assert_bits_eq(
                &gemm_on_tier(tier, &a, &b, m, k, n),
                &reference,
                &format!("{m}x{k}x{n} on {}", tier.name()),
            );
        }
    }
}

#[test]
fn sparse_kernel_is_bit_identical_across_tiers_and_to_dense() {
    let _guard = TierGuard::new();
    let tiers = supported_tiers();
    // 0% (dense, routed through the density cutover), the Table-2
    // extremes (VGG12 prunes to 0.409 sparsity, LeNet5 to 0.899), and
    // 100% pruned.
    for sparsity in [0.0, 0.409, 0.899, 1.0] {
        for (m, k, n) in [(5, gemm::KC + 3, 21), (9, 37, 67), (8, 64, 32)] {
            let a = random_sparse(m * k, 7000 + (sparsity * 1000.0) as u64, sparsity);
            let b = random(k * n, 8000 + (m + n) as u64);
            let dense_ref = gemm_on_tier(SimdTier::Scalar, &a, &b, m, k, n);
            for &tier in &tiers {
                assert_bits_eq(
                    &sparse_on_tier(tier, &a, &b, m, k, n),
                    &dense_ref,
                    &format!("sparse {m}x{k}x{n} @ {sparsity} on {}", tier.name()),
                );
            }
        }
    }
}

#[test]
fn row_kernels_are_bit_identical_across_tiers() {
    let _guard = TierGuard::new();
    let (m, k, n) = (6, gemm::KC + 5, 45);
    let a = random_sparse(m * k, 91, 0.6);
    let b = random(k * n, 92);
    let sp = SparseMatrix::from_dense(m, k, &a);
    let reference = gemm_on_tier(SimdTier::Scalar, &a, &b, m, k, n);
    for tier in supported_tiers() {
        force_tier_for_tests(Some(tier));
        let mut row = vec![0.0f32; n];
        for i in 0..m {
            gemm_row_into(&mut row, &a[i * k..(i + 1) * k], &b, k, n);
            assert_bits_eq(
                &row,
                &reference[i * n..(i + 1) * n],
                &format!("dense row {i} on {}", tier.name()),
            );
            let (cols, vals) = sp.row(i);
            sparse_row_into(&mut row, cols, vals, &b, k, n);
            assert_bits_eq(
                &row,
                &reference[i * n..(i + 1) * n],
                &format!("sparse row {i} on {}", tier.name()),
            );
        }
    }
}

/// Real-thread fan-out (unlike the in-crate sequential fake): jobs run
/// concurrently on scoped threads.
#[derive(Debug)]
struct ThreadParallel(usize);
impl gemm::GemmParallel for ThreadParallel {
    fn max_jobs(&self) -> usize {
        self.0
    }
    fn run(&self, jobs: usize, task: &(dyn Fn(usize) + Sync)) {
        std::thread::scope(|s| {
            for j in 0..jobs {
                s.spawn(move || task(j));
            }
        });
    }
}

#[test]
fn parallel_fanout_is_bit_identical_on_every_tier() {
    let _guard = TierGuard::new();
    let (m, k, n) = (16, 300, 2 * gemm::PAR_MIN_COLS + 37);
    assert!(m * k * n >= gemm::PAR_MIN_WORK);
    let a = random(m * k, 171);
    let b = random(k * n, 172);
    let sa = random_sparse(m * k, 173, 0.8);
    let sp = SparseMatrix::from_dense(m, k, &sa);
    for tier in supported_tiers() {
        let serial = gemm_on_tier(tier, &a, &b, m, k, n);
        let sparse_serial = sparse_on_tier(tier, &sa, &b, m, k, n);
        for jobs in [2, 3, 5] {
            force_tier_for_tests(Some(tier));
            let mut scratch = GemmScratch::default();
            scratch.set_parallel(Some(std::sync::Arc::new(ThreadParallel(jobs))));
            let mut c = vec![0.0f32; m * n];
            gemm_into(&mut c, &a, &b, m, k, n, &mut scratch);
            assert_bits_eq(&c, &serial, &format!("{} jobs={jobs}", tier.name()));
            let mut cs = vec![0.0f32; m * n];
            gemm::sparse_gemm_into(&mut cs, &sp, &b, n, &mut scratch);
            assert_bits_eq(
                &cs,
                &sparse_serial,
                &format!("sparse {} jobs={jobs}", tier.name()),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random shapes and sparsities: all supported tiers agree bitwise
    /// with the scalar tier on the dense and sparse kernels.
    #[test]
    fn prop_tiers_agree_bitwise(
        m in 1usize..12, k in 1usize..40, n in 1usize..40,
        sparsity in 0.0f64..1.0, seed in any::<u64>()
    ) {
        let _guard = TierGuard::new();
        let a = random_sparse(m * k, seed, sparsity);
        let b = random(k * n, seed.wrapping_add(1));
        let reference = gemm_on_tier(SimdTier::Scalar, &a, &b, m, k, n);
        for tier in supported_tiers() {
            let dense = gemm_on_tier(tier, &a, &b, m, k, n);
            let sparse = sparse_on_tier(tier, &a, &b, m, k, n);
            for (g, w) in dense.iter().zip(&reference) {
                prop_assert_eq!(g.to_bits(), w.to_bits());
            }
            for (g, w) in sparse.iter().zip(&reference) {
                prop_assert_eq!(g.to_bits(), w.to_bits());
            }
        }
    }
}
