/root/repo/target/debug/deps/maxnvm-e78c123b08dadfd1.d: crates/core/src/bin/maxnvm.rs

/root/repo/target/debug/deps/maxnvm-e78c123b08dadfd1: crates/core/src/bin/maxnvm.rs

crates/core/src/bin/maxnvm.rs:
