/root/repo/target/debug/deps/fig11-a76036a4af4d06d5.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-a76036a4af4d06d5: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
