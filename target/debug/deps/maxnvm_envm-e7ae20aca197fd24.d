/root/repo/target/debug/deps/maxnvm_envm-e7ae20aca197fd24.d: crates/envm/src/lib.rs crates/envm/src/fault.rs crates/envm/src/gray.rs crates/envm/src/level.rs crates/envm/src/math.rs crates/envm/src/reference.rs crates/envm/src/retention.rs crates/envm/src/sense.rs crates/envm/src/tech.rs crates/envm/src/write.rs Cargo.toml

/root/repo/target/debug/deps/libmaxnvm_envm-e7ae20aca197fd24.rmeta: crates/envm/src/lib.rs crates/envm/src/fault.rs crates/envm/src/gray.rs crates/envm/src/level.rs crates/envm/src/math.rs crates/envm/src/reference.rs crates/envm/src/retention.rs crates/envm/src/sense.rs crates/envm/src/tech.rs crates/envm/src/write.rs Cargo.toml

crates/envm/src/lib.rs:
crates/envm/src/fault.rs:
crates/envm/src/gray.rs:
crates/envm/src/level.rs:
crates/envm/src/math.rs:
crates/envm/src/reference.rs:
crates/envm/src/retention.rs:
crates/envm/src/sense.rs:
crates/envm/src/tech.rs:
crates/envm/src/write.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
