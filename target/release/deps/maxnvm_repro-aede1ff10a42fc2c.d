/root/repo/target/release/deps/maxnvm_repro-aede1ff10a42fc2c.d: src/lib.rs

/root/repo/target/release/deps/libmaxnvm_repro-aede1ff10a42fc2c.rlib: src/lib.rs

/root/repo/target/release/deps/libmaxnvm_repro-aede1ff10a42fc2c.rmeta: src/lib.rs

src/lib.rs:
