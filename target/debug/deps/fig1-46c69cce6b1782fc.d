/root/repo/target/debug/deps/fig1-46c69cce6b1782fc.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-46c69cce6b1782fc: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
