//! Regenerates paper Fig. 10: average energy per ResNet50 inference as a
//! function of frame rate — on-chip MLC eNVM vs "DRAM always on" vs
//! "DRAM wake up".

use maxnvm::{baseline_design, optimal_design, CellTechnology, NvdlaConfig};
use maxnvm_dnn::zoo;
use maxnvm_encoding::EncodingKind;
use maxnvm_nvdla::nonvolatility::{
    always_on_crossover_fps, average_energy_per_inference_mj, IdlePolicy,
};
use maxnvm_nvdla::perf::encoded_weight_bytes;

fn main() {
    let model = zoo::resnet50();
    let cfg = NvdlaConfig::nvdla_1024();
    let base = baseline_design(&model, &cfg);
    let ctt = optimal_design(&model, CellTechnology::MlcCtt).expect("design");
    let rram = optimal_design(&model, CellTechnology::MlcRram).expect("design");
    let total_bytes: u64 = encoded_weight_bytes(&model, EncodingKind::BitMask, false)
        .iter()
        .sum();

    println!("Fig. 10: average energy per ResNet50 inference vs frame rate (NVDLA-1024)\n");
    println!(
        "{:>5} {:>16} {:>16} {:>14} {:>14} {:>10}",
        "FPS", "DRAM always-on", "DRAM wake-up", "MLC-CTT", "MLC-RRAM", "CTT gain"
    );
    for fps in [1.0, 5.0, 10.0, 22.0, 30.0, 60.0, 90.0, 120.0] {
        if fps > base.fps {
            break;
        }
        let on =
            average_energy_per_inference_mj(&base, &cfg, IdlePolicy::AlwaysOn, fps, total_bytes);
        let wake =
            average_energy_per_inference_mj(&base, &cfg, IdlePolicy::WakeUp, fps, total_bytes);
        let e_ctt = average_energy_per_inference_mj(
            &ctt.system_1024,
            &cfg,
            IdlePolicy::Envm,
            fps.min(ctt.system_1024.fps),
            total_bytes,
        );
        let e_rram = average_energy_per_inference_mj(
            &rram.system_1024,
            &cfg,
            IdlePolicy::Envm,
            fps.min(rram.system_1024.fps),
            total_bytes,
        );
        println!(
            "{:>5.0} {:>14.2}mJ {:>14.2}mJ {:>12.2}mJ {:>12.2}mJ {:>9.1}x",
            fps,
            on,
            wake,
            e_ctt,
            e_rram,
            on.min(wake) / e_ctt
        );
    }
    println!(
        "\nAlways-on vs wake-up crossover: {:.1} FPS (paper: ~22 FPS)",
        always_on_crossover_fps(&cfg, total_bytes)
    );
    println!("Shape checks (paper): 5.3-7.5x eNVM advantage at low frame rates,");
    println!("1.7-2.5x at 90 FPS (VR); wake-up beats always-on below the crossover.");
}
