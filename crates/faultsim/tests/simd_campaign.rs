//! Full-chain campaign bit-equality across SIMD tiers and worker
//! counts: a fault-injection campaign over a conv network large enough
//! that its second convolution crosses the within-trial GEMM fan-out
//! gate must produce byte-identical error vectors whether the kernels
//! run on the scalar tier or the host's best SIMD tier, and at 1, 2,
//! or 4 pool workers with the GEMM fan-out enabled — the acceptance
//! lock for the runtime-dispatched microkernel work.
//!
//! One `#[test]` only: tier pinning is process-global dispatch state.

use maxnvm_dnn::gemm::{self, force_tier_for_tests, supported_tiers, SimdTier};
use maxnvm_dnn::layer::Layer;
use maxnvm_dnn::network::Network;
use maxnvm_dnn::tensor::Tensor;
use maxnvm_encoding::cluster::ClusteredLayer;
use maxnvm_encoding::storage::{StorageScheme, StoredLayer};
use maxnvm_encoding::EncodingKind;
use maxnvm_envm::{CellTechnology, MlcConfig, SenseAmp};
use maxnvm_faultsim::engine::EvalContext;
use maxnvm_faultsim::evaluate::NetworkEval;
use rand::{Rng, SeedableRng};

/// A conv net whose second convolution (32×216 weights, 24×24 output
/// map) clears both fan-out gates: n = 576 ≥ 2·PAR_MIN_COLS and
/// work = 32·216·576 ≈ 3.98 M ≥ PAR_MIN_WORK.
fn conv_net(seed: u64) -> Network {
    let mut net = Network::new(
        "simd-campaign-conv",
        vec![
            Layer::conv2d("conv1", 24, 1, 5, 1, 0), // 28 -> 24
            Layer::ReLU,
            Layer::conv2d("conv2", 32, 24, 3, 1, 1), // 24 -> 24
            Layer::ReLU,
            Layer::AvgPoolGlobal,
            Layer::linear("fc", 4, 32),
        ],
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    net.for_each_weight_tensor_mut(|_, w| {
        let fan_in = w.shape()[w.shape().len() - 1] as f32;
        let scale = (2.0 / fan_in).sqrt();
        for v in w.data_mut() {
            *v = (rng.gen::<f32>() * 2.0 - 1.0) * scale;
        }
    });
    net
}

#[test]
fn campaign_is_byte_identical_across_tiers_and_workers() {
    let net = conv_net(11);
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let test: Vec<(Tensor, usize)> = (0..6)
        .map(|_| {
            let pixels: Vec<f32> = (0..28 * 28).map(|_| rng.gen::<f32>()).collect();
            (Tensor::from_vec(&[1, 28, 28], pixels), rng.gen_range(0..4))
        })
        .collect();
    let eval = NetworkEval::new(net.clone(), test);

    // Prune 60% per layer and encode, mirroring the engine's own
    // worker-invariance lock.
    let stored: Vec<StoredLayer> = net
        .weight_matrices()
        .iter()
        .map(|m| {
            let mut pruned = m.clone();
            let mut mags: Vec<f32> = pruned.data.iter().map(|v| v.abs()).collect();
            mags.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let t = mags[((mags.len() - 1) as f64 * 0.6) as usize];
            for v in &mut pruned.data {
                if v.abs() <= t {
                    *v = 0.0;
                }
            }
            let clustered = ClusteredLayer::from_matrix(&pruned, 4, 9);
            StoredLayer::store(
                &clustered,
                &StorageScheme::uniform(EncodingKind::Csr, MlcConfig::MLC3),
            )
        })
        .collect();

    let sa = SenseAmp::paper_default();
    let (trials, seed, scale) = (8usize, 5u64, 2000.0);
    let run = |tier: SimdTier, workers: usize| {
        force_tier_for_tests(Some(tier));
        let result = EvalContext::with_workers(CellTechnology::MlcCtt, &sa, scale, workers)
            .unwrap()
            .run_campaign(trials, seed, &stored, &eval)
            .unwrap();
        force_tier_for_tests(None);
        result.errors
    };

    // The conv2 multiply must actually cross the fan-out gate,
    // otherwise this test would not exercise parallel GEMM at all.
    let (m, k, n) = (32usize, 24 * 3 * 3, 24 * 24);
    assert!(m * k * n >= gemm::PAR_MIN_WORK && n >= 2 * gemm::PAR_MIN_COLS);

    let reference = run(SimdTier::Scalar, 1);
    assert_eq!(reference.len(), trials);
    assert!(reference.iter().all(|e| e.is_finite()));

    let best = *supported_tiers().last().unwrap();
    for tier in [SimdTier::Scalar, best] {
        for workers in [1, 2, 4] {
            let errors = run(tier, workers);
            for (t, (got, want)) in errors.iter().zip(&reference).enumerate() {
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "trial {t} drifted on tier {} with {workers} workers",
                    tier.name()
                );
            }
        }
    }
}
