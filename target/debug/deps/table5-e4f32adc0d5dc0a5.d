/root/repo/target/debug/deps/table5-e4f32adc0d5dc0a5.d: crates/bench/src/bin/table5.rs Cargo.toml

/root/repo/target/debug/deps/libtable5-e4f32adc0d5dc0a5.rmeta: crates/bench/src/bin/table5.rs Cargo.toml

crates/bench/src/bin/table5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
