//! Regenerates paper Table 2: DNN models with baseline error, ITN bound,
//! cluster index bits, sparsity, and storage footprints per encoding.

use maxnvm_dnn::zoo::ModelSpec;
use maxnvm_encoding::estimate::model_bits;
use maxnvm_encoding::EncodingKind;

fn fmt_size(bits: u64) -> String {
    let bytes = bits as f64 / 8.0;
    if bytes >= 1024.0 * 1024.0 {
        format!("{:.1}MB", bytes / 1024.0 / 1024.0)
    } else {
        format!("{:.0}KB", bytes / 1024.0)
    }
}

fn main() {
    println!("Table 2: DNN models (ours / paper where they differ)");
    let specs = ModelSpec::paper_models();
    let paper_16b = ["1.26MB", "15.4MB", "270MB", "70MB"];
    let paper_pc = ["316KB", "3.86MB", "101MB", "30.6MB"];
    let paper_csr = ["84KB", "3.78MB", "30.2MB", "25.1MB"];
    let paper_bm = ["107KB", "3.23MB", "35.5MB", "11.2MB"];
    println!(
        "{:<24} {:>14} {:>14} {:>14} {:>14}",
        "", specs[0].name, specs[1].name, specs[2].name, specs[3].name
    );
    let row = |label: &str, vals: Vec<String>| {
        println!(
            "{:<24} {:>14} {:>14} {:>14} {:>14}",
            label, vals[0], vals[1], vals[2], vals[3]
        );
    };
    row("Dataset", specs.iter().map(|s| s.dataset.clone()).collect());
    row(
        "Layers",
        specs.iter().map(|s| s.layers.len().to_string()).collect(),
    );
    row(
        "Parameters (ours)",
        specs.iter().map(|s| s.params().to_string()).collect(),
    );
    row(
        "Parameters (paper)",
        specs
            .iter()
            .map(|s| s.paper.reported_params.to_string())
            .collect(),
    );
    row(
        "Classification Error",
        specs
            .iter()
            .map(|s| format!("{:.2}%", s.paper.classification_error * 100.0))
            .collect(),
    );
    row(
        "Error Bound (ITN)",
        specs
            .iter()
            .map(|s| format!("{:.2}%", s.paper.itn_bound * 100.0))
            .collect(),
    );
    row(
        "Cluster Index Bits",
        specs
            .iter()
            .map(|s| s.paper.cluster_index_bits.to_string())
            .collect(),
    );
    row(
        "Sparsity (% zero)",
        specs
            .iter()
            .map(|s| format!("{:.2}%", s.paper.sparsity * 100.0))
            .collect(),
    );
    row(
        "16b Size (ours)",
        specs
            .iter()
            .map(|s| fmt_size(s.size_16b_bytes() * 8))
            .collect(),
    );
    for (label, enc, paper) in [
        ("P+C", EncodingKind::DenseClustered, paper_pc),
        ("CSR", EncodingKind::Csr, paper_csr),
        ("BitMask", EncodingKind::BitMask, paper_bm),
    ] {
        row(
            &format!("{label} (ours)"),
            specs
                .iter()
                .map(|s| fmt_size(model_bits(s, enc, false)))
                .collect(),
        );
        row(
            &format!("{label} (paper)"),
            paper.iter().map(|s| s.to_string()).collect(),
        );
    }
    let _ = paper_16b;
    println!("\n(paper 16b sizes: {paper_16b:?}; the paper's 70MB ResNet50 row is");
    println!(" inconsistent with its own 24.6M-parameter count — see EXPERIMENTS.md)");
}
