//! Regenerates paper Fig. 2b: read-signal distributions of an 8-level
//! (3-bit) programmed CTT cell — level means/sigmas and the measured
//! histogram of 128 sampled devices per level, plus the derived
//! adjacent-level fault rates.

use maxnvm_envm::{CellTechnology, MlcConfig};
use rand::SeedableRng;

fn main() {
    let cell = CellTechnology::MlcCtt.cell_model(MlcConfig::MLC3);
    println!("Fig. 2b: MLC3-programmed CTT level distributions (normalized signal)");
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>12}",
        "Level", "mean", "sigma", "P(up)", "P(down)"
    );
    let fm = cell.fault_map();
    for (i, l) in cell.levels().iter().enumerate() {
        println!(
            "{:<8} {:>10.4} {:>10.4} {:>12.3e} {:>12.3e}",
            i,
            l.mean,
            l.sigma,
            fm.p_up(i),
            fm.p_down(i)
        );
    }
    println!();
    println!("Current histogram at nominal read voltage (128 cells/level, 40 bins):");
    let mut rng = rand::rngs::StdRng::seed_from_u64(2019);
    let bins = 40usize;
    let (lo, hi) = (-0.2f64, 1.1f64);
    let mut hist = vec![[0u32; 8]; bins];
    for (lvl, l) in cell.levels().iter().enumerate() {
        for _ in 0..128 {
            let x = maxnvm_envm::math::sample_normal(&mut rng, l.mean, l.sigma);
            let b = (((x - lo) / (hi - lo)) * bins as f64).clamp(0.0, bins as f64 - 1.0) as usize;
            hist[b][lvl] += 1;
        }
    }
    for (b, row) in hist.iter().enumerate() {
        let x = lo + (b as f64 + 0.5) / bins as f64 * (hi - lo);
        let total: u32 = row.iter().sum();
        if total == 0 {
            continue;
        }
        let dominant = row.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
        println!(
            "{x:>7.3} | {:<60} L{dominant}",
            "#".repeat((total as usize).min(60))
        );
    }
    println!();
    println!(
        "Worst adjacent misread rate: {:.2e} (paper band 1e-3..1e-5 for MLC3)",
        fm.worst_adjacent_rate()
    );
    println!(
        "Non-adjacent misread bound:  {:.2e} (paper: <= 1.5e-10)",
        cell.non_adjacent_bound()
    );
}
