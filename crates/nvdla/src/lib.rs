//! NVDLA-style accelerator performance and energy model (paper §3.5, §5–6).
//!
//! The paper evaluates MaxNVM by swapping NVDLA's off-chip DRAM weight
//! path for on-chip MLC eNVM (Fig. 7) and comparing frames per second,
//! average power, and energy per inference for two fixed datapath
//! configurations (Table 3). This crate reimplements that system model:
//!
//! - [`config`]: the NVDLA-64 and NVDLA-1024 baselines;
//! - [`source`]: where weights come from — DRAM, on-chip eNVM, or the §6
//!   hybrid split;
//! - [`perf`]: the per-layer roofline (compute vs weight-fetch vs
//!   activation-traffic bound) and whole-model system evaluation;
//! - [`nonvolatility`]: the §5.3 frame-rate study (DRAM always-on vs
//!   wake-up per inference vs eNVM);
//! - [`hybrid`]: the §6 fixed-area SRAM/eNVM partition sweep.

pub mod config;
pub mod hybrid;
pub mod nonvolatility;
pub mod perf;
pub mod source;

pub use config::NvdlaConfig;
pub use perf::{evaluate, LayerPerf, SystemReport};
pub use source::WeightSource;
