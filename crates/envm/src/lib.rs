//! Multi-level-cell (MLC) embedded non-volatile memory device and fault
//! models for the MaxNVM reproduction (paper §2).
//!
//! The paper characterizes two fundamentally different eNVM technologies —
//! charge-trap transistors (CTT, measured from a 16nm test chip) and
//! resistive RAM (RRAM, from published pulse-train programming data) — and
//! derives *inter-level fault rates* from the overlap of per-level Gaussian
//! read-current distributions. This crate implements:
//!
//! - [`level`]: per-level Gaussian distributions, sense thresholds, and the
//!   closed-form adjacent-level misread probabilities;
//! - [`tech`]: the four memory proposals evaluated in the paper
//!   (MLC-CTT, MLC-RRAM, Optimistic MLC-RRAM, SLC-RRAM) plus their device
//!   parameters (cell area in F², process node, write characteristics);
//! - [`sense`]: the sense-amplifier input-referred offset model (§2.3);
//! - [`fault`]: seeded Monte-Carlo fault injection over arrays of cell
//!   levels, as used by the Ares-style campaigns;
//! - [`sparse`]: the O(expected faults) geometric-skip sampler the
//!   evaluation engine uses in place of per-cell draws;
//! - [`gray`]: Gray coding so a level-to-level fault is a single bit flip
//!   (required for Hamming ECC, §3.3);
//! - [`write`](mod@write): the optimistic total-write-time model behind Table 5;
//! - [`reference`](mod@reference): the published chips of Table 1.
//!
//! # Example
//!
//! ```
//! use maxnvm_envm::{CellTechnology, MlcConfig};
//!
//! // An 8-level (3 bits/cell) CTT cell, as measured on the test chip.
//! let cell = CellTechnology::MlcCtt.cell_model(MlcConfig::new(3).unwrap());
//! let faults = cell.fault_map();
//! // MLC3 adjacent-level fault rates land in the paper's 1e-3..1e-5 band.
//! let worst = faults.worst_adjacent_rate();
//! assert!(worst > 1e-6 && worst < 1e-2, "worst = {worst}");
//! ```

pub mod fault;
pub mod gray;
pub mod level;
pub mod math;
pub mod reference;
pub mod retention;
pub mod sense;
pub mod sparse;
pub mod tech;
pub mod write;

pub use fault::{FaultInjector, FaultMap};
pub use gray::{from_gray, to_gray};
pub use level::{CellModel, LevelDistribution, MlcConfig};
pub use retention::RetentionParams;
pub use sense::SenseAmp;
pub use sparse::{LevelPartition, SparseFaultSampler};
pub use tech::{CellTechnology, DeviceParams};
pub use write::{EnduranceModel, WriteModel};
