/root/repo/target/release/deps/maxnvm_encoding-720925e050306787.d: crates/encoding/src/lib.rs crates/encoding/src/bitmask.rs crates/encoding/src/cluster.rs crates/encoding/src/csr.rs crates/encoding/src/dense.rs crates/encoding/src/estimate.rs crates/encoding/src/quantize.rs crates/encoding/src/storage.rs

/root/repo/target/release/deps/libmaxnvm_encoding-720925e050306787.rlib: crates/encoding/src/lib.rs crates/encoding/src/bitmask.rs crates/encoding/src/cluster.rs crates/encoding/src/csr.rs crates/encoding/src/dense.rs crates/encoding/src/estimate.rs crates/encoding/src/quantize.rs crates/encoding/src/storage.rs

/root/repo/target/release/deps/libmaxnvm_encoding-720925e050306787.rmeta: crates/encoding/src/lib.rs crates/encoding/src/bitmask.rs crates/encoding/src/cluster.rs crates/encoding/src/csr.rs crates/encoding/src/dense.rs crates/encoding/src/estimate.rs crates/encoding/src/quantize.rs crates/encoding/src/storage.rs

crates/encoding/src/lib.rs:
crates/encoding/src/bitmask.rs:
crates/encoding/src/cluster.rs:
crates/encoding/src/csr.rs:
crates/encoding/src/dense.rs:
crates/encoding/src/estimate.rs:
crates/encoding/src/quantize.rs:
crates/encoding/src/storage.rs:
