//! Regenerates paper Fig. 11: relative VGG16 performance when a fixed
//! 1mm² of on-chip memory is split between activation SRAM and weight
//! eNVM (DRAM takes the overflow of both).

use maxnvm_dnn::zoo;
use maxnvm_encoding::EncodingKind;
use maxnvm_envm::CellTechnology;
use maxnvm_nvdla::hybrid::sweep_hybrid;
use maxnvm_nvdla::perf::encoded_weight_bytes;
use maxnvm_nvdla::NvdlaConfig;

fn main() {
    let model = zoo::vgg16();
    let bytes = encoded_weight_bytes(&model, EncodingKind::Csr, false);
    let fractions: Vec<f64> = (0..=18).map(|i| i as f64 * 0.05).collect();
    println!("Fig. 11: VGG16 with 1mm2 on-chip memory split SRAM / eNVM (NVDLA-1024)\n");
    for tech in [CellTechnology::MlcCtt, CellTechnology::OptMlcRram] {
        println!("== {} ==", tech.name());
        println!(
            "{:>7} {:>10} {:>8} {:>9} {:>9} {:>10}",
            "eNVM%", "cap(MB)", "layers", "rel perf", "rel E", "FPS"
        );
        let points = sweep_hybrid(
            &model,
            &NvdlaConfig::nvdla_1024(),
            tech,
            3,
            1.0,
            &bytes,
            &fractions,
        )
        .expect("feasible hybrid sweep");
        let mut best_e = (0.0, f64::INFINITY);
        for p in &points {
            if p.relative_energy < best_e.1 {
                best_e = (p.envm_fraction, p.relative_energy);
            }
            println!(
                "{:>6.0}% {:>10.1} {:>8} {:>9.3} {:>9.3} {:>10.1}",
                p.envm_fraction * 100.0,
                p.envm_capacity_bits as f64 / 8.0 / 1024.0 / 1024.0,
                p.layers_on_chip,
                p.relative_performance,
                p.relative_energy,
                p.report.fps
            );
        }
        println!(
            "-> lowest energy at {:.0}% eNVM (paper: ~45%)\n",
            best_e.0 * 100.0
        );
    }
    println!("Shape checks (paper): initial benefit from relieving the weight DRAM");
    println!("bottleneck, then sharp degradation once SRAM can no longer hold the");
    println!("intermediate working set.");
}
