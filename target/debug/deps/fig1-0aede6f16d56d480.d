/root/repo/target/debug/deps/fig1-0aede6f16d56d480.d: crates/bench/src/bin/fig1.rs Cargo.toml

/root/repo/target/debug/deps/libfig1-0aede6f16d56d480.rmeta: crates/bench/src/bin/fig1.rs Cargo.toml

crates/bench/src/bin/fig1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
