//! Cooperative cancellation and wall-clock deadlines for long-running
//! campaigns.
//!
//! A Monte-Carlo sweep can run for hours; killing the process loses
//! everything since the last checkpoint and leaves the worker pool to
//! die mid-trial. A [`CancelToken`] gives the caller a clean way out:
//! the engine checks the token between trials, so flipping it (from a
//! Ctrl-C handler, another thread, or by arming a deadline at
//! construction) stops scheduling new trials and lets the in-flight
//! ones drain, yielding a partial-but-honest [`CampaignResult`]
//! (`cancelled = true`, statistics over the trials that completed).
//!
//! [`CampaignResult`]: crate::campaign::CampaignResult

use std::sync::Arc;
use std::time::{Duration, Instant};

// `cargo xtask loom` swaps the flag to the schedule-perturbing polyfill
// so the CancelToken handoff races are exercised by the model tests.
#[cfg(loom)]
use loom::sync::atomic::{AtomicBool, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicBool, Ordering};

/// A shared cancellation flag with an optional wall-clock deadline.
///
/// Clones share the same underlying state: cancelling any clone cancels
/// them all. The deadline is fixed at construction; a token with a
/// deadline reports itself cancelled once the deadline passes, with no
/// explicit [`CancelToken::cancel`] call needed.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never fires on its own (cancel it explicitly).
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that auto-cancels once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// A token that auto-cancels `budget` from now — a wall-clock budget
    /// for the whole run.
    pub fn with_timeout(budget: Duration) -> Self {
        Self::with_deadline(Instant::now() + budget)
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation was requested or the deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
            || self.inner.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The deadline this token was armed with, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.deadline().is_none());
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        u.cancel();
        assert!(t.is_cancelled());
        assert!(u.is_cancelled());
    }

    #[test]
    fn deadline_in_the_past_reads_cancelled() {
        let t = CancelToken::with_timeout(Duration::ZERO);
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_in_the_future_reads_live() {
        let t = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(t.deadline().is_some());
    }

    #[test]
    fn deadline_exactly_now_reads_cancelled() {
        // The boundary case: `is_cancelled` uses `now >= deadline`, and
        // Instant is monotonic, so a token armed with the current
        // instant can never report live — there is no instant at which
        // a later check reads a smaller clock.
        let t = CancelToken::with_deadline(Instant::now());
        assert!(t.is_cancelled());
    }

    #[test]
    fn zero_budget_is_cancelled_through_clones() {
        // `with_timeout(ZERO)` arms the deadline at construction time;
        // every clone shares it, so no clone can observe a live token.
        let t = CancelToken::with_timeout(Duration::ZERO);
        let u = t.clone();
        assert!(t.is_cancelled());
        assert!(u.is_cancelled());
        // Explicit cancel on an already-expired token stays idempotent.
        u.cancel();
        assert!(t.is_cancelled());
    }
}
