/root/repo/target/release/deps/fig11-6b4f5a3373d11b38.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-6b4f5a3373d11b38: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
