/root/repo/target/debug/deps/maxnvm_faultsim-2169ffbb5449fe6e.d: crates/faultsim/src/lib.rs crates/faultsim/src/analytic.rs crates/faultsim/src/campaign.rs crates/faultsim/src/dse.rs crates/faultsim/src/evaluate.rs crates/faultsim/src/vulnerability.rs

/root/repo/target/debug/deps/libmaxnvm_faultsim-2169ffbb5449fe6e.rlib: crates/faultsim/src/lib.rs crates/faultsim/src/analytic.rs crates/faultsim/src/campaign.rs crates/faultsim/src/dse.rs crates/faultsim/src/evaluate.rs crates/faultsim/src/vulnerability.rs

/root/repo/target/debug/deps/libmaxnvm_faultsim-2169ffbb5449fe6e.rmeta: crates/faultsim/src/lib.rs crates/faultsim/src/analytic.rs crates/faultsim/src/campaign.rs crates/faultsim/src/dse.rs crates/faultsim/src/evaluate.rs crates/faultsim/src/vulnerability.rs

crates/faultsim/src/lib.rs:
crates/faultsim/src/analytic.rs:
crates/faultsim/src/campaign.rs:
crates/faultsim/src/dse.rs:
crates/faultsim/src/evaluate.rs:
crates/faultsim/src/vulnerability.rs:
