/root/repo/target/debug/deps/maxnvm_encoding-4f5b36fa372848c1.d: crates/encoding/src/lib.rs crates/encoding/src/bitmask.rs crates/encoding/src/cluster.rs crates/encoding/src/csr.rs crates/encoding/src/dense.rs crates/encoding/src/estimate.rs crates/encoding/src/quantize.rs crates/encoding/src/storage.rs

/root/repo/target/debug/deps/libmaxnvm_encoding-4f5b36fa372848c1.rlib: crates/encoding/src/lib.rs crates/encoding/src/bitmask.rs crates/encoding/src/cluster.rs crates/encoding/src/csr.rs crates/encoding/src/dense.rs crates/encoding/src/estimate.rs crates/encoding/src/quantize.rs crates/encoding/src/storage.rs

/root/repo/target/debug/deps/libmaxnvm_encoding-4f5b36fa372848c1.rmeta: crates/encoding/src/lib.rs crates/encoding/src/bitmask.rs crates/encoding/src/cluster.rs crates/encoding/src/csr.rs crates/encoding/src/dense.rs crates/encoding/src/estimate.rs crates/encoding/src/quantize.rs crates/encoding/src/storage.rs

crates/encoding/src/lib.rs:
crates/encoding/src/bitmask.rs:
crates/encoding/src/cluster.rs:
crates/encoding/src/csr.rs:
crates/encoding/src/dense.rs:
crates/encoding/src/estimate.rs:
crates/encoding/src/quantize.rs:
crates/encoding/src/storage.rs:
