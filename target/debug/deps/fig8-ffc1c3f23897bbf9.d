/root/repo/target/debug/deps/fig8-ffc1c3f23897bbf9.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-ffc1c3f23897bbf9: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
