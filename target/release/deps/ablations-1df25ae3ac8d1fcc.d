/root/repo/target/release/deps/ablations-1df25ae3ac8d1fcc.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-1df25ae3ac8d1fcc: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
