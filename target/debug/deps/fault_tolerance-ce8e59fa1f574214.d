/root/repo/target/debug/deps/fault_tolerance-ce8e59fa1f574214.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-ce8e59fa1f574214: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
