//! Optimistic total-write-time model (§7.1, Table 5).
//!
//! eNVM writes alter the physical storage material and are orders of
//! magnitude slower than reads: CTT cells are programmed by iterative
//! hot-carrier-injection pulses taking ~100ms per program-verify sequence,
//! while RRAM uses µs-scale pulse trains. The paper's Table 5 reports the
//! *best-case* time to (re)write an entire model's weights, assuming all
//! cells sharing a program operation are written in parallel.

use crate::tech::CellTechnology;
use serde::{Deserialize, Serialize};

/// Write-time model for one technology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WriteModel {
    tech: CellTechnology,
    /// Seconds per program(-and-verify) operation.
    pulse_s: f64,
    /// Cells programmed in parallel by one operation (wordline-width
    /// parallelism across banks, best-case).
    parallelism: usize,
}

impl WriteModel {
    /// Best-case parallelism assumed for each technology (cells per program
    /// operation across all banks), calibrated against Table 5.
    pub fn for_tech(tech: CellTechnology) -> Self {
        let params = tech.device_params();
        let parallelism = match tech {
            // One 100ms HCI sequence programs a full wordline group.
            CellTechnology::MlcCtt => 12_288,
            // RRAM program current limits simultaneous cells per bank.
            CellTechnology::MlcRram => 1_024,
            CellTechnology::OptMlcRram => 1_024,
            CellTechnology::SlcRram => 1_024,
        };
        Self {
            tech,
            pulse_s: params.program_pulse_s,
            parallelism,
        }
    }

    /// Creates a model with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `pulse_s <= 0` or `parallelism == 0`.
    pub fn new(tech: CellTechnology, pulse_s: f64, parallelism: usize) -> Self {
        assert!(pulse_s > 0.0, "pulse time must be positive");
        assert!(parallelism > 0, "parallelism must be positive");
        Self {
            tech,
            pulse_s,
            parallelism,
        }
    }

    /// The technology this model describes.
    pub fn tech(&self) -> CellTechnology {
        self.tech
    }

    /// Optimistic total time (seconds) to program `cells` memory cells.
    pub fn total_write_time_s(&self, cells: u64) -> f64 {
        let ops = cells.div_ceil(self.parallelism as u64);
        ops as f64 * self.pulse_s
    }

    /// Effective write bandwidth in cells per second.
    pub fn cells_per_second(&self) -> f64 {
        self.parallelism as f64 / self.pulse_s
    }

    /// Pretty-prints a duration the way Table 5 does (ms / s / minutes).
    pub fn format_duration(seconds: f64) -> String {
        if seconds < 1.0 {
            format!("{:.0}ms", seconds * 1e3)
        } else if seconds < 90.0 {
            format!("{seconds:.1}s")
        } else {
            format!("{:.1} minutes", seconds / 60.0)
        }
    }
}

/// Endurance analysis (§7.1): "the desired frequency of rewriting weights
/// may also be constrained by the endurance of the memory cells."
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnduranceModel {
    tech: CellTechnology,
    endurance_cycles: f64,
}

impl EnduranceModel {
    /// Model for a technology's published endurance.
    pub fn for_tech(tech: CellTechnology) -> Self {
        Self {
            tech,
            endurance_cycles: tech.device_params().endurance_cycles,
        }
    }

    /// The technology.
    pub fn tech(&self) -> CellTechnology {
        self.tech
    }

    /// Device lifetime in years if the full weight set is rewritten every
    /// `interval_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `interval_s <= 0`.
    pub fn lifetime_years(&self, interval_s: f64) -> f64 {
        assert!(interval_s > 0.0, "rewrite interval must be positive");
        self.endurance_cycles * interval_s / (365.25 * 24.0 * 3600.0)
    }

    /// The shortest rewrite interval (seconds) compatible with a target
    /// lifetime in years.
    pub fn min_rewrite_interval_s(&self, lifetime_years: f64) -> f64 {
        assert!(lifetime_years > 0.0, "lifetime must be positive");
        lifetime_years * 365.25 * 24.0 * 3600.0 / self.endurance_cycles
    }

    /// Whether a deployment that re-writes its weights every `interval_s`
    /// seconds is write-time feasible *and* survives `lifetime_years`:
    /// the §7.1 judgment call ("periodic down-time for synchronization
    /// and charging may be permissible").
    pub fn rewrite_feasible(&self, cells: u64, interval_s: f64, lifetime_years: f64) -> bool {
        let write = WriteModel::for_tech(self.tech).total_write_time_s(cells);
        write < interval_s && self.lifetime_years(interval_s) >= lifetime_years
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctt_writes_take_minutes_rram_milliseconds() {
        // Table 5 orders of magnitude: VGG16 (32MB at 3 bits/cell ≈ 89.5M
        // cells) takes minutes on CTT, sub-second on RRAM variants.
        let cells = 32 * 1024 * 1024 * 8 / 3;
        let ctt = WriteModel::for_tech(CellTechnology::MlcCtt).total_write_time_s(cells);
        let rram = WriteModel::for_tech(CellTechnology::MlcRram).total_write_time_s(cells);
        let slc_cells = 32 * 1024 * 1024 * 8;
        let slc = WriteModel::for_tech(CellTechnology::SlcRram).total_write_time_s(slc_cells);
        assert!(ctt > 300.0 && ctt < 1800.0, "CTT VGG16 write {ctt}s");
        assert!(rram > 0.05 && rram < 5.0, "RRAM VGG16 write {rram}s");
        assert!(slc < 0.2, "SLC VGG16 write {slc}s");
        assert!(ctt / rram > 100.0, "CTT must be orders of magnitude slower");
    }

    #[test]
    fn write_time_scales_with_cells() {
        let m = WriteModel::for_tech(CellTechnology::MlcRram);
        let t1 = m.total_write_time_s(1_000_000);
        let t2 = m.total_write_time_s(2_000_000);
        assert!((t2 / t1 - 2.0).abs() < 0.01);
    }

    #[test]
    fn ceil_division_counts_partial_op() {
        let m = WriteModel::new(CellTechnology::SlcRram, 1.0, 100);
        assert_eq!(m.total_write_time_s(1), 1.0);
        assert_eq!(m.total_write_time_s(100), 1.0);
        assert_eq!(m.total_write_time_s(101), 2.0);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(WriteModel::format_duration(0.013), "13ms");
        assert_eq!(WriteModel::format_duration(4.7), "4.7s");
        assert_eq!(WriteModel::format_duration(732.0), "12.2 minutes");
    }

    #[test]
    fn ctt_endurance_limits_rewrite_frequency() {
        // CTT endures ~1e4 cycles: daily model updates give ~27 years,
        // per-minute updates wear it out within weeks.
        let e = EnduranceModel::for_tech(CellTechnology::MlcCtt);
        assert!(e.lifetime_years(24.0 * 3600.0) > 20.0);
        assert!(e.lifetime_years(60.0) < 0.1);
        // RRAM's 1e6 cycles tolerate much more frequent updates.
        let r = EnduranceModel::for_tech(CellTechnology::MlcRram);
        assert!(r.lifetime_years(60.0) > 1.0);
    }

    #[test]
    fn min_interval_inverts_lifetime() {
        let e = EnduranceModel::for_tech(CellTechnology::MlcRram);
        let interval = e.min_rewrite_interval_s(10.0);
        assert!((e.lifetime_years(interval) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn rewrite_feasibility_couples_write_time_and_endurance() {
        let cells = 90_000_000u64; // VGG16-scale
        let ctt = EnduranceModel::for_tech(CellTechnology::MlcCtt);
        // Daily updates: write takes ~12 minutes, endurance fine.
        assert!(ctt.rewrite_feasible(cells, 24.0 * 3600.0, 10.0));
        // Updates every 5 minutes: the write itself doesn't fit.
        assert!(!ctt.rewrite_feasible(cells, 300.0, 1.0));
        // RRAM handles 5-minute updates easily.
        let rram = EnduranceModel::for_tech(CellTechnology::MlcRram);
        assert!(rram.rewrite_feasible(cells, 300.0, 5.0));
    }

    #[test]
    fn bandwidth_is_consistent() {
        let m = WriteModel::for_tech(CellTechnology::OptMlcRram);
        let cells = 10_240_000u64;
        let t = m.total_write_time_s(cells);
        let bw = m.cells_per_second();
        assert!(((cells as f64 / t) / bw - 1.0).abs() < 0.01);
    }
}
