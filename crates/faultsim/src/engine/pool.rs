//! A persistent worker pool for evaluation fan-out.
//!
//! Campaign trials and design-space sweeps are embarrassingly parallel
//! but were previously run on ad-hoc scoped threads spawned per call,
//! capped at eight. This pool spawns its workers once and serves every
//! evaluation in the process: jobs go into a shared queue that idle
//! workers steal from, which load-balances trials of very different
//! cost (a 105-scheme sweep mixes SLC layers that decode instantly with
//! ECC-protected MLC3 layers that dominate the wall-clock).
//!
//! The scheduling is cooperative: the thread that calls
//! [`WorkerPool::scope_map`] helps drain the queue while it waits, so a
//! pool works at any size (even zero workers degenerates to the caller
//! running everything serially) and nested scopes cannot deadlock — a
//! blocked scope always has at least its own caller making progress.

use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    work_ready: Condvar,
    shutdown: AtomicBool,
}

/// A fixed set of persistent worker threads draining a shared job queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns a pool with `workers` persistent threads.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("maxnvm-eval-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn evaluation worker")
            })
            .collect();
        Self {
            shared,
            workers,
            handles,
        }
    }

    /// Number of worker threads (the caller of [`Self::scope_map`] also
    /// contributes while it waits).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Evaluates `f(0..n)` across the pool, returning results in index
    /// order. Blocks until every job has finished; if any job panicked,
    /// the first panic is re-raised on the calling thread.
    ///
    /// Results are independent of the worker count and of scheduling:
    /// each index is computed by exactly one pure call of `f`, and the
    /// output vector is assembled by index, so a 1-worker and a
    /// 64-worker pool return byte-identical vectors.
    pub fn scope_map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let state = ScopeState::new(n);
        {
            let mut queue = self.shared.queue.lock();
            for i in 0..n {
                let state_ref = &state;
                let f_ref = &f;
                let job: Box<dyn FnOnce() + Send + '_> =
                    Box::new(move || state_ref.run_one(i, f_ref));
                // SAFETY: this call does not return until `state.remaining`
                // reaches zero, i.e. every queued job has run to completion
                // (panics are caught and still count), so the borrows of
                // `state` and `f` smuggled past the 'static bound outlive
                // every job that uses them.
                let job: Job = unsafe { std::mem::transmute(job) };
                queue.push_back(job);
            }
        }
        self.shared.work_ready.notify_all();
        loop {
            let job = self.shared.queue.lock().pop_front();
            match job {
                Some(job) => job(),
                None => {
                    let mut remaining = state.remaining.lock();
                    if *remaining == 0 {
                        break;
                    }
                    // Wait briefly rather than indefinitely: a job of ours
                    // running on a worker may push nested work this caller
                    // should help with.
                    state
                        .done
                        .wait_for(&mut remaining, Duration::from_millis(1));
                    if *remaining == 0 {
                        break;
                    }
                }
            }
        }
        state.finish()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work_ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut queue = shared.queue.lock();
    loop {
        if let Some(job) = queue.pop_front() {
            drop(queue);
            job();
            queue = shared.queue.lock();
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        shared.work_ready.wait(&mut queue);
    }
}

/// Completion tracking for one `scope_map` call: per-index result slots,
/// a countdown latch, and the first panic payload (if any).
struct ScopeState<T> {
    results: Mutex<Vec<Option<T>>>,
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl<T: Send> ScopeState<T> {
    fn new(n: usize) -> Self {
        Self {
            results: Mutex::new((0..n).map(|_| None).collect()),
            remaining: Mutex::new(n),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn run_one<F: Fn(usize) -> T + Sync>(&self, i: usize, f: &F) {
        match panic::catch_unwind(AssertUnwindSafe(|| f(i))) {
            Ok(value) => self.results.lock()[i] = Some(value),
            Err(payload) => {
                let mut slot = self.panic.lock();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        }
        let mut remaining = self.remaining.lock();
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn finish(self) -> Vec<T> {
        if let Some(payload) = self.panic.into_inner() {
            panic::resume_unwind(payload);
        }
        self.results
            .into_inner()
            .into_iter()
            .map(|slot| slot.expect("completed scope job left no result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_index_order() {
        let pool = WorkerPool::new(4);
        let out = pool.scope_map(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_workers_still_completes_via_the_caller() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.scope_map(10, |i| i + 1), (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_scope_returns_immediately() {
        let pool = WorkerPool::new(2);
        assert!(pool.scope_map(0, |i| i).is_empty());
    }

    #[test]
    fn results_do_not_depend_on_worker_count() {
        let work = |i: usize| {
            // Uneven job costs exercise the dynamic scheduling.
            (0..(i % 7) * 1000).fold(i as u64, |acc, x| {
                acc.wrapping_mul(31).wrapping_add(x as u64)
            })
        };
        let serial = WorkerPool::new(0).scope_map(64, work);
        for workers in [1, 2, 8] {
            assert_eq!(WorkerPool::new(workers).scope_map(64, work), serial);
        }
    }

    #[test]
    fn borrows_caller_state() {
        let pool = WorkerPool::new(3);
        let data: Vec<u64> = (0..50).map(|i| i * 3).collect();
        let out = pool.scope_map(data.len(), |i| data[i] + 1);
        assert_eq!(out[49], 49 * 3 + 1);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let pool = WorkerPool::new(2);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope_map(8, |i| {
                if i == 5 {
                    panic!("job 5 exploded");
                }
                i
            })
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "job 5 exploded");
        // The pool survives and keeps serving work.
        assert_eq!(pool.scope_map(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn nested_scopes_make_progress() {
        let pool = WorkerPool::new(1);
        let out = pool.scope_map(4, |i| {
            pool.scope_map(4, |j| i * 4 + j).iter().sum::<usize>()
        });
        assert_eq!(out.iter().sum::<usize>(), (0..16).sum());
    }
}
