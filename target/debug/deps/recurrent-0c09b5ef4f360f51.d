/root/repo/target/debug/deps/recurrent-0c09b5ef4f360f51.d: tests/recurrent.rs

/root/repo/target/debug/deps/recurrent-0c09b5ef4f360f51: tests/recurrent.rs

tests/recurrent.rs:
