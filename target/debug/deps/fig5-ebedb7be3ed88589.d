/root/repo/target/debug/deps/fig5-ebedb7be3ed88589.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-ebedb7be3ed88589: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
