/root/repo/target/debug/examples/keyword_spotting-c75eee4c65f3c464.d: examples/keyword_spotting.rs

/root/repo/target/debug/examples/keyword_spotting-c75eee4c65f3c464: examples/keyword_spotting.rs

examples/keyword_spotting.rs:
