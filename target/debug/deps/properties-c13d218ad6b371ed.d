/root/repo/target/debug/deps/properties-c13d218ad6b371ed.d: crates/nvdla/tests/properties.rs

/root/repo/target/debug/deps/properties-c13d218ad6b371ed: crates/nvdla/tests/properties.rs

crates/nvdla/tests/properties.rs:
