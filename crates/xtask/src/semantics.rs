//! S1 — the semantics-drift fingerprint gate.
//!
//! The repo's core guarantee — byte-identical Monte-Carlo results across
//! workers, SIMD tiers, retries, and kill/resume — is only composable if
//! every change to the *trial value function* rides with a
//! `TRIAL_SEMANTICS_VERSION` bump (old checkpoints must refuse to resume
//! under new semantics; see `faultsim::checkpoint`). Until this gate,
//! that discipline was tribal: PR 7's mul+add→FMA change needed a
//! hand-remembered 3→4 bump. S1 makes it mechanical:
//!
//! 1. Every semantics-critical module (the GEMM kernels, the prefix
//!    cache, the sparse compute format, the fault/level/math models, the
//!    storage codecs, the ECC codec, the checkpoint substrate) gets a
//!    **fingerprint**: FNV-1a/64 over its comment- and
//!    whitespace-stripped token stream ([`crate::scan::token_stream`]).
//!    Comments, rustfmt churn, and lint annotations never move it; any
//!    token change does.
//! 2. The committed [`LOCK_FILE`] records every fingerprint under the
//!    `TRIAL_SEMANTICS_VERSION` they were taken at.
//! 3. The lint fails on any divergence: a fingerprint change without a
//!    version bump (`S1/drift`), a version bump without any fingerprint
//!    change (`S1/bump-without-change`), a stale lock after a legitimate
//!    bump+change (`S1/lock-stale` — regenerate), and module-set drift
//!    (`S1/untracked` / `S1/missing-module`).
//!
//! Regeneration is `cargo xtask lint --update-semantics-lock`, which
//! refuses to launder drift: it requires the version to have moved, or
//! the explicit `--same-version` escape for a reviewed value-preserving
//! refactor (e.g. a pure rename). DESIGN.md §16 documents the workflow.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use crate::scan::token_stream;

/// The committed manifest, at the workspace root.
pub const LOCK_FILE: &str = "semantics.lock";

/// Bump when the lock file's syntax or fingerprint definition changes.
pub const LOCK_FORMAT: u64 = 1;

/// Semantics-critical modules. Entries ending in `/` cover every `.rs`
/// file in that subtree, minus files named `tests.rs` (test-only
/// modules never feed trial values). Exact entries must exist — a
/// module move that would silently drop a file from the gate is a
/// config error instead.
pub const SEMANTICS_CRITICAL: &[&str] = &[
    "crates/dnn/src/gemm.rs",
    "crates/dnn/src/gemm/",
    "crates/dnn/src/prefix.rs",
    "crates/dnn/src/sparse.rs",
    "crates/ecc/src/lib.rs",
    "crates/encoding/src/storage/",
    "crates/envm/src/fault.rs",
    "crates/envm/src/level.rs",
    "crates/envm/src/math.rs",
    "crates/faultsim/src/checkpoint.rs",
    "crates/faultsim/src/engine/shard.rs",
];

/// Parsed `semantics.lock`.
pub struct SemanticsLock {
    pub format: u64,
    pub trial_semantics_version: u32,
    /// `(repo-relative path, fingerprint hex)`, sorted by path.
    pub modules: Vec<(String, String)>,
}

/// One S1 finding: `(rule, path, message)`. `path` is the offending
/// module, or the lock file itself for whole-manifest findings.
pub type S1Finding = (&'static str, String, String);

/// FNV-1a/64 over the normalized token stream. A `0xff` byte separates
/// tokens so `ab`+`c` and `a`+`bc` cannot collide trivially.
pub fn fingerprint(src: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    for token in token_stream(src) {
        for byte in token.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(PRIME);
        }
        hash ^= 0xff;
        hash = hash.wrapping_mul(PRIME);
    }
    format!("{hash:016x}")
}

/// Enumerates the semantics-critical files under `root` and
/// fingerprints each. Sorted by path.
pub fn current_modules(root: &Path) -> Result<Vec<(String, String)>, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    for spec in SEMANTICS_CRITICAL {
        let abs = root.join(spec);
        if let Some(dir) = spec.strip_suffix('/') {
            let entries = fs::read_dir(&abs).map_err(|e| {
                format!("semantics-critical subtree {dir} is missing or unreadable: {e}")
            })?;
            let mut found = false;
            let mut dirs = vec![abs];
            while let Some(d) = dirs.pop() {
                let entries = match fs::read_dir(&d) {
                    Ok(en) => en,
                    Err(_) => continue,
                };
                for entry in entries.flatten() {
                    let p = entry.path();
                    if p.is_dir() {
                        dirs.push(p);
                    } else if p.extension().is_some_and(|e| e == "rs")
                        && p.file_name().is_some_and(|n| n != "tests.rs")
                    {
                        files.push(p);
                        found = true;
                    }
                }
            }
            drop(entries);
            if !found {
                return Err(format!(
                    "semantics-critical subtree {dir} contains no .rs files"
                ));
            }
        } else {
            if !abs.is_file() {
                return Err(format!(
                    "semantics-critical module {spec} is missing — if it moved, update \
                     SEMANTICS_CRITICAL in crates/xtask/src/semantics.rs"
                ));
            }
            files.push(abs);
        }
    }
    files.sort();
    files.dedup();
    let mut out = Vec::with_capacity(files.len());
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&file).map_err(|e| format!("cannot read {rel}: {e}"))?;
        out.push((rel, fingerprint(&src)));
    }
    Ok(out)
}

/// Reads `TRIAL_SEMANTICS_VERSION` out of the checkpoint module by
/// lexing it (the xtask cannot depend on the faultsim crate: the gate
/// must work even when the workspace does not compile).
pub fn trial_semantics_version(root: &Path) -> Result<u32, String> {
    let path = root.join("crates/faultsim/src/checkpoint.rs");
    let src =
        fs::read_to_string(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let tokens = token_stream(&src);
    let mut it = tokens.iter();
    while let Some(t) = it.next() {
        if t == "TRIAL_SEMANTICS_VERSION" {
            // `TRIAL_SEMANTICS_VERSION : u32 = N` — find the `=`, then
            // parse the next token. Skip non-definition mentions.
            for t in it.by_ref() {
                if t == "=" {
                    break;
                }
                if t == ";" {
                    return Err(
                        "TRIAL_SEMANTICS_VERSION found but not followed by `= <int>`".into(),
                    );
                }
            }
            if let Some(n) = it.next().and_then(|t| t.parse::<u32>().ok()) {
                return Ok(n);
            }
            return Err("TRIAL_SEMANTICS_VERSION found but its value is not an integer".into());
        }
    }
    Err("TRIAL_SEMANTICS_VERSION not found in crates/faultsim/src/checkpoint.rs".into())
}

/// Parses `semantics.lock` (the same minimal-TOML subset as
/// `lint-allow.toml`: top-level `key = value` pairs and `[[module]]`
/// tables).
pub fn load_lock(path: &Path) -> Result<SemanticsLock, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut lock = SemanticsLock {
        format: 0,
        trial_semantics_version: 0,
        modules: Vec::new(),
    };
    let mut in_module = false;
    let mut pending: Option<(Option<String>, Option<String>)> = None;
    let finish = |p: &mut Option<(Option<String>, Option<String>)>,
                  modules: &mut Vec<(String, String)>|
     -> Result<(), String> {
        if let Some((path, fp)) = p.take() {
            match (path, fp) {
                (Some(path), Some(fp)) => modules.push((path, fp)),
                _ => return Err("semantics.lock: [[module]] missing path or fingerprint".into()),
            }
        }
        Ok(())
    };
    for (n, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[module]]" {
            finish(&mut pending, &mut lock.modules)?;
            pending = Some((None, None));
            in_module = true;
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("semantics.lock:{}: expected `key = value`", n + 1));
        };
        let key = key.trim();
        let value = value.trim().trim_matches('"').to_string();
        if !in_module {
            match key {
                "format" => {
                    lock.format = value
                        .parse()
                        .map_err(|_| format!("semantics.lock:{}: bad format", n + 1))?;
                }
                "trial_semantics_version" => {
                    lock.trial_semantics_version = value.parse().map_err(|_| {
                        format!("semantics.lock:{}: bad trial_semantics_version", n + 1)
                    })?;
                }
                other => {
                    return Err(format!("semantics.lock:{}: unknown key {other:?}", n + 1));
                }
            }
            continue;
        }
        let entry = pending
            .as_mut()
            .ok_or_else(|| format!("semantics.lock:{}: key outside [[module]]", n + 1))?;
        match key {
            "path" => entry.0 = Some(value),
            "fingerprint" => entry.1 = Some(value),
            other => {
                return Err(format!("semantics.lock:{}: unknown key {other:?}", n + 1));
            }
        }
    }
    finish(&mut pending, &mut lock.modules)?;
    if lock.format != LOCK_FORMAT {
        return Err(format!(
            "semantics.lock has format {} but this lint understands {LOCK_FORMAT} — regenerate \
             with `cargo xtask lint --update-semantics-lock`",
            lock.format
        ));
    }
    lock.modules.sort();
    Ok(lock)
}

/// Renders the lock file text for `modules` at `tsv`.
pub fn render_lock(tsv: u32, modules: &[(String, String)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# maxnvm `semantics.lock` — the S1 semantics-drift gate's manifest (DESIGN.md §16).\n\
         # One fingerprint per semantics-critical module: FNV-1a/64 over the comment- and\n\
         # whitespace-stripped token stream. Any fingerprint change must ride with a\n\
         # TRIAL_SEMANTICS_VERSION bump; regenerate with\n\
         #   cargo xtask lint --update-semantics-lock\n\
         # (add --same-version only for a reviewed, value-preserving refactor).\n\
         \n\
         format = {LOCK_FORMAT}\n\
         trial_semantics_version = {tsv}"
    );
    for (path, fp) in modules {
        let _ = writeln!(
            out,
            "\n[[module]]\npath = \"{path}\"\nfingerprint = \"{fp}\""
        );
    }
    out
}

/// The gate itself: compares the lock against the checked-out tree.
pub fn verify(lock: &SemanticsLock, current: &[(String, String)], cur_tsv: u32) -> Vec<S1Finding> {
    let mut findings = Vec::new();
    let changed = diff(lock, current);
    if lock.trial_semantics_version == cur_tsv {
        for d in &changed {
            match d {
                Diff::Changed(path) => findings.push((
                    "S1/drift",
                    path.clone(),
                    format!(
                        "semantics-critical module changed without a TRIAL_SEMANTICS_VERSION \
                         bump (still {cur_tsv}); bump it in crates/faultsim/src/checkpoint.rs \
                         and regenerate semantics.lock"
                    ),
                )),
                Diff::Added(path) => findings.push((
                    "S1/untracked",
                    path.clone(),
                    "new semantics-critical module is not in semantics.lock; bump \
                     TRIAL_SEMANTICS_VERSION if trial values can change, then regenerate"
                        .to_string(),
                )),
                Diff::Removed(path) => findings.push((
                    "S1/missing-module",
                    path.clone(),
                    "module recorded in semantics.lock no longer exists; regenerate the lock \
                     (and bump TRIAL_SEMANTICS_VERSION if trial values changed)"
                        .to_string(),
                )),
            }
        }
    } else if changed.is_empty() {
        findings.push((
            "S1/bump-without-change",
            LOCK_FILE.to_string(),
            format!(
                "TRIAL_SEMANTICS_VERSION is {cur_tsv} but semantics.lock was taken at {} with \
                 identical fingerprints — no semantics-critical module changed, so the bump is \
                 spurious (or the change lives outside the fingerprinted set: extend \
                 SEMANTICS_CRITICAL instead)",
                lock.trial_semantics_version
            ),
        ));
    } else {
        findings.push((
            "S1/lock-stale",
            LOCK_FILE.to_string(),
            format!(
                "TRIAL_SEMANTICS_VERSION moved {} → {cur_tsv} and {} module(s) changed; \
                 regenerate the manifest: cargo xtask lint --update-semantics-lock",
                lock.trial_semantics_version,
                changed.len()
            ),
        ));
    }
    findings
}

enum Diff {
    Changed(String),
    Added(String),
    Removed(String),
}

fn diff(lock: &SemanticsLock, current: &[(String, String)]) -> Vec<Diff> {
    let mut out = Vec::new();
    for (path, fp) in current {
        match lock.modules.iter().find(|(p, _)| p == path) {
            Some((_, locked)) if locked == fp => {}
            Some(_) => out.push(Diff::Changed(path.clone())),
            None => out.push(Diff::Added(path.clone())),
        }
    }
    for (path, _) in &lock.modules {
        if !current.iter().any(|(p, _)| p == path) {
            out.push(Diff::Removed(path.clone()));
        }
    }
    out
}

/// `cargo xtask lint --update-semantics-lock [--same-version]`.
///
/// Refuses to launder drift: with an existing lock, either the version
/// moved (and at least one fingerprint with it), or `--same-version`
/// vouches for a value-preserving refactor. Bootstrapping (no lock yet)
/// always writes.
pub fn update(root: &Path, same_version: bool) -> Result<String, String> {
    let current = current_modules(root)?;
    let cur_tsv = trial_semantics_version(root)?;
    let lock_path = root.join(LOCK_FILE);
    if lock_path.exists() {
        let lock = load_lock(&lock_path)?;
        let changed = diff(&lock, &current);
        if lock.trial_semantics_version == cur_tsv && !changed.is_empty() && !same_version {
            return Err(format!(
                "{} module(s) changed but TRIAL_SEMANTICS_VERSION is still {cur_tsv}: bump it \
                 first, or pass --same-version to vouch that the refactor preserves every trial \
                 value bit-for-bit",
                changed.len()
            ));
        }
        if lock.trial_semantics_version != cur_tsv && changed.is_empty() {
            return Err(format!(
                "TRIAL_SEMANTICS_VERSION moved {} → {cur_tsv} but no semantics-critical module \
                 changed — a bump without a change; revert it or extend SEMANTICS_CRITICAL to \
                 cover what actually changed",
                lock.trial_semantics_version
            ));
        }
    }
    fs::write(&lock_path, render_lock(cur_tsv, &current))
        .map_err(|e| format!("cannot write {}: {e}", lock_path.display()))?;
    Ok(format!(
        "wrote {} ({} modules at TRIAL_SEMANTICS_VERSION {cur_tsv})",
        lock_path.display(),
        current.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
    }

    fn lock_of(tsv: u32, modules: &[(String, String)]) -> SemanticsLock {
        SemanticsLock {
            format: LOCK_FORMAT,
            trial_semantics_version: tsv,
            modules: modules.to_vec(),
        }
    }

    #[test]
    fn fingerprint_is_formatting_invariant() {
        let a = fingerprint("fn f(x: u32) -> u32 { x + 1 }\n");
        let b = fingerprint("// doc\nfn f(\n    x: u32\n) -> u32 {\n    x + 1\n}\n");
        assert_eq!(a, b);
        assert_ne!(a, fingerprint("fn f(x: u32) -> u32 { x + 2 }\n"));
    }

    #[test]
    fn mutating_one_token_of_gemm_fails_the_gate() {
        // The S1 mutation test: flip a single token in a copy of a real
        // semantics-critical module and assert the gate turns red
        // without a version bump.
        let root = repo_root();
        let tsv = trial_semantics_version(&root).expect("version parses");
        let modules = current_modules(&root).expect("modules enumerate");
        let lock = lock_of(tsv, &modules);
        assert!(
            verify(&lock, &modules, tsv).is_empty(),
            "clean tree is clean"
        );

        let gemm = root.join("crates/dnn/src/gemm.rs");
        let src = fs::read_to_string(&gemm).expect("gemm.rs reads");
        let mutated_src = src.replacen("const", "static", 1);
        assert_ne!(src, mutated_src, "gemm.rs has a `const` token to flip");
        let mut mutated = modules.clone();
        let entry = mutated
            .iter_mut()
            .find(|(p, _)| p == "crates/dnn/src/gemm.rs")
            .expect("gemm.rs is fingerprinted");
        entry.1 = fingerprint(&mutated_src);

        let findings = verify(&lock, &mutated, tsv);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].0, "S1/drift");
        assert_eq!(findings[0].1, "crates/dnn/src/gemm.rs");
    }

    #[test]
    fn comment_only_edits_do_not_move_the_fingerprint() {
        let root = repo_root();
        let src = fs::read_to_string(root.join("crates/dnn/src/gemm.rs")).expect("gemm.rs reads");
        let annotated = format!("// maxnvm-lint: allow(R1/index-arith): hypothetical\n{src}");
        assert_eq!(fingerprint(&src), fingerprint(&annotated));
    }

    #[test]
    fn bump_without_change_fails_the_gate() {
        let root = repo_root();
        let tsv = trial_semantics_version(&root).expect("version parses");
        let modules = current_modules(&root).expect("modules enumerate");
        let lock = lock_of(tsv, &modules);
        let findings = verify(&lock, &modules, tsv + 1);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].0, "S1/bump-without-change");
    }

    #[test]
    fn bump_with_change_requires_regeneration() {
        let root = repo_root();
        let tsv = trial_semantics_version(&root).expect("version parses");
        let mut modules = current_modules(&root).expect("modules enumerate");
        let lock = lock_of(tsv, &modules);
        modules[0].1 = fingerprint("fn changed() {}\n");
        let findings = verify(&lock, &modules, tsv + 1);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].0, "S1/lock-stale");
    }

    #[test]
    fn module_set_drift_is_reported() {
        let modules = vec![
            ("a.rs".to_string(), "00".to_string()),
            ("b.rs".to_string(), "11".to_string()),
        ];
        let lock = lock_of(4, &modules);
        let current = vec![
            ("a.rs".to_string(), "00".to_string()),
            ("c.rs".to_string(), "22".to_string()),
        ];
        let findings = verify(&lock, &current, 4);
        let rules: Vec<&str> = findings.iter().map(|f| f.0).collect();
        assert!(rules.contains(&"S1/untracked"));
        assert!(rules.contains(&"S1/missing-module"));
    }

    #[test]
    fn lock_roundtrips_through_render_and_parse() {
        let modules = vec![
            (
                "crates/a/src/x.rs".to_string(),
                "0123456789abcdef".to_string(),
            ),
            (
                "crates/b/src/y.rs".to_string(),
                "fedcba9876543210".to_string(),
            ),
        ];
        let text = render_lock(7, &modules);
        let dir = std::env::temp_dir().join(format!("maxnvm-s1-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("semantics.lock");
        fs::write(&path, &text).expect("write temp lock");
        let lock = load_lock(&path).expect("parse back");
        fs::remove_file(&path).ok();
        assert_eq!(lock.format, LOCK_FORMAT);
        assert_eq!(lock.trial_semantics_version, 7);
        assert_eq!(lock.modules, modules);
    }

    #[test]
    fn the_expected_modules_are_fingerprinted() {
        // Pins the semantics-critical set: a module move cannot silently
        // drop a file from the gate (current_modules errors), and the
        // subtree expansion actually finds the kernels.
        let modules = current_modules(&repo_root()).expect("modules enumerate");
        for expected in [
            "crates/dnn/src/gemm.rs",
            "crates/dnn/src/gemm/dispatch.rs",
            "crates/dnn/src/gemm/kernel_x86.rs",
            "crates/dnn/src/gemm/kernel_neon.rs",
            "crates/dnn/src/prefix.rs",
            "crates/dnn/src/sparse.rs",
            "crates/ecc/src/lib.rs",
            "crates/encoding/src/storage/prepared.rs",
            "crates/encoding/src/storage/diskcache.rs",
            "crates/envm/src/fault.rs",
            "crates/envm/src/level.rs",
            "crates/envm/src/math.rs",
            "crates/faultsim/src/checkpoint.rs",
            "crates/faultsim/src/engine/shard.rs",
        ] {
            assert!(
                modules.iter().any(|(p, _)| p == expected),
                "{expected} missing from the S1 fingerprint set"
            );
        }
        // Test-only modules stay out: they cannot move trial values.
        assert!(!modules
            .iter()
            .any(|(p, _)| p == "crates/encoding/src/storage/tests.rs"));
    }
}
