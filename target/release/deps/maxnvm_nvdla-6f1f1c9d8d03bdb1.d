/root/repo/target/release/deps/maxnvm_nvdla-6f1f1c9d8d03bdb1.d: crates/nvdla/src/lib.rs crates/nvdla/src/config.rs crates/nvdla/src/hybrid.rs crates/nvdla/src/nonvolatility.rs crates/nvdla/src/perf.rs crates/nvdla/src/source.rs

/root/repo/target/release/deps/libmaxnvm_nvdla-6f1f1c9d8d03bdb1.rlib: crates/nvdla/src/lib.rs crates/nvdla/src/config.rs crates/nvdla/src/hybrid.rs crates/nvdla/src/nonvolatility.rs crates/nvdla/src/perf.rs crates/nvdla/src/source.rs

/root/repo/target/release/deps/libmaxnvm_nvdla-6f1f1c9d8d03bdb1.rmeta: crates/nvdla/src/lib.rs crates/nvdla/src/config.rs crates/nvdla/src/hybrid.rs crates/nvdla/src/nonvolatility.rs crates/nvdla/src/perf.rs crates/nvdla/src/source.rs

crates/nvdla/src/lib.rs:
crates/nvdla/src/config.rs:
crates/nvdla/src/hybrid.rs:
crates/nvdla/src/nonvolatility.rs:
crates/nvdla/src/perf.rs:
crates/nvdla/src/source.rs:
