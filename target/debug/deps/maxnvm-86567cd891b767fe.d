/root/repo/target/debug/deps/maxnvm-86567cd891b767fe.d: crates/core/src/lib.rs

/root/repo/target/debug/deps/libmaxnvm-86567cd891b767fe.rlib: crates/core/src/lib.rs

/root/repo/target/debug/deps/libmaxnvm-86567cd891b767fe.rmeta: crates/core/src/lib.rs

crates/core/src/lib.rs:
