//! Procedurally generated datasets standing in for MNIST / CiFar10 /
//! ImageNet.
//!
//! The paper's fault-tolerance phenomena depend on the *structure* of the
//! encodings and fault model, not on natural-image semantics (see
//! `DESIGN.md`). These synthetic tasks give the trainable stand-in models a
//! real classification problem so accuracy-under-fault is measured
//! end-to-end.

use crate::tensor::Tensor;
use rand::{Rng, SeedableRng};

/// Labelled dataset: `(input, class)` pairs.
pub type Samples = Vec<(Tensor, usize)>;

/// Gaussian cluster classification: `k` classes, each a Gaussian blob in
/// `d` dimensions with unit-variance noise and centers `separation` apart.
///
/// # Panics
///
/// Panics if `d == 0`, `k == 0`, or `n == 0`.
pub fn gaussian_clusters(d: usize, k: usize, n: usize, separation: f64, seed: u64) -> Samples {
    assert!(d > 0 && k > 0 && n > 0, "degenerate dataset");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    // Random unit-ish center per class, scaled by separation.
    let centers: Vec<Vec<f32>> = (0..k)
        .map(|_| {
            (0..d)
                .map(|_| (rng.gen::<f32>() - 0.5) * 2.0 * separation as f32)
                .collect()
        })
        .collect();
    (0..n)
        .map(|i| {
            let class = i % k;
            let x: Vec<f32> = centers[class]
                .iter()
                .map(|&c| {
                    let u1: f32 = 1.0 - rng.gen::<f32>();
                    let u2: f32 = rng.gen();
                    c + (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
                })
                .collect();
            (Tensor::from_vec(&[d], x), class)
        })
        .collect()
}

/// 16×16 synthetic digit glyphs with jitter and noise — the MNIST stand-in.
///
/// Each of the 10 classes has a fixed stroke pattern, rendered with random
/// sub-pixel shift, amplitude variation and additive noise.
#[derive(Debug, Clone)]
pub struct SyntheticDigits {
    /// Training split.
    pub train: Samples,
    /// Held-out test split.
    pub test: Samples,
}

/// Image side length for [`SyntheticDigits`].
pub const DIGIT_SIZE: usize = 16;

// Stroke patterns on a 7x5 grid (classic seven-segment-ish glyphs),
// upscaled to 16x16 at render time.
const GLYPHS: [[u8; 35]; 10] = [
    // 0
    [
        0, 1, 1, 1, 0, 1, 0, 0, 0, 1, 1, 0, 0, 0, 1, 1, 0, 0, 0, 1, 1, 0, 0, 0, 1, 1, 0, 0, 0, 1,
        0, 1, 1, 1, 0,
    ],
    // 1
    [
        0, 0, 1, 0, 0, 0, 1, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0,
        0, 1, 1, 1, 0,
    ],
    // 2
    [
        0, 1, 1, 1, 0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 1, 1, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 0,
        1, 1, 1, 1, 1,
    ],
    // 3
    [
        0, 1, 1, 1, 0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 1, 1, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 1,
        0, 1, 1, 1, 0,
    ],
    // 4
    [
        0, 0, 0, 1, 0, 0, 0, 1, 1, 0, 0, 1, 0, 1, 0, 1, 0, 0, 1, 0, 1, 1, 1, 1, 1, 0, 0, 0, 1, 0,
        0, 0, 0, 1, 0,
    ],
    // 5
    [
        1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 1, 1, 1, 1, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 1, 0, 0, 0, 1,
        0, 1, 1, 1, 0,
    ],
    // 6
    [
        0, 1, 1, 1, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 1, 1, 1, 0, 1, 0, 0, 0, 1, 1, 0, 0, 0, 1,
        0, 1, 1, 1, 0,
    ],
    // 7
    [
        1, 1, 1, 1, 1, 0, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0,
        0, 1, 0, 0, 0,
    ],
    // 8
    [
        0, 1, 1, 1, 0, 1, 0, 0, 0, 1, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0, 1, 0, 0, 0, 1, 1, 0, 0, 0, 1,
        0, 1, 1, 1, 0,
    ],
    // 9
    [
        0, 1, 1, 1, 0, 1, 0, 0, 0, 1, 1, 0, 0, 0, 1, 0, 1, 1, 1, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1,
        0, 1, 1, 1, 0,
    ],
];

/// Renders one digit image with the given jitter.
// maxnvm-lint: allow(R1/index-arith): glyph placement is gen_range-bounded to DIGIT_SIZE-14/-10 and offsets max out at 13/9, so y*DIGIT_SIZE+x stays inside the DIGIT_SIZE^2 canvas.
fn render_digit<R: Rng>(class: usize, rng: &mut R) -> Tensor {
    let mut img = vec![0.0f32; DIGIT_SIZE * DIGIT_SIZE];
    let glyph = &GLYPHS[class];
    // Random placement of the 7x5 glyph (upscaled x2 -> 14x10) inside 16x16.
    let oy = rng.gen_range(0..=(DIGIT_SIZE - 14));
    let ox = rng.gen_range(0..=(DIGIT_SIZE - 10));
    let amp = 0.8 + rng.gen::<f32>() * 0.4;
    for gy in 0..7 {
        for gx in 0..5 {
            if glyph[gy * 5 + gx] == 1 {
                for dy in 0..2 {
                    for dx in 0..2 {
                        let y = oy + gy * 2 + dy;
                        let x = ox + gx * 2 + dx;
                        img[y * DIGIT_SIZE + x] = amp;
                    }
                }
            }
        }
    }
    for v in &mut img {
        *v += (rng.gen::<f32>() - 0.5) * 0.25;
    }
    Tensor::from_vec(&[1, DIGIT_SIZE, DIGIT_SIZE], img)
}

impl SyntheticDigits {
    /// Generates `n_train` training and `n_train / 4` test samples.
    ///
    /// # Panics
    ///
    /// Panics if `n_train < 10`.
    pub fn generate(n_train: usize, seed: u64) -> Self {
        assert!(n_train >= 10, "need at least one sample per class");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let make = |n: usize, rng: &mut rand::rngs::StdRng| -> Samples {
            (0..n)
                .map(|i| (render_digit(i % 10, rng), i % 10))
                .collect()
        };
        let train = make(n_train, &mut rng);
        let test = make((n_train / 4).max(10), &mut rng);
        Self { train, test }
    }
}

/// Texture-patch classification — the CiFar10 stand-in: 3×16×16 patches of
/// class-dependent oriented sinusoidal gratings plus noise.
// maxnvm-lint: allow(R1/index-arith): img is allocated 3*side*side just above; c < 3, y < side, x < side by the loop bounds, so (c*side+y)*side+x is in range.
pub fn synthetic_textures(n: usize, classes: usize, seed: u64) -> Samples {
    assert!(classes >= 2 && n > 0, "degenerate dataset");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let side = 16usize;
    (0..n)
        .map(|i| {
            let class = i % classes;
            let theta = class as f32 / classes as f32 * std::f32::consts::PI;
            let freq = 0.5 + (class % 3) as f32 * 0.35;
            let phase = rng.gen::<f32>() * std::f32::consts::TAU;
            let mut img = vec![0.0f32; 3 * side * side];
            for c in 0..3 {
                let gain = 1.0 - 0.25 * c as f32;
                for y in 0..side {
                    for x in 0..side {
                        let u = theta.cos() * x as f32 + theta.sin() * y as f32;
                        img[(c * side + y) * side + x] =
                            gain * (freq * u + phase).sin() + (rng.gen::<f32>() - 0.5) * 0.4;
                    }
                }
            }
            (Tensor::from_vec(&[3, side, side], img), class)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clusters_have_balanced_classes() {
        let data = gaussian_clusters(4, 3, 99, 2.0, 1);
        assert_eq!(data.len(), 99);
        let count0 = data.iter().filter(|(_, y)| *y == 0).count();
        assert_eq!(count0, 33);
        assert_eq!(data[0].0.shape(), &[4]);
    }

    #[test]
    fn clusters_are_separable_by_nearest_center() {
        // With a large separation, classifying to the nearest empirical
        // class mean should be near-perfect.
        let data = gaussian_clusters(8, 3, 300, 4.0, 2);
        let mut means = vec![vec![0.0f32; 8]; 3];
        let mut counts = [0usize; 3];
        for (x, y) in &data {
            counts[*y] += 1;
            for (m, v) in means[*y].iter_mut().zip(x.data()) {
                *m += v;
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c as f32;
            }
        }
        let mut correct = 0;
        for (x, y) in &data {
            let best = (0..3)
                .min_by(|&a, &b| {
                    let da: f32 = means[a]
                        .iter()
                        .zip(x.data())
                        .map(|(m, v)| (m - v).powi(2))
                        .sum();
                    let db: f32 = means[b]
                        .iter()
                        .zip(x.data())
                        .map(|(m, v)| (m - v).powi(2))
                        .sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if best == *y {
                correct += 1;
            }
        }
        assert!(correct as f64 / data.len() as f64 > 0.95);
    }

    #[test]
    fn digits_have_expected_shapes() {
        let d = SyntheticDigits::generate(100, 3);
        assert_eq!(d.train.len(), 100);
        assert_eq!(d.test.len(), 25);
        assert_eq!(d.train[0].0.shape(), &[1, 16, 16]);
        // All ten classes present.
        for c in 0..10 {
            assert!(d.train.iter().any(|(_, y)| *y == c), "class {c} missing");
        }
    }

    #[test]
    fn digit_classes_are_visually_distinct() {
        // Mean absolute difference between class-0 and class-1 templates
        // should dominate intra-class variation.
        let d = SyntheticDigits::generate(200, 4);
        let mean_img = |class: usize| -> Vec<f32> {
            let imgs: Vec<&Tensor> = d
                .train
                .iter()
                .filter(|(_, y)| *y == class)
                .map(|(x, _)| x)
                .collect();
            let mut m = vec![0.0f32; 256];
            for img in &imgs {
                for (a, b) in m.iter_mut().zip(img.data()) {
                    *a += b;
                }
            }
            for a in &mut m {
                *a /= imgs.len() as f32;
            }
            m
        };
        let m0 = mean_img(0);
        let m1 = mean_img(1);
        let diff: f32 = m0.iter().zip(&m1).map(|(a, b)| (a - b).abs()).sum::<f32>() / 256.0;
        assert!(diff > 0.05, "class templates too similar: {diff}");
    }

    #[test]
    fn textures_have_three_channels() {
        let t = synthetic_textures(20, 10, 5);
        assert_eq!(t.len(), 20);
        assert_eq!(t[0].0.shape(), &[3, 16, 16]);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = SyntheticDigits::generate(50, 7);
        let b = SyntheticDigits::generate(50, 7);
        assert_eq!(a.train[0].0.data(), b.train[0].0.data());
        let c = SyntheticDigits::generate(50, 8);
        assert_ne!(a.train[0].0.data(), c.train[0].0.data());
    }
}
