/root/repo/target/debug/deps/maxnvm-4817b820ed90ac80.d: crates/core/src/bin/maxnvm.rs

/root/repo/target/debug/deps/maxnvm-4817b820ed90ac80: crates/core/src/bin/maxnvm.rs

crates/core/src/bin/maxnvm.rs:
