//! Shared fixture for the supervisor integration tests: one small
//! sparse layer with exaggerated fault rates (so faults land in every
//! trial), proxy evaluation, and per-stream campaigns distinguished by
//! seed so byte-identity checks are meaningful stream by stream.
#![allow(dead_code)]

use maxnvm_dnn::network::LayerMatrix;
use maxnvm_dnn::zoo;
use maxnvm_encoding::cluster::ClusteredLayer;
use maxnvm_encoding::storage::{StorageScheme, StoredLayer};
use maxnvm_encoding::EncodingKind;
use maxnvm_envm::{CellTechnology, MlcConfig, SenseAmp};
use maxnvm_faultsim::evaluate::{AccuracyEval, EvalScratch};
use maxnvm_faultsim::{Campaign, CampaignResult, ProxyEval};
use maxnvm_server::CampaignJob;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

pub const TECH: CellTechnology = CellTechnology::MlcCtt;
pub const RATE_SCALE: f64 = 120.0;

/// The shared single-layer model: deterministic in every process (all
/// stages seeded), which the cross-process kill-and-resume test relies
/// on.
pub fn fixture() -> (Vec<StoredLayer>, Arc<ProxyEval>) {
    let spec = zoo::vgg12();
    let m = spec.layers[4].sample_matrix(spec.paper.sparsity, 17, 48, 96);
    let c = ClusteredLayer::from_matrix(&m, 4, 5);
    let stored = StoredLayer::store(
        &c,
        &StorageScheme::uniform(EncodingKind::Csr, MlcConfig::MLC3),
    );
    let eval = Arc::new(ProxyEval::new(vec![c.reconstruct()], 0.1, 0.9));
    (vec![stored], eval)
}

/// The per-stream campaign: small enough that dozens run in seconds on
/// one core, seeded per stream.
pub fn campaign(seed: u64) -> Campaign {
    Campaign {
        trials: 12,
        seed,
        rate_scale: RATE_SCALE,
    }
}

/// A ready-to-submit job around the shared fixture.
pub fn job(seed: u64) -> CampaignJob {
    let (stored, eval) = fixture();
    CampaignJob {
        campaign: campaign(seed),
        stored,
        tech: TECH,
        sa: SenseAmp::paper_default(),
        eval,
    }
}

/// The uninterrupted ground truth for `seed`: a plain engine run with
/// the same evaluator — what every supervised/resumed/fault-injected
/// stream must reproduce byte for byte (contract D1).
pub fn direct(seed: u64) -> CampaignResult {
    let (stored, eval) = fixture();
    campaign(seed)
        .run(&stored, TECH, &SenseAmp::paper_default(), &*eval)
        .expect("direct run")
}

/// A unique fresh spool directory under the system temp dir.
pub fn temp_spool(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("maxnvm-server-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("spool dir");
    dir
}

/// Wraps the proxy evaluator with a fixed per-evaluation sleep without
/// changing any value — keeps streams running long enough to cancel,
/// quarantine, or SIGKILL mid-flight. Values stay byte-identical to the
/// plain evaluator's (the fast-path defaults are bit-identical).
#[derive(Debug)]
pub struct SlowEval {
    inner: Arc<ProxyEval>,
    delay: Duration,
}

impl SlowEval {
    pub fn new(inner: Arc<ProxyEval>, delay: Duration) -> Self {
        Self { inner, delay }
    }
}

impl AccuracyEval for SlowEval {
    fn baseline_error(&self) -> f64 {
        self.inner.baseline_error()
    }

    fn eval(&self, mats: &[LayerMatrix]) -> f64 {
        std::thread::sleep(self.delay);
        self.inner.eval(mats)
    }

    fn eval_scratch(&self, mats: &[LayerMatrix], scratch: &mut EvalScratch) -> f64 {
        std::thread::sleep(self.delay);
        self.inner.eval_scratch(mats, scratch)
    }
}

/// The same job with the evaluator slowed down by `delay` per
/// evaluation.
pub fn slow_job(seed: u64, delay: Duration) -> CampaignJob {
    let (stored, eval) = fixture();
    CampaignJob {
        campaign: campaign(seed),
        stored,
        tech: TECH,
        sa: SenseAmp::paper_default(),
        eval: Arc::new(SlowEval::new(eval, delay)),
    }
}
