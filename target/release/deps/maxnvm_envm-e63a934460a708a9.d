/root/repo/target/release/deps/maxnvm_envm-e63a934460a708a9.d: crates/envm/src/lib.rs crates/envm/src/fault.rs crates/envm/src/gray.rs crates/envm/src/level.rs crates/envm/src/math.rs crates/envm/src/reference.rs crates/envm/src/retention.rs crates/envm/src/sense.rs crates/envm/src/tech.rs crates/envm/src/write.rs

/root/repo/target/release/deps/libmaxnvm_envm-e63a934460a708a9.rlib: crates/envm/src/lib.rs crates/envm/src/fault.rs crates/envm/src/gray.rs crates/envm/src/level.rs crates/envm/src/math.rs crates/envm/src/reference.rs crates/envm/src/retention.rs crates/envm/src/sense.rs crates/envm/src/tech.rs crates/envm/src/write.rs

/root/repo/target/release/deps/libmaxnvm_envm-e63a934460a708a9.rmeta: crates/envm/src/lib.rs crates/envm/src/fault.rs crates/envm/src/gray.rs crates/envm/src/level.rs crates/envm/src/math.rs crates/envm/src/reference.rs crates/envm/src/retention.rs crates/envm/src/sense.rs crates/envm/src/tech.rs crates/envm/src/write.rs

crates/envm/src/lib.rs:
crates/envm/src/fault.rs:
crates/envm/src/gray.rs:
crates/envm/src/level.rs:
crates/envm/src/math.rs:
crates/envm/src/reference.rs:
crates/envm/src/retention.rs:
crates/envm/src/sense.rs:
crates/envm/src/tech.rs:
crates/envm/src/write.rs:
