//! Regression locks: the key quantitative results recorded in
//! `EXPERIMENTS.md`, pinned with tolerances so refactors cannot silently
//! drift the reproduction away from the paper's shape.

use maxnvm::{baseline_design, optimal_design, CellTechnology, NvdlaConfig};
use maxnvm_dnn::zoo;
use maxnvm_encoding::estimate::model_bits;
use maxnvm_encoding::EncodingKind;
use maxnvm_envm::{MlcConfig, SenseAmp};
use maxnvm_faultsim::dse::{explore_spec, minimal_cells_for_encoding};

fn within(value: f64, expected: f64, rel_tol: f64) -> bool {
    (value - expected).abs() <= expected.abs() * rel_tol
}

#[test]
fn lock_table2_bitmask_sizes() {
    // BitMask footprints (MB), ours as recorded in EXPERIMENTS.md; paper's
    // values in comments.
    let mb = |bits: u64| bits as f64 / 8.0 / 1024.0 / 1024.0;
    let cases = [
        (zoo::lenet5(), 0.101, 0.10),  // paper 107KB
        (zoo::vgg12(), 3.2, 0.10),     // paper 3.23MB
        (zoo::vgg16(), 35.2, 0.05),    // paper 35.5MB
        (zoo::resnet50(), 10.5, 0.10), // paper 11.2MB
    ];
    for (spec, expected, tol) in cases {
        let got = mb(model_bits(&spec, EncodingKind::BitMask, false));
        assert!(
            within(got, expected, tol),
            "{}: BitMask {got}MB vs locked {expected}MB",
            spec.name
        );
    }
}

#[test]
fn lock_vgg16_idxsync_saving() {
    // EXPERIMENTS.md: IdxSync cuts VGG16's minimal BitMask cells by
    // 17.6% (paper: 22%).
    let spec = zoo::vgg16();
    let points = explore_spec(
        &spec,
        CellTechnology::MlcCtt,
        &SenseAmp::paper_default(),
        spec.paper.itn_bound,
    );
    let plain = minimal_cells_for_encoding(&points, EncodingKind::BitMask, Some(false))
        .unwrap()
        .cells;
    let synced = minimal_cells_for_encoding(&points, EncodingKind::BitMask, Some(true))
        .unwrap()
        .cells;
    let saving = 1.0 - synced as f64 / plain as f64;
    assert!(
        (0.12..0.28).contains(&saving),
        "IdxSync saving {saving} drifted from the locked ~0.176"
    );
}

#[test]
fn lock_resnet50_headline_factors() {
    // EXPERIMENTS.md Fig. 9: 3.2x energy / 3.2x power on NVDLA-64.
    let spec = zoo::resnet50();
    let base = baseline_design(&spec, &NvdlaConfig::nvdla_64());
    let ctt = optimal_design(&spec, CellTechnology::MlcCtt).expect("design");
    let e = base.energy_per_inference_mj / ctt.system_64.energy_per_inference_mj;
    let p = base.avg_power_mw / ctt.system_64.avg_power_mw;
    assert!(within(e, 3.2, 0.20), "energy factor {e} vs locked 3.2");
    assert!(within(p, 3.2, 0.20), "power factor {p} vs locked 3.2");
}

#[test]
fn lock_fault_rate_calibration() {
    // EXPERIMENTS.md Fig. 2b: worst MLC3 adjacent rates per technology.
    let cases = [
        (CellTechnology::MlcCtt, 1.04e-5),
        (CellTechnology::MlcRram, 8.14e-6),
        (CellTechnology::OptMlcRram, 2.92e-6),
    ];
    for (tech, expected) in cases {
        let got = tech
            .cell_model(MlcConfig::MLC3)
            .fault_map()
            .worst_adjacent_rate();
        assert!(
            within(got, expected, 0.05),
            "{tech}: worst MLC3 rate {got:.3e} vs locked {expected:.3e}"
        );
    }
}

#[test]
fn lock_table4_areas() {
    // EXPERIMENTS.md Table 4 areas (mm², ours); paper's in comments.
    let cases = [
        (zoo::vgg16(), CellTechnology::MlcCtt, 2.64), // paper 2.0
        (zoo::vgg16(), CellTechnology::SlcRram, 17.48), // paper 19.2
        (zoo::resnet50(), CellTechnology::MlcCtt, 0.78), // paper 1.0
        (zoo::resnet50(), CellTechnology::SlcRram, 5.70), // paper 9.6
        (zoo::vgg12(), CellTechnology::OptMlcRram, 0.09), // paper 0.12
    ];
    for (spec, tech, expected) in cases {
        let got = optimal_design(&spec, tech).expect("design").array.area_mm2;
        assert!(
            within(got, expected, 0.15),
            "{} on {}: area {got} vs locked {expected}",
            spec.name,
            tech.name()
        );
    }
}

#[test]
fn lock_write_times() {
    // EXPERIMENTS.md Table 5: VGG16 CTT 13.6 minutes, VGG16 SLC 26ms.
    let vgg16 = zoo::vgg16();
    let ctt = optimal_design(&vgg16, CellTechnology::MlcCtt)
        .expect("design")
        .write_time_s;
    assert!(within(ctt, 13.6 * 60.0, 0.15), "CTT write {ctt}s");
    let slc = optimal_design(&vgg16, CellTechnology::SlcRram)
        .expect("design")
        .write_time_s;
    assert!(within(slc, 0.026, 0.20), "SLC write {slc}s");
}

#[test]
fn lock_fig10_crossover() {
    // EXPERIMENTS.md Fig. 10: always-on/wake-up crossover at ~30 FPS.
    use maxnvm_nvdla::nonvolatility::always_on_crossover_fps;
    use maxnvm_nvdla::perf::encoded_weight_bytes;
    let total: u64 = encoded_weight_bytes(&zoo::resnet50(), EncodingKind::BitMask, false)
        .iter()
        .sum();
    let cross = always_on_crossover_fps(&NvdlaConfig::nvdla_1024(), total);
    assert!(within(cross, 30.2, 0.10), "crossover {cross} FPS");
}
