/root/repo/target/debug/deps/maxnvm_bits-3f710da111f58b8a.d: crates/bits/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmaxnvm_bits-3f710da111f58b8a.rmeta: crates/bits/src/lib.rs Cargo.toml

crates/bits/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
