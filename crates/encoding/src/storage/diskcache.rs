//! Cross-process persistence for the [`super::EncodeCache`]: encode
//! artifacts written to a content-addressed on-disk store so N worker
//! processes sweeping the same design space pay the dominant encode
//! cost once instead of N times.
//!
//! Two artifact kinds are cached, mirroring the in-memory cache's two
//! maps: the raw [`EncodedStreams`] of a (layer, encoding, IdxSync)
//! triple, and the [`CleanLayerDecode`] they round-trip to. Both are
//! pure functions of the clustered layer content and the
//! encoding-relevant scheme components, so files are keyed by an FNV-1a
//! digest over exactly those inputs — any process that computes the
//! same key computes the same bytes, making concurrent writes
//! idempotent (last rename wins, contents identical).
//!
//! Files are text, written atomically (tmp + fsync + rename, the same
//! discipline as campaign checkpoints) through an [`ArtifactStore`] so
//! the fault-injection test suite can interpose a flaky backend. The
//! cache is strictly best-effort: an unreadable, torn, or corrupt entry
//! is treated as a miss and recomputed (and rewritten, self-healing);
//! a failed write is dropped. Trial results therefore never depend on
//! cache health — only wall-clock time does.
//!
//! Eviction is manual and always safe: entries are content-addressed
//! and self-contained, so deleting any or all files (or the whole
//! directory, via [`EncodeDiskCache::clear`]) can only cause misses.

use super::layer::EncodedStreams;
use super::prepared::CleanLayerDecode;
use super::scheme::StorageScheme;
use crate::cluster::ClusteredLayer;
use crate::{EncodingKind, StructureKind};
use maxnvm_bits::BitBuffer;
use maxnvm_dnn::network::LayerMatrix;
use maxnvm_dnn::sparse::SparseMatrix;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// On-disk format tag; bumped when the file layout changes (old entries
/// then simply miss and are rewritten).
pub const ENCODE_CACHE_FORMAT: &str = "maxnvm-encode-cache v1";

/// Counters of the disk layer's activity, surfaced on campaign and DSE
/// results so cross-process cache effectiveness is observable.
///
/// Only *disk* operations count: a run without a disk-backed cache
/// reports all zeros, and the purely in-memory sharing of the
/// [`super::EncodeCache`] is not tallied (it is unconditionally on).
/// Totals are deterministic for a single-worker context; with parallel
/// workers two concurrent misses on one key may both recompute (each
/// counted), so equality comparisons across runs should zero these
/// fields first.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodeCacheStats {
    /// Artifacts served from disk.
    pub disk_hits: u64,
    /// Artifacts recomputed because no (readable) entry existed.
    pub disk_misses: u64,
    /// Bytes of artifact text read from disk.
    pub bytes_read: u64,
    /// Bytes of artifact text written to disk.
    pub bytes_written: u64,
}

impl EncodeCacheStats {
    /// Disk hits over total disk lookups, or 0.0 with no lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.disk_hits + self.disk_misses;
        if total == 0 {
            0.0
        } else {
            self.disk_hits as f64 / total as f64
        }
    }
}

/// Storage backend for cache artifacts: the same read/write-atomic
/// shape as the checkpoint store, but expressed over `std::io::Error`
/// so the encoding crate stays independent of the fault-sim engine.
/// `maxnvm-faultsim` adapts its `CheckpointStore` (including the
/// fault-injecting one) onto this trait.
pub trait ArtifactStore: std::fmt::Debug + Send + Sync {
    /// Writes `text` to `path` atomically (crash leaves old or new
    /// content, never a silent mix).
    fn write_atomic(&self, path: &Path, text: &str) -> std::io::Result<()>;
    /// Reads the full text content of `path`.
    fn read(&self, path: &Path) -> std::io::Result<String>;
    /// Whether an artifact exists at `path`.
    fn exists(&self, path: &Path) -> bool;
    /// Removes the artifact at `path` (missing file is not an error).
    fn remove(&self, path: &Path) -> std::io::Result<()>;
}

/// The real filesystem store: tmp + fsync + rename, exactly the
/// checkpoint discipline, so a SIGKILL mid-write never leaves a torn
/// entry at the final path.
#[derive(Debug, Clone, Copy, Default)]
pub struct FsArtifactStore;

impl ArtifactStore for FsArtifactStore {
    fn write_atomic(&self, path: &Path, text: &str) -> std::io::Result<()> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        {
            use std::io::Write;
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(text.as_bytes())?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    fn read(&self, path: &Path) -> std::io::Result<String> {
        std::fs::read_to_string(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn remove(&self, path: &Path) -> std::io::Result<()> {
        match std::fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

/// FNV-1a/64 accumulator for content keys (same constants as the
/// checkpoint fingerprint; kept local so `maxnvm-encoding` stays
/// dependency-free of the engine).
struct ContentKey(u64);

impl ContentKey {
    fn new() -> Self {
        let mut k = ContentKey(0xcbf2_9ce4_8422_2325);
        k.push_str(ENCODE_CACHE_FORMAT);
        k
    }

    fn push_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
        self
    }

    fn push_u64(&mut self, v: u64) -> &mut Self {
        self.push_bytes(&v.to_le_bytes())
    }

    fn push_str(&mut self, s: &str) -> &mut Self {
        self.push_u64(s.len() as u64);
        self.push_bytes(s.as_bytes())
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Stable integer tag for each structure kind in the stream file format
/// (display names contain spaces, so they cannot delimit fields).
fn kind_tag(kind: StructureKind) -> u64 {
    match kind {
        StructureKind::Values => 0,
        StructureKind::ColIndex => 1,
        StructureKind::RowCounter => 2,
        StructureKind::Mask => 3,
        StructureKind::SyncCounter => 4,
        StructureKind::Centroids => 5,
    }
}

fn kind_from_tag(tag: u64) -> Option<StructureKind> {
    Some(match tag {
        0 => StructureKind::Values,
        1 => StructureKind::ColIndex,
        2 => StructureKind::RowCounter,
        3 => StructureKind::Mask,
        4 => StructureKind::SyncCounter,
        5 => StructureKind::Centroids,
        _ => return None,
    })
}

fn encoding_tag(kind: EncodingKind) -> u64 {
    match kind {
        EncodingKind::DenseClustered => 0,
        EncodingKind::Csr => 1,
        EncodingKind::BitMask => 2,
    }
}

/// The cross-process disk layer of the encode cache: a directory of
/// content-addressed text artifacts behind an [`ArtifactStore`].
///
/// Like the in-memory cache, one instance must only ever be used with
/// one list of layers (layer identity is the caller's index, memoized
/// into a content digest on first use).
pub struct EncodeDiskCache {
    dir: PathBuf,
    store: Arc<dyn ArtifactStore>,
    /// Memoized content digest per layer index.
    layer_keys: Mutex<BTreeMap<usize, u64>>,
    disk_hits: AtomicU64,
    disk_misses: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

impl std::fmt::Debug for EncodeDiskCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The vendored parking_lot Mutex has no Debug impl; the memo
        // table is not informative anyway.
        f.debug_struct("EncodeDiskCache")
            .field("dir", &self.dir)
            .field("store", &self.store)
            .finish()
    }
}

impl EncodeDiskCache {
    /// A disk cache rooted at `dir` (created on first write) over the
    /// real filesystem store.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            store: Arc::new(FsArtifactStore),
            layer_keys: Mutex::new(BTreeMap::new()),
            disk_hits: AtomicU64::new(0),
            disk_misses: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
        }
    }

    /// Routes all artifact I/O through `store` (e.g. a fault-injecting
    /// backend in the resilience test suite).
    pub fn with_store(mut self, store: Arc<dyn ArtifactStore>) -> Self {
        self.store = store;
        self
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Snapshot of the disk-layer counters.
    pub fn stats(&self) -> EncodeCacheStats {
        EncodeCacheStats {
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_misses: self.disk_misses.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }

    /// Evicts every cache entry (`*.mnvc` under the cache directory).
    /// Always safe: entries are content-addressed, so deletion can only
    /// cause future misses, never wrong artifacts.
    pub fn clear(&self) -> std::io::Result<()> {
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.extension().is_some_and(|e| e == "mnvc") {
                self.store.remove(&p)?;
            }
        }
        Ok(())
    }

    /// Content digest of `layer`, memoized under the caller's index.
    fn layer_key(&self, layer_idx: usize, layer: &ClusteredLayer) -> u64 {
        if let Some(&k) = self.layer_keys.lock().get(&layer_idx) {
            return k;
        }
        let mut k = ContentKey::new();
        k.push_str(&layer.name)
            .push_u64(layer.rows as u64)
            .push_u64(layer.cols as u64)
            .push_u64(layer.index_bits as u64)
            .push_u64(layer.centroids.len() as u64);
        for &c in &layer.centroids {
            k.push_u64(c.to_bits() as u64);
        }
        k.push_u64(layer.indices.len() as u64);
        for &i in &layer.indices {
            k.push_u64(i as u64);
        }
        let key = k.finish();
        self.layer_keys.lock().entry(layer_idx).or_insert(key);
        key
    }

    /// The content key shared by the streams and decode artifacts of
    /// (`layer`, encode-relevant scheme components): both are pure
    /// functions of exactly these inputs.
    fn artifact_key(
        &self,
        layer_idx: usize,
        layer: &ClusteredLayer,
        scheme: &StorageScheme,
    ) -> u64 {
        let idx_sync = scheme.encoding == EncodingKind::BitMask && scheme.idx_sync;
        let mut k = ContentKey::new();
        k.push_u64(self.layer_key(layer_idx, layer))
            .push_u64(encoding_tag(scheme.encoding))
            .push_u64(idx_sync as u64)
            .push_u64(if idx_sync {
                scheme.sync_block_bits as u64
            } else {
                0
            });
        k.finish()
    }

    fn path_for(&self, prefix: &str, key: u64) -> PathBuf {
        self.dir.join(format!("{prefix}-{key:016x}.mnvc"))
    }

    /// Reads and parses an artifact, counting a hit on success and a
    /// miss otherwise (missing, unreadable, torn, or corrupt entries
    /// all land on the recompute path).
    fn load<T>(&self, path: &Path, parse: impl FnOnce(&str) -> Option<T>) -> Option<T> {
        let parsed = self.store.read(path).ok().and_then(|text| {
            self.bytes_read
                .fetch_add(text.len() as u64, Ordering::Relaxed);
            parse(&text)
        });
        match parsed {
            Some(v) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.disk_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Best-effort atomic write; failures are dropped (the cache may
    /// not impede the sweep) but the byte count records the attempt's
    /// successful completion only.
    fn save(&self, path: &Path, text: &str) {
        if std::fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        if self.store.write_atomic(path, text).is_ok() {
            self.bytes_written
                .fetch_add(text.len() as u64, Ordering::Relaxed);
        }
    }

    /// The cached [`EncodedStreams`] for (`layer`, `scheme`), or `None`
    /// on a miss.
    pub(super) fn load_streams(
        &self,
        layer_idx: usize,
        layer: &ClusteredLayer,
        scheme: &StorageScheme,
    ) -> Option<EncodedStreams> {
        let key = self.artifact_key(layer_idx, layer, scheme);
        self.load(&self.path_for("s", key), parse_streams)
    }

    /// Persists freshly encoded streams.
    pub(super) fn store_streams(
        &self,
        layer_idx: usize,
        layer: &ClusteredLayer,
        scheme: &StorageScheme,
        encoded: &EncodedStreams,
    ) {
        let key = self.artifact_key(layer_idx, layer, scheme);
        self.save(&self.path_for("s", key), &render_streams(encoded));
    }

    /// The cached [`CleanLayerDecode`] for (`layer`, `scheme`), or
    /// `None` on a miss.
    pub(super) fn load_decode(
        &self,
        layer_idx: usize,
        layer: &ClusteredLayer,
        scheme: &StorageScheme,
    ) -> Option<CleanLayerDecode> {
        let key = self.artifact_key(layer_idx, layer, scheme);
        self.load(&self.path_for("d", key), parse_decode)
    }

    /// Persists a freshly computed clean decode.
    pub(super) fn store_decode(
        &self,
        layer_idx: usize,
        layer: &ClusteredLayer,
        scheme: &StorageScheme,
        decode: &CleanLayerDecode,
    ) {
        let key = self.artifact_key(layer_idx, layer, scheme);
        self.save(&self.path_for("d", key), &render_decode(decode));
    }
}

/// Serializes a bit buffer as `<bitlen> <hexword>*` (LSB-first 64-bit
/// words, exactly the internal layout, so the round trip is bitwise).
fn render_bits(out: &mut String, bits: &BitBuffer) {
    let _ = write!(out, "{}", bits.len());
    let mut start = 0usize;
    while start < bits.len() {
        let take = (bits.len() - start).min(64);
        let word = bits.read_at(start, take).unwrap_or(0);
        let _ = write!(out, " {word:x}");
        start += take;
    }
}

/// Parses the output of [`render_bits`] from a whitespace token stream.
fn parse_bits<'a>(tokens: &mut impl Iterator<Item = &'a str>) -> Option<BitBuffer> {
    let len: usize = tokens.next()?.parse().ok()?;
    let mut bits = BitBuffer::with_capacity(len);
    let mut start = 0usize;
    while start < len {
        let take = (len - start).min(64);
        let word = u64::from_str_radix(tokens.next()?, 16).ok()?;
        // Mask to the declared width so a corrupt token cannot trip the
        // bit-buffer's width assertion — the end marker still rejects
        // short files, and a wrong-but-well-formed word only yields a
        // cache entry that fails the caller's use, never a panic.
        let masked = if take == 64 {
            word
        } else {
            word & ((1u64 << take) - 1)
        };
        bits.push_bits(masked, take);
        start += take;
    }
    Some(bits)
}

fn render_streams(encoded: &EncodedStreams) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{ENCODE_CACHE_FORMAT} streams");
    let _ = writeln!(out, "entries {}", encoded.entries);
    let _ = writeln!(out, "col_idx_bits {}", encoded.col_idx_bits);
    let _ = writeln!(out, "counter_bits {}", encoded.counter_bits);
    for (kind, bits) in &encoded.streams {
        let _ = write!(out, "stream {} ", kind_tag(*kind));
        render_bits(&mut out, bits);
        out.push('\n');
    }
    let _ = writeln!(out, "end {}", encoded.streams.len());
    out
}

fn parse_streams(text: &str) -> Option<EncodedStreams> {
    let mut lines = text.lines();
    if lines.next()? != format!("{ENCODE_CACHE_FORMAT} streams") {
        return None;
    }
    let field = |line: Option<&str>, name: &str| -> Option<u64> {
        line?.strip_prefix(name)?.strip_prefix(' ')?.parse().ok()
    };
    let entries = field(lines.next(), "entries")? as usize;
    let col_idx_bits = u8::try_from(field(lines.next(), "col_idx_bits")?).ok()?;
    let counter_bits = u8::try_from(field(lines.next(), "counter_bits")?).ok()?;
    let mut streams = Vec::new();
    let mut ended = false;
    for line in lines {
        if let Some(rest) = line.strip_prefix("stream ") {
            let mut tokens = rest.split_ascii_whitespace();
            let kind = kind_from_tag(tokens.next()?.parse().ok()?)?;
            let bits = parse_bits(&mut tokens)?;
            if tokens.next().is_some() {
                return None; // trailing garbage
            }
            streams.push((kind, bits));
        } else if let Some(rest) = line.strip_prefix("end ") {
            if rest.parse::<usize>().ok()? != streams.len() {
                return None;
            }
            ended = true;
        } else {
            return None;
        }
    }
    ended.then_some(EncodedStreams {
        streams,
        entries,
        col_idx_bits,
        counter_bits,
    })
}

fn render_decode(decode: &CleanLayerDecode) -> String {
    let m = &decode.matrix;
    let mut out = String::new();
    let _ = writeln!(out, "{ENCODE_CACHE_FORMAT} decode");
    // The name is the last field on its line, so arbitrary characters
    // short of a newline survive; a newline-bearing name (never
    // produced by the model zoo) simply fails the round-trip test
    // below and the entry self-heals as a miss.
    let _ = writeln!(out, "name {}", m.name);
    let _ = writeln!(out, "rows {}", m.rows);
    let _ = writeln!(out, "cols {}", m.cols);
    let _ = write!(out, "matrix {}", m.data.len());
    for v in &m.data {
        let _ = write!(out, " {:x}", v.to_bits());
    }
    out.push('\n');
    let _ = write!(out, "slots {}", decode.value_slots.len());
    for s in &decode.value_slots {
        let _ = write!(out, " {s:x}");
    }
    out.push('\n');
    let _ = writeln!(out, "end 1");
    out
}

fn parse_decode(text: &str) -> Option<CleanLayerDecode> {
    let mut lines = text.lines();
    if lines.next()? != format!("{ENCODE_CACHE_FORMAT} decode") {
        return None;
    }
    let name = lines.next()?.strip_prefix("name ")?.to_string();
    let rows: usize = lines.next()?.strip_prefix("rows ")?.parse().ok()?;
    let cols: usize = lines.next()?.strip_prefix("cols ")?.parse().ok()?;
    let mut mat_tokens = lines
        .next()?
        .strip_prefix("matrix ")?
        .split_ascii_whitespace();
    let n: usize = mat_tokens.next()?.parse().ok()?;
    if n != rows.checked_mul(cols)? {
        return None;
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(f32::from_bits(
            u32::from_str_radix(mat_tokens.next()?, 16).ok()?,
        ));
    }
    if mat_tokens.next().is_some() {
        return None;
    }
    let mut slot_tokens = lines
        .next()?
        .strip_prefix("slots ")?
        .split_ascii_whitespace();
    let n_slots: usize = slot_tokens.next()?.parse().ok()?;
    let mut value_slots = Vec::with_capacity(n_slots);
    for _ in 0..n_slots {
        value_slots.push(u32::from_str_radix(slot_tokens.next()?, 16).ok()?);
    }
    if slot_tokens.next().is_some() || lines.next()? != "end 1" || lines.next().is_some() {
        return None;
    }
    let matrix = LayerMatrix::new(&name, rows, cols, data);
    // The sparse twin is doc-locked to equal `from_dense` of the clean
    // matrix (see `CleanLayerDecode`), so rebuilding it here reproduces
    // the in-memory value bit for bit without storing it.
    let sparse = SparseMatrix::from_dense(matrix.rows, matrix.cols, &matrix.data);
    Some(CleanLayerDecode {
        matrix,
        value_slots,
        sparse,
    })
}
