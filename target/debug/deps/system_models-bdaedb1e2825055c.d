/root/repo/target/debug/deps/system_models-bdaedb1e2825055c.d: crates/bench/benches/system_models.rs

/root/repo/target/debug/deps/system_models-bdaedb1e2825055c: crates/bench/benches/system_models.rs

crates/bench/benches/system_models.rs:
