//! SRAM macro model: NVDLA's convolution buffer and activation SRAM, and
//! the SRAM side of the hybrid-memory study (§6).
//!
//! The paper budgets "1mm², enough to accommodate about 1MB of SRAM" in a
//! modern node (§6); reads are ~1ns and cheap relative to DRAM.

use serde::{Deserialize, Serialize};

/// SRAM density assumed by the hybrid study: bytes per mm².
pub const SRAM_BYTES_PER_MM2: f64 = 1024.0 * 1024.0;

/// A characterized on-chip SRAM macro.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SramMacro {
    /// Capacity in bytes.
    pub bytes: u64,
    /// Macro area (mm²).
    pub area_mm2: f64,
    /// Read latency (ns).
    pub read_latency_ns: f64,
    /// Energy per 128-bit access (pJ).
    pub access_energy_pj: f64,
    /// Leakage power (mW).
    pub leakage_mw: f64,
    /// Sustained bandwidth (GB/s).
    pub bandwidth_gbps: f64,
}

impl SramMacro {
    /// Builds a macro of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `bytes == 0`.
    pub fn new(bytes: u64) -> Self {
        assert!(bytes > 0, "empty SRAM");
        let mb = bytes as f64 / (1024.0 * 1024.0);
        Self {
            bytes,
            area_mm2: bytes as f64 / SRAM_BYTES_PER_MM2,
            // Bigger macros pay more H-tree levels.
            read_latency_ns: 0.7 + 0.15 * mb.max(0.062_5).log2().max(0.0),
            access_energy_pj: 1.2 + 0.4 * mb.max(0.062_5).log2().max(0.0),
            leakage_mw: 18.0 * mb,
            bandwidth_gbps: 6.0 + 9.5 * mb,
        }
    }

    /// The largest macro fitting in `area_mm2` of silicon, or `None` if the
    /// budget is below 64KB.
    pub fn fit_in_area(area_mm2: f64) -> Option<Self> {
        let bytes = (area_mm2 * SRAM_BYTES_PER_MM2) as u64;
        if bytes < 64 * 1024 {
            None
        } else {
            Some(Self::new(bytes))
        }
    }

    /// Energy to move `bytes` through the macro (pJ).
    pub fn energy_for_bytes(&self, bytes: u64) -> f64 {
        let accesses = (bytes * 8).div_ceil(128);
        accesses as f64 * self.access_energy_pj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_megabyte_is_about_a_square_millimetre() {
        let s = SramMacro::new(1024 * 1024);
        assert!((s.area_mm2 - 1.0).abs() < 0.05);
        assert!((0.5..2.0).contains(&s.read_latency_ns));
    }

    #[test]
    fn bigger_macros_are_slower_and_hungrier() {
        let small = SramMacro::new(256 * 1024);
        let big = SramMacro::new(4 * 1024 * 1024);
        assert!(big.read_latency_ns > small.read_latency_ns);
        assert!(big.access_energy_pj > small.access_energy_pj);
        assert!(big.leakage_mw > small.leakage_mw);
        assert!(big.bandwidth_gbps > small.bandwidth_gbps);
    }

    #[test]
    fn fit_in_area_honours_budget() {
        let s = SramMacro::fit_in_area(0.5).unwrap();
        assert!(s.area_mm2 <= 0.5 + 1e-9);
        assert!(SramMacro::fit_in_area(0.01).is_none());
    }

    #[test]
    fn sram_bandwidth_matches_table3_scale() {
        // Table 3: SRAM BW 6 GB/s (NVDLA-64, 512KB) to 25 GB/s (2MB).
        let small = SramMacro::new(512 * 1024);
        let big = SramMacro::new(2 * 1024 * 1024);
        assert!(
            (4.0..15.0).contains(&small.bandwidth_gbps),
            "{}",
            small.bandwidth_gbps
        );
        assert!(
            (15.0..40.0).contains(&big.bandwidth_gbps),
            "{}",
            big.bandwidth_gbps
        );
    }

    #[test]
    fn energy_scales_with_traffic() {
        let s = SramMacro::new(1024 * 1024);
        assert!((s.energy_for_bytes(2048) / s.energy_for_bytes(1024) - 2.0).abs() < 0.01);
    }
}
