/root/repo/target/debug/deps/maxnvm_faultsim-1b5053ac622b5c9e.d: crates/faultsim/src/lib.rs crates/faultsim/src/analytic.rs crates/faultsim/src/campaign.rs crates/faultsim/src/dse.rs crates/faultsim/src/engine/mod.rs crates/faultsim/src/engine/error.rs crates/faultsim/src/engine/pool.rs crates/faultsim/src/evaluate.rs crates/faultsim/src/vulnerability.rs Cargo.toml

/root/repo/target/debug/deps/libmaxnvm_faultsim-1b5053ac622b5c9e.rmeta: crates/faultsim/src/lib.rs crates/faultsim/src/analytic.rs crates/faultsim/src/campaign.rs crates/faultsim/src/dse.rs crates/faultsim/src/engine/mod.rs crates/faultsim/src/engine/error.rs crates/faultsim/src/engine/pool.rs crates/faultsim/src/evaluate.rs crates/faultsim/src/vulnerability.rs Cargo.toml

crates/faultsim/src/lib.rs:
crates/faultsim/src/analytic.rs:
crates/faultsim/src/campaign.rs:
crates/faultsim/src/dse.rs:
crates/faultsim/src/engine/mod.rs:
crates/faultsim/src/engine/error.rs:
crates/faultsim/src/engine/pool.rs:
crates/faultsim/src/evaluate.rs:
crates/faultsim/src/vulnerability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
