/root/repo/target/debug/deps/proptest-6af2d2c913ecfe21.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-6af2d2c913ecfe21.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-6af2d2c913ecfe21.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
