/root/repo/target/debug/examples/quickstart-07f5b16e27fe6b88.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-07f5b16e27fe6b88.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
