/root/repo/target/debug/examples/embedded_inference-84c1ade2fd5565a7.d: examples/embedded_inference.rs

/root/repo/target/debug/examples/embedded_inference-84c1ade2fd5565a7: examples/embedded_inference.rs

examples/embedded_inference.rs:
