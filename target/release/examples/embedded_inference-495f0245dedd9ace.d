/root/repo/target/release/examples/embedded_inference-495f0245dedd9ace.d: examples/embedded_inference.rs

/root/repo/target/release/examples/embedded_inference-495f0245dedd9ace: examples/embedded_inference.rs

examples/embedded_inference.rs:
