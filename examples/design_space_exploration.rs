//! Exhaustive design-space exploration (paper §4.4): sweep every encoding
//! × per-structure bits-per-cell × protection combination for a model and
//! print the landscape — which configurations preserve accuracy, which
//! minimize cells, and where the interesting tensions live.
//!
//! ```sh
//! cargo run --example design_space_exploration
//! ```

use maxnvm_dnn::zoo;
use maxnvm_envm::{CellTechnology, SenseAmp};
use maxnvm_faultsim::dse::{explore_spec, minimal_cells, DsePoint};

fn main() {
    let spec = zoo::vgg16();
    let tech = CellTechnology::MlcCtt;
    let sa = SenseAmp::paper_default();
    println!(
        "Design space for {} on {} (ITN bound {:.2}%):\n",
        spec.name,
        tech.name(),
        spec.paper.itn_bound * 100.0
    );
    let mut points = explore_spec(&spec, tech, &sa, spec.paper.itn_bound);
    points.sort_by_key(|p| p.cells);
    println!(
        "{:<20} {:>5} {:>5} {:>12} {:>10} {:>6}",
        "scheme", "v-bpc", "m-bpc", "cells(M)", "error", "pass"
    );
    let show = |p: &DsePoint| {
        println!(
            "{:<20} {:>5} {:>5} {:>12.1} {:>9.2}% {:>6}",
            p.scheme.label(),
            p.scheme.bpc.values.bits(),
            p.scheme.bpc.mask.max(p.scheme.bpc.col_index).bits(),
            p.cells as f64 / 1e6,
            p.mean_error * 100.0,
            if p.passes { "yes" } else { "NO" }
        );
    };
    println!("-- ten densest configurations (several fail accuracy!) --");
    for p in points.iter().take(10) {
        show(p);
    }
    println!("\n-- the winner --");
    let best = minimal_cells(&points).expect("something passes");
    show(best);
    let total = points.len();
    let passing = points.iter().filter(|p| p.passes).count();
    println!(
        "\n{passing}/{total} configurations preserve accuracy; the minimal-cell one\n\
         needs {:.1}M cells — {:.1}x fewer than the safest all-SLC dense layout\n\
         ({:.1}M cells).",
        best.cells as f64 / 1e6,
        points
            .iter()
            .filter(|p| p.passes)
            .map(|p| p.cells)
            .max()
            .unwrap() as f64
            / best.cells as f64,
        points
            .iter()
            .filter(|p| p.passes)
            .map(|p| p.cells)
            .max()
            .unwrap() as f64
            / 1e6
    );
    println!("\nKey §4.2 tension on display: the densest configurations store the");
    println!("bitmask or CSR counters in MLC3 *without* protection and fail; adding");
    println!("IdxSync or ECC makes the same densities safe for ~1% extra cells.");
}
