/root/repo/target/debug/deps/fig5-f9c067b0f9965bde.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-f9c067b0f9965bde: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
