/root/repo/target/debug/deps/maxnvm_encoding-d5f503edcc7fd2e1.d: crates/encoding/src/lib.rs crates/encoding/src/bitmask.rs crates/encoding/src/cluster.rs crates/encoding/src/csr.rs crates/encoding/src/dense.rs crates/encoding/src/estimate.rs crates/encoding/src/quantize.rs crates/encoding/src/storage/mod.rs crates/encoding/src/storage/cache.rs crates/encoding/src/storage/chip.rs crates/encoding/src/storage/codec.rs crates/encoding/src/storage/layer.rs crates/encoding/src/storage/model.rs crates/encoding/src/storage/scheme.rs crates/encoding/src/storage/structure.rs Cargo.toml

/root/repo/target/debug/deps/libmaxnvm_encoding-d5f503edcc7fd2e1.rmeta: crates/encoding/src/lib.rs crates/encoding/src/bitmask.rs crates/encoding/src/cluster.rs crates/encoding/src/csr.rs crates/encoding/src/dense.rs crates/encoding/src/estimate.rs crates/encoding/src/quantize.rs crates/encoding/src/storage/mod.rs crates/encoding/src/storage/cache.rs crates/encoding/src/storage/chip.rs crates/encoding/src/storage/codec.rs crates/encoding/src/storage/layer.rs crates/encoding/src/storage/model.rs crates/encoding/src/storage/scheme.rs crates/encoding/src/storage/structure.rs Cargo.toml

crates/encoding/src/lib.rs:
crates/encoding/src/bitmask.rs:
crates/encoding/src/cluster.rs:
crates/encoding/src/csr.rs:
crates/encoding/src/dense.rs:
crates/encoding/src/estimate.rs:
crates/encoding/src/quantize.rs:
crates/encoding/src/storage/mod.rs:
crates/encoding/src/storage/cache.rs:
crates/encoding/src/storage/chip.rs:
crates/encoding/src/storage/codec.rs:
crates/encoding/src/storage/layer.rs:
crates/encoding/src/storage/model.rs:
crates/encoding/src/storage/scheme.rs:
crates/encoding/src/storage/structure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
