//! Deterministic sharding of a trial sweep across processes.
//!
//! A sharded run executes a subset of a sweep's (group, trial) pairs —
//! nothing else about trial semantics changes. Because trial `t` of a
//! group always seeds its RNG as `seed.wrapping_add(t)` regardless of
//! which worker (or process, or machine) runs it, a shard draws the
//! *identical* random stream the unsharded run would have used for
//! those trials, and merging shard outputs reproduces the 1-shard run
//! byte for byte.
//!
//! Assignment is a pure function of (base configuration fingerprint,
//! group, trial) reduced modulo the shard count: every pair belongs to
//! exactly one shard, every shard layout covers the whole sweep, and
//! the same configuration partitions the same way on every host. The
//! fingerprint salt keeps assignment from correlating across different
//! sweeps (shard 0 does not always get trial 0's cost profile), while
//! a fixed layout stays stable run over run.

use super::EngineError;
use crate::checkpoint::Fingerprint;

/// Which slice of a sweep this process runs: shard `index` of `count`.
///
/// The default (`index 0, count 1`) is the unsharded layout: it owns
/// every (group, trial) pair, so existing single-process runs are
/// unchanged — same assignment, same RNG streams, same results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This process's shard, in `0..count`.
    pub index: usize,
    /// Total number of shards the sweep is split into.
    pub count: usize,
}

impl Default for ShardSpec {
    fn default() -> Self {
        Self::unsharded()
    }
}

impl ShardSpec {
    /// The layout that owns the whole sweep (index 0 of 1).
    pub fn unsharded() -> Self {
        Self { index: 0, count: 1 }
    }

    /// Shard `index` of `count`; validate with [`Self::validate`].
    pub fn of(index: usize, count: usize) -> Self {
        Self { index, count }
    }

    /// Whether this is the trivial single-shard layout.
    pub fn is_unsharded(&self) -> bool {
        self.count == 1
    }

    /// Errors with [`EngineError::InvalidShardConfig`] unless
    /// `count >= 1` and `index < count`.
    pub fn validate(&self) -> Result<(), EngineError> {
        if self.count == 0 || self.index >= self.count {
            Err(EngineError::InvalidShardConfig {
                index: self.index,
                count: self.count,
            })
        } else {
            Ok(())
        }
    }

    /// Whether this shard owns `(group, trial)` of the sweep whose base
    /// configuration fingerprint is `base_fp`: the pure assignment
    /// function. For any valid layout the shards partition the sweep —
    /// each pair belongs to exactly one shard — and `count == 1` owns
    /// everything.
    pub fn owns(&self, base_fp: u64, group: usize, trial: usize) -> bool {
        if self.count <= 1 {
            return true;
        }
        let mut f = Fingerprint::resume(base_fp);
        f.push_u64(group as u64).push_u64(trial as u64);
        (f.finish() % self.count as u64) == self.index as u64
    }

    /// Folds this shard layout on top of a base configuration
    /// fingerprint. Shard checkpoints carry the folded digest, so a
    /// resume under a different layout (or of an unsharded snapshot by
    /// a sharded run) fails as a typed `CheckpointMismatch` instead of
    /// silently executing the wrong slice. Applied uniformly — the
    /// unsharded layout folds `(0, 1)` — so sharded and unsharded
    /// snapshots can never be confused for one another by accident of
    /// a matching base digest.
    pub fn fold_fingerprint(&self, base: u64) -> u64 {
        let mut f = Fingerprint::resume(base);
        f.push_str("shard")
            .push_u64(self.index as u64)
            .push_u64(self.count as u64);
        f.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_degenerate_layouts() {
        ShardSpec::unsharded().validate().expect("default is valid");
        ShardSpec::of(3, 4).validate().expect("last shard is valid");
        for (index, count) in [(0, 0), (1, 1), (4, 4), (7, 2)] {
            let err = ShardSpec::of(index, count)
                .validate()
                .expect_err("must reject");
            assert_eq!(err, EngineError::InvalidShardConfig { index, count });
        }
    }

    #[test]
    fn shards_partition_the_sweep_exactly() {
        let base = 0x1234_5678_9abc_def0u64;
        for count in [1usize, 2, 3, 8] {
            for group in 0..5 {
                for trial in 0..97 {
                    let owners: Vec<usize> = (0..count)
                        .filter(|&i| ShardSpec::of(i, count).owns(base, group, trial))
                        .collect();
                    assert_eq!(owners.len(), 1, "count {count} g {group} t {trial}");
                }
            }
        }
    }

    #[test]
    fn assignment_is_deterministic_and_salted_by_fingerprint() {
        let spec = ShardSpec::of(1, 4);
        let a: Vec<bool> = (0..64).map(|t| spec.owns(7, 0, t)).collect();
        let b: Vec<bool> = (0..64).map(|t| spec.owns(7, 0, t)).collect();
        assert_eq!(a, b, "pure function of its inputs");
        let other: Vec<bool> = (0..64).map(|t| spec.owns(8, 0, t)).collect();
        assert_ne!(a, other, "different sweeps partition differently");
        // Every shard of a 4-way layout gets some of 64 trials (the mix
        // spreads work rather than striping one shard empty).
        for i in 0..4 {
            assert!(
                (0..64).any(|t| ShardSpec::of(i, 4).owns(7, 0, t)),
                "shard {i} starved"
            );
        }
    }

    #[test]
    fn fingerprint_folding_distinguishes_layouts() {
        let base = 42u64;
        let folded: Vec<u64> = [(0, 1), (0, 2), (1, 2), (0, 3)]
            .iter()
            .map(|&(i, c)| ShardSpec::of(i, c).fold_fingerprint(base))
            .collect();
        for (i, a) in folded.iter().enumerate() {
            assert_ne!(*a, base, "folding is never the identity");
            for b in &folded[i + 1..] {
                assert_ne!(a, b, "distinct layouts, distinct digests");
            }
        }
    }
}
