//! **MaxNVM** — a principled co-design of sparse encodings, protective
//! logic, and fault-prone MLC eNVM technologies for highly-efficient DNN
//! inference. A from-scratch Rust reproduction of the MICRO-52 paper.
//!
//! The crate ties the subsystem crates into the paper's end-to-end flow
//! (Fig. 3):
//!
//! ```text
//! trained/spec'd DNN  ──►  prune + cluster      (maxnvm-dnn, maxnvm-encoding)
//!                     ──►  sparse encode        (CSR / BitMask / P+C)
//!                     ──►  fault-model DSE      (maxnvm-envm, maxnvm-faultsim)
//!                     ──►  array characterization (maxnvm-nvsim)
//!                     ──►  system evaluation    (maxnvm-nvdla)
//! ```
//!
//! [`optimal_design`] runs the whole pipeline for one model × technology,
//! producing the Table 4 quantities: optimal encoding, max bits-per-cell,
//! capacity, macro area, read latency, and NVDLA frame rate — plus energy
//! and power against the DRAM baseline.
//!
//! # Example
//!
//! ```
//! use maxnvm::{optimal_design, CellTechnology};
//! use maxnvm_dnn::zoo;
//!
//! let design = optimal_design(&zoo::resnet50(), CellTechnology::MlcCtt)
//!     .expect("SLC fallback always passes");
//! // ResNet50 fits on-chip in a couple of mm² of MLC-CTT (paper: 1.0mm²).
//! assert!(design.array.area_mm2 < 5.0);
//! assert!(design.scheme_label.contains("BitM") || design.scheme_label.contains("CSR"));
//! ```

pub use maxnvm_envm::{CellTechnology, MlcConfig, SenseAmp};
pub use maxnvm_faultsim::engine::EngineError;
pub use maxnvm_nvdla::{NvdlaConfig, SystemReport, WeightSource};
pub use maxnvm_nvsim::{ArrayDesign, NvsimError, OptTarget};

use maxnvm_dnn::zoo::ModelSpec;
use maxnvm_encoding::storage::StorageScheme;
use maxnvm_envm::WriteModel;
use maxnvm_faultsim::dse::{explore_spec, minimal_cells, DsePoint};
use maxnvm_nvdla::perf::{encoded_weight_bytes, evaluate};
use maxnvm_nvsim::{characterize_min_width, ArrayRequest};
use serde::{Deserialize, Serialize};

/// The outcome of the full co-design pipeline for one model on one
/// technology: everything a Table 4 row reports, plus the baseline
/// comparison behind Fig. 9.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Model name.
    pub model: String,
    /// Memory technology.
    pub tech: CellTechnology,
    /// Winning storage configuration ("BitM+IdxSync", "CSR+ECC", ...).
    pub scheme_label: String,
    /// The full winning scheme.
    pub scheme: StorageScheme,
    /// Maximum bits per cell used by any structure (Table 4 "BPC").
    pub max_bits_per_cell: u8,
    /// Total memory cells for all weights.
    pub cells: u64,
    /// Encoded capacity in MB (Table 4's capacity column).
    pub capacity_mb: f64,
    /// Estimated mean classification error under faults.
    pub mean_error: f64,
    /// The characterized eNVM macro.
    pub array: ArrayDesign,
    /// System evaluation on NVDLA-64 with this macro as weight store.
    pub system_64: SystemReport,
    /// System evaluation on NVDLA-1024.
    pub system_1024: SystemReport,
    /// Optimistic total time to (re)write all weights (seconds, Table 5).
    pub write_time_s: f64,
}

/// Runs the complete pipeline for a model spec on a technology, selecting
/// the minimal-cell accuracy-preserving storage configuration (§4.4) and
/// characterizing the resulting system (§5).
///
/// Errors with [`EngineError::NoPassingScheme`] if no storage
/// configuration preserves accuracy (cannot happen for the supported
/// technologies: SLC always passes).
pub fn optimal_design(spec: &ModelSpec, tech: CellTechnology) -> Result<DesignPoint, EngineError> {
    let sa = SenseAmp::paper_default();
    let points = explore_spec(spec, tech, &sa, spec.paper.itn_bound);
    let best: &DsePoint = minimal_cells(&points).ok_or(EngineError::NoPassingScheme)?;
    design_from_scheme(spec, tech, best.scheme.clone(), best.cells, best.mean_error).map_err(|e| {
        // The DSE only proposes capacities nvsim can organize, so an
        // infeasible array here is an engine invariant violation.
        EngineError::Internal {
            detail: format!("array characterization failed: {e}"),
        }
    })
}

/// Characterizes a specific (already chosen) scheme — used by the
/// benchmark harness to pin the encodings the paper's Table 4 lists.
///
/// Errors with [`NvsimError`] if no array organization can serve the
/// requested capacity at the required access width.
pub fn design_from_scheme(
    spec: &ModelSpec,
    tech: CellTechnology,
    scheme: StorageScheme,
    cells: u64,
    mean_error: f64,
) -> Result<DesignPoint, NvsimError> {
    let bpc = scheme.max_bpc().bits();
    // The weight store feeds NVDLA's 128-bit read beats: require a wide
    // access interface when picking the EDP-optimal organization.
    let array =
        characterize_min_width(&ArrayRequest::new(tech, cells, bpc), OptTarget::ReadEdp, 96)?;
    let weight_bytes = encoded_weight_bytes(spec, scheme.encoding, scheme.idx_sync);
    let source = WeightSource::Envm(array);
    let system_64 = evaluate(spec, &NvdlaConfig::nvdla_64(), &source, &weight_bytes);
    let system_1024 = evaluate(spec, &NvdlaConfig::nvdla_1024(), &source, &weight_bytes);
    let write_time_s = WriteModel::for_tech(tech).total_write_time_s(cells);
    Ok(DesignPoint {
        model: spec.name.clone(),
        tech,
        scheme_label: scheme.label(),
        max_bits_per_cell: bpc,
        cells,
        capacity_mb: cells as f64 * bpc as f64 / 8.0 / 1024.0 / 1024.0,
        mean_error,
        scheme,
        array,
        system_64,
        system_1024,
        write_time_s,
    })
}

/// The DRAM-baseline system evaluation for a model (Fig. 7a): weights
/// stream from LPDDR4, encoded with the NVDLA-native BitMask format.
pub fn baseline_design(spec: &ModelSpec, cfg: &NvdlaConfig) -> SystemReport {
    let weight_bytes = encoded_weight_bytes(spec, maxnvm_encoding::EncodingKind::BitMask, false);
    evaluate(spec, cfg, &WeightSource::Dram, &weight_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxnvm_dnn::zoo;

    #[test]
    fn resnet50_ctt_matches_table4_shape() {
        // Table 4, ResNet50 × MLC-CTT: BitM+IdxSync, 2 BPC, 12MB, 1.0mm².
        let d = optimal_design(&zoo::resnet50(), CellTechnology::MlcCtt).expect("design");
        assert!(
            d.scheme_label.starts_with("BitM+IdxSync"),
            "{}",
            d.scheme_label
        );
        assert!(
            (0.3..4.0).contains(&d.array.area_mm2),
            "{}",
            d.array.area_mm2
        );
        assert!((6.0..20.0).contains(&d.capacity_mb), "{} MB", d.capacity_mb);
        assert!(d.system_1024.fps > 60.0, "fps {}", d.system_1024.fps);
    }

    #[test]
    fn vgg16_fits_on_chip_in_a_few_mm2() {
        // §5.1: VGG16's protected sparse weights fit in ~2mm² of MLC-CTT
        // and ~1.3mm² of optimistic RRAM.
        let ctt = optimal_design(&zoo::vgg16(), CellTechnology::MlcCtt).expect("design");
        assert!(ctt.array.area_mm2 < 6.0, "CTT {}", ctt.array.area_mm2);
        let opt = optimal_design(&zoo::vgg16(), CellTechnology::OptMlcRram).expect("design");
        assert!(opt.array.area_mm2 < ctt.array.area_mm2);
    }

    #[test]
    fn slc_baseline_needs_an_order_more_area() {
        // §1: optimized MLC designs provide up to 29x area reduction
        // relative to SLC eNVM (best case, CiFar10-VGG12).
        let slc = optimal_design(&zoo::vgg12(), CellTechnology::SlcRram).expect("design");
        let opt = optimal_design(&zoo::vgg12(), CellTechnology::OptMlcRram).expect("design");
        let ratio = slc.array.area_mm2 / opt.array.area_mm2;
        assert!(
            (8.0..40.0).contains(&ratio),
            "area reduction {ratio} (paper up to 29x)"
        );
    }

    #[test]
    fn ctt_is_the_energy_champion() {
        // §5.2: of the MLC proposals, MLC-CTT achieves the lowest energy
        // per inference. On NVDLA-1024 the contrast comes through the
        // higher read bandwidth (shorter runtime); on the compute-bound
        // NVDLA-64 the proposals converge, so CTT must merely not lose.
        let model = zoo::resnet50();
        let ctt = optimal_design(&model, CellTechnology::MlcCtt).expect("design");
        let opt = optimal_design(&model, CellTechnology::OptMlcRram).expect("design");
        let rram = optimal_design(&model, CellTechnology::MlcRram).expect("design");
        assert!(ctt.system_1024.energy_per_inference_mj < opt.system_1024.energy_per_inference_mj);
        assert!(ctt.system_1024.energy_per_inference_mj < rram.system_1024.energy_per_inference_mj);
        assert!(
            ctt.system_64.energy_per_inference_mj < 1.05 * opt.system_64.energy_per_inference_mj
        );
    }

    #[test]
    fn envm_beats_dram_baseline_on_power_and_energy() {
        // Headline: up to 3.5x lower energy per inference, 3.2x lower
        // power vs the DRAM baseline.
        let model = zoo::resnet50();
        let cfg = NvdlaConfig::nvdla_64();
        let base = baseline_design(&model, &cfg);
        let ctt = optimal_design(&model, CellTechnology::MlcCtt).expect("design");
        let e_ratio = base.energy_per_inference_mj / ctt.system_64.energy_per_inference_mj;
        let p_ratio = base.avg_power_mw / ctt.system_64.avg_power_mw;
        assert!(
            (2.0..5.0).contains(&e_ratio),
            "energy ratio {e_ratio} (paper 3.5x)"
        );
        assert!(
            (2.0..5.0).contains(&p_ratio),
            "power ratio {p_ratio} (paper 3.2x)"
        );
    }

    #[test]
    fn write_times_span_ms_to_minutes() {
        // Table 5: RRAM rewrites in milliseconds, CTT in minutes.
        let model = zoo::vgg16();
        let ctt = optimal_design(&model, CellTechnology::MlcCtt).expect("design");
        let rram = optimal_design(&model, CellTechnology::MlcRram).expect("design");
        assert!(ctt.write_time_s > 60.0, "CTT write {}s", ctt.write_time_s);
        assert!(
            rram.write_time_s < 10.0,
            "RRAM write {}s",
            rram.write_time_s
        );
    }

    #[test]
    fn rram_trades_write_speed_for_energy() {
        // §1: RRAM writes orders of magnitude faster while giving up
        // roughly 20% energy efficiency vs CTT.
        let model = zoo::resnet50();
        let ctt = optimal_design(&model, CellTechnology::MlcCtt).expect("design");
        let rram = optimal_design(&model, CellTechnology::MlcRram).expect("design");
        assert!(ctt.write_time_s / rram.write_time_s > 100.0);
        let penalty =
            rram.system_1024.energy_per_inference_mj / ctt.system_1024.energy_per_inference_mj;
        assert!(
            (1.0..2.5).contains(&penalty),
            "RRAM energy penalty {penalty} (paper ~1.2x; ours is larger because\
             the RRAM macro's lower read bandwidth stretches the runtime)"
        );
    }
}
