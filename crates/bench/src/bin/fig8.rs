//! Regenerates paper Fig. 8: optimal area and dynamic read energy of the
//! memories characterized to hold each model's weights on-chip, for all
//! four eNVM proposals.

use maxnvm::{optimal_design, CellTechnology};
use maxnvm_dnn::zoo;

fn main() {
    println!("Fig. 8: read-EDP-optimal on-chip weight memories per model\n");
    for spec in [zoo::vgg12(), zoo::vgg16(), zoo::resnet50()] {
        println!("== {} ==", spec.name);
        println!(
            "{:<16} {:<18} {:>4} {:>9} {:>11} {:>10} {:>12} {:>9}",
            "Technology",
            "Encoding",
            "BPC",
            "Cap(MB)",
            "Area(mm2)",
            "Read(ns)",
            "Energy(pJ)",
            "BW(GB/s)"
        );
        for tech in CellTechnology::ALL {
            let d = optimal_design(&spec, tech).expect("design");
            println!(
                "{:<16} {:<18} {:>4} {:>9.1} {:>11.2} {:>10.2} {:>12.2} {:>9.1}",
                tech.name(),
                d.scheme_label,
                d.max_bits_per_cell,
                d.capacity_mb,
                d.array.area_mm2,
                d.array.read_latency_ns,
                d.array.read_energy_pj,
                d.array.read_bandwidth_gbps
            );
        }
        println!();
    }
    println!("Shape checks (paper): Opt MLC-RRAM smallest area, then MLC-CTT,");
    println!("MLC-RRAM, SLC-RRAM (CTT ~9.6x denser than SLC on average); MLC-CTT");
    println!("read energy >4x below Opt MLC-RRAM.");
}
