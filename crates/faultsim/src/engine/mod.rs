//! The evaluation engine: shared precomputed fault state plus a
//! persistent worker pool behind every campaign and design-space sweep.
//!
//! A Monte-Carlo evaluation repeats three kinds of work: deriving fault
//! maps from the cell models (identical for every trial of a
//! technology), sparse-encoding the layers (identical for every scheme
//! that only differs in protection), and the per-trial inject → decode
//! → evaluate loop (embarrassingly parallel). [`EvalContext`] hoists
//! the first out of the trial loop — one pre-scaled [`FaultMap`] per
//! bits-per-cell, shared by `Arc` — and schedules the third onto a
//! process-wide [`WorkerPool`]; [`EvalContext::run_dse`] additionally
//! shares raw encodes *and clean decodes* across candidate schemes
//! through an [`EncodeCache`].
//!
//! The trial loop itself is O(expected faults + test batch), not
//! O(cells × test set): each stored layer is wrapped in a
//! [`PreparedLayer`] (clean decode cached once, faults sampled sparsely
//! with geometric skips, dirty regions re-decoded incrementally), and
//! evaluators reuse per-worker [`EvalScratch`] state instead of cloning
//! networks per trial.
//!
//! Determinism is preserved at any worker count: trial `t` always draws
//! from `StdRng::seed_from_u64(seed.wrapping_add(t))` regardless of
//! which worker runs it, and results are assembled in trial order, so
//! the engine reproduces its own single-worker run bit for bit.
//!
//! The default pool sizes itself to `std::thread::available_parallelism`
//! and can be overridden with the `MAXNVM_THREADS` environment variable
//! (the old implementation hard-capped at eight threads).

mod error;
mod pool;

pub use error::EngineError;
pub use pool::WorkerPool;

use crate::campaign::CampaignResult;
use crate::dse::{candidate_schemes, DseConfig, DsePoint};
use crate::evaluate::{AccuracyEval, EvalScratch};
use maxnvm_dnn::network::LayerMatrix;
use maxnvm_encoding::cluster::ClusteredLayer;
use maxnvm_encoding::storage::{DecodeStats, EncodeCache, PreparedLayer, StoredLayer};
use maxnvm_encoding::StructureKind;
use maxnvm_envm::{CellModel, CellTechnology, FaultMap, MlcConfig, SenseAmp};
use parking_lot::Mutex;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

/// A checkout pool of reusable [`EvalScratch`] values: each in-flight
/// evaluation pops one (or starts fresh) and pushes it back, so at most
/// `workers + 1` scratch networks ever exist per run, independent of the
/// trial count.
struct ScratchPool(Mutex<Vec<EvalScratch>>);

impl ScratchPool {
    fn new() -> Self {
        Self(Mutex::new(Vec::new()))
    }

    fn eval(&self, eval: &(dyn AccuracyEval + Sync), mats: &[LayerMatrix]) -> f64 {
        let mut scratch = self.0.lock().pop().unwrap_or_default();
        let error = eval.eval_scratch(mats, &mut scratch);
        self.0.lock().push(scratch);
        error
    }
}

/// Worker-thread count override from the environment, if set and valid.
fn env_workers() -> Option<usize> {
    std::env::var("MAXNVM_THREADS")
        .ok()?
        .trim()
        .parse()
        .ok()
        .filter(|&n| n > 0)
}

/// The worker count the process-wide pool is built with:
/// `MAXNVM_THREADS` when set to a positive integer, otherwise
/// `std::thread::available_parallelism()`.
pub fn default_workers() -> usize {
    env_workers().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    })
}

/// The process-wide evaluation pool, created on first use.
pub fn global_pool() -> &'static Arc<WorkerPool> {
    static POOL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
    POOL.get_or_init(|| Arc::new(WorkerPool::new(default_workers())))
}

/// Shared evaluation state for one (technology, sense-amp, rate-scale)
/// configuration: the per-bits-per-cell fault maps (pre-scaled, behind
/// `Arc` so trials share them without copying), the cell models for
/// chip-instance campaigns, and the worker pool evaluations run on.
pub struct EvalContext {
    tech: CellTechnology,
    rate_scale: f64,
    fault_maps: Vec<Arc<FaultMap>>,
    cell_models: Vec<CellModel>,
    pool: Arc<WorkerPool>,
}

impl EvalContext {
    /// A context running on the process-wide pool.
    pub fn new(tech: CellTechnology, sa: &SenseAmp, rate_scale: f64) -> Result<Self, EngineError> {
        Self::with_pool(tech, sa, rate_scale, Arc::clone(global_pool()))
    }

    /// A context with its own pool of exactly `workers` threads —
    /// mostly for determinism tests pinning the worker count.
    pub fn with_workers(
        tech: CellTechnology,
        sa: &SenseAmp,
        rate_scale: f64,
        workers: usize,
    ) -> Result<Self, EngineError> {
        if workers == 0 {
            return Err(EngineError::NoWorkers);
        }
        Self::with_pool(tech, sa, rate_scale, Arc::new(WorkerPool::new(workers)))
    }

    fn with_pool(
        tech: CellTechnology,
        sa: &SenseAmp,
        rate_scale: f64,
        pool: Arc<WorkerPool>,
    ) -> Result<Self, EngineError> {
        if !rate_scale.is_finite() || rate_scale <= 0.0 {
            return Err(EngineError::InvalidRateScale(rate_scale));
        }
        let mut fault_maps = Vec::with_capacity(3);
        let mut cell_models = Vec::with_capacity(3);
        for b in 1..=3u8 {
            let cfg = MlcConfig::new(b).expect("1..=3 are valid bits");
            if b <= tech.max_bits_per_cell() {
                let cell = tech.cell_model(cfg).with_sense_amp(sa);
                fault_maps.push(Arc::new(cell.fault_map().scaled(rate_scale)));
                cell_models.push(cell);
            } else {
                // Storage is validated against the technology, so these
                // entries are never exercised; they keep indexing total.
                fault_maps.push(Arc::new(FaultMap::perfect(cfg.levels())));
                cell_models.push(tech.cell_model(MlcConfig::SLC).with_sense_amp(sa));
            }
        }
        Ok(Self {
            tech,
            rate_scale,
            fault_maps,
            cell_models,
            pool,
        })
    }

    /// The technology this context models.
    pub fn tech(&self) -> CellTechnology {
        self.tech
    }

    /// The fault-rate multiplier the fault maps were scaled with.
    pub fn rate_scale(&self) -> f64 {
        self.rate_scale
    }

    /// Worker threads in this context's pool.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// The per-bits-per-cell fault-map provider (already rate-scaled).
    pub fn fault_for(&self) -> impl Fn(MlcConfig) -> Arc<FaultMap> + '_ {
        move |cfg: MlcConfig| Arc::clone(&self.fault_maps[(cfg.bits() - 1) as usize])
    }

    /// Runs a full-injection campaign: `trials` seeded trials, each
    /// injecting every structure of every layer, in parallel on the
    /// pool. Trial `t` seeds `seed.wrapping_add(t)`; results are in
    /// trial order, identical at any worker count.
    pub fn run_campaign(
        &self,
        trials: usize,
        seed: u64,
        stored: &[StoredLayer],
        eval: &(dyn AccuracyEval + Sync),
    ) -> CampaignResult {
        self.run_trials(trials, seed, stored, eval, None)
    }

    /// Runs a campaign injecting faults only into structures of
    /// `target` kind — Fig. 5's isolation methodology.
    pub fn run_isolated(
        &self,
        trials: usize,
        seed: u64,
        target: StructureKind,
        stored: &[StoredLayer],
        eval: &(dyn AccuracyEval + Sync),
    ) -> CampaignResult {
        self.run_trials(trials, seed, stored, eval, Some(target))
    }

    fn run_trials(
        &self,
        trials: usize,
        seed: u64,
        stored: &[StoredLayer],
        eval: &(dyn AccuracyEval + Sync),
        target: Option<StructureKind>,
    ) -> CampaignResult {
        let fault_for = self.fault_for();
        // Clean decodes and level partitions are trial-invariant: prepare
        // them once so every trial costs O(expected faults), not O(cells).
        let prepared: Vec<PreparedLayer> = self
            .pool
            .scope_map(stored.len(), |i| PreparedLayer::prepare(&stored[i]));
        let expected: f64 = prepared
            .iter()
            .map(|p| p.expected_faults(target, &fault_for))
            .sum();
        let scratch = ScratchPool::new();
        let results = self.pool.scope_map(trials, |trial| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(trial as u64));
            let mut stats = DecodeStats::default();
            let mats: Vec<_> = prepared
                .iter()
                .map(|layer| {
                    let (m, s) = match target {
                        Some(kind) => layer.decode_with_isolated_faults(kind, &fault_for, &mut rng),
                        None => layer.decode_with_faults(&fault_for, &mut rng),
                    };
                    stats.absorb(s);
                    m
                })
                .collect();
            (scratch.eval(eval, &mats), stats)
        });
        CampaignResult::from_trials(results).with_expected_faults(expected)
    }

    /// Runs a campaign with the paper's exact chip semantics: each
    /// trial programs a chip instance (every cell's analog outcome
    /// drawn once, §4.1) and decodes it deterministically. Errors with
    /// [`EngineError::ChipRateScale`] unless the context uses physical
    /// rates (`rate_scale == 1.0`), since analog programming outcomes
    /// cannot be rate-scaled.
    pub fn run_chips(
        &self,
        trials: usize,
        seed: u64,
        stored: &[StoredLayer],
        eval: &(dyn AccuracyEval + Sync),
    ) -> Result<CampaignResult, EngineError> {
        if (self.rate_scale - 1.0).abs() > 1e-12 {
            return Err(EngineError::ChipRateScale(self.rate_scale));
        }
        let cell_for = |cfg: MlcConfig| self.cell_models[(cfg.bits() - 1) as usize].clone();
        let fault_for = self.fault_for();
        let expected: f64 = stored
            .iter()
            .map(|l| l.expected_faults_in(None, &fault_for))
            .sum();
        let scratch = ScratchPool::new();
        let results = self.pool.scope_map(trials, |trial| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(trial as u64));
            let mut stats = DecodeStats::default();
            let mats: Vec<_> = stored
                .iter()
                .map(|layer| {
                    let chip = layer.program_chip(&cell_for, &mut rng);
                    let (m, s) = chip.decode();
                    stats.absorb(s);
                    m
                })
                .collect();
            (scratch.eval(eval, &mats), stats)
        });
        Ok(CampaignResult::from_trials(results).with_expected_faults(expected))
    }

    /// Concrete design-space exploration on the engine: every candidate
    /// scheme of the context's technology is stored (raw encodes and
    /// clean decodes shared through an [`EncodeCache`]) and evaluated
    /// with a Monte-Carlo campaign over [`PreparedLayer`]s. The work is
    /// flattened to (scheme, trial) granularity so the pool
    /// load-balances across the whole sweep rather than one scheme at a
    /// time.
    ///
    /// Seeding is per-(scheme, trial) — trial `t` of every scheme uses
    /// `seed.wrapping_add(t)` — so the returned points are identical at
    /// any worker count. Against
    /// [`crate::dse::explore_concrete_reference`] the schemes and cell
    /// counts match exactly, while errors agree statistically: sparse
    /// fault sampling draws a different RNG stream with the same
    /// per-cell marginals.
    ///
    /// Errors with [`EngineError::RateScaleMismatch`] if
    /// `cfg.campaign.rate_scale` differs from this context's.
    pub fn run_dse(
        &self,
        layers: &[ClusteredLayer],
        eval: &(dyn AccuracyEval + Sync),
        cfg: &DseConfig,
    ) -> Result<Vec<DsePoint>, EngineError> {
        if (cfg.campaign.rate_scale - self.rate_scale).abs() > 1e-12 {
            return Err(EngineError::RateScaleMismatch {
                campaign: cfg.campaign.rate_scale,
                context: self.rate_scale,
            });
        }
        let schemes = candidate_schemes(self.tech);
        let cache = EncodeCache::new();
        let stored: Vec<(Vec<StoredLayer>, u64)> = self.pool.scope_map(schemes.len(), |s| {
            let layers: Vec<StoredLayer> = layers
                .iter()
                .enumerate()
                .map(|(i, l)| cache.store_layer(i, l, &schemes[s]))
                .collect();
            let cells = layers.iter().map(StoredLayer::total_cells).sum();
            (layers, cells)
        });
        let trials = cfg.campaign.trials;
        let seed = cfg.campaign.seed;
        let baseline = eval.baseline_error();
        let fault_for = self.fault_for();
        // Clean decodes depend only on the raw encoded streams, so the
        // cache shares one CleanLayerDecode across every scheme that
        // differs only in bits-per-cell or protection.
        let prepared: Vec<Vec<PreparedLayer>> = self.pool.scope_map(schemes.len(), |s| {
            stored[s]
                .0
                .iter()
                .enumerate()
                .map(|(i, l)| PreparedLayer::new(l, cache.clean_decode(i, l)))
                .collect()
        });
        let scratch = ScratchPool::new();
        let flat: Vec<(f64, DecodeStats)> = self.pool.scope_map(schemes.len() * trials, |job| {
            let (s, trial) = (job / trials, job % trials);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(trial as u64));
            let mut stats = DecodeStats::default();
            let mats: Vec<_> = prepared[s]
                .iter()
                .map(|layer| {
                    let (m, st) = layer.decode_with_faults(&fault_for, &mut rng);
                    stats.absorb(st);
                    m
                })
                .collect();
            (scratch.eval(eval, &mats), stats)
        });
        Ok(schemes
            .into_iter()
            .enumerate()
            .map(|(s, scheme)| {
                let expected: f64 = prepared[s]
                    .iter()
                    .map(|p| p.expected_faults(None, &fault_for))
                    .sum();
                let result =
                    CampaignResult::from_trials(flat[s * trials..(s + 1) * trials].to_vec())
                        .with_expected_faults(expected);
                DsePoint {
                    scheme,
                    cells: stored[s].1,
                    mean_error: result.mean_error,
                    passes: result.within_itn(baseline, cfg.itn_bound),
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_rate_scales() {
        let sa = SenseAmp::paper_default();
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = EvalContext::new(CellTechnology::MlcCtt, &sa, bad)
                .err()
                .expect("must reject");
            assert!(matches!(err, EngineError::InvalidRateScale(_)));
        }
    }

    #[test]
    fn rejects_zero_workers() {
        let sa = SenseAmp::paper_default();
        let err = EvalContext::with_workers(CellTechnology::MlcCtt, &sa, 1.0, 0)
            .err()
            .expect("must reject");
        assert_eq!(err, EngineError::NoWorkers);
    }

    #[test]
    fn fault_maps_are_shared_not_cloned() {
        let sa = SenseAmp::paper_default();
        let ctx = EvalContext::with_workers(CellTechnology::MlcCtt, &sa, 1.0, 1).unwrap();
        let fault_for = ctx.fault_for();
        let a = fault_for(MlcConfig::MLC3);
        let b = fault_for(MlcConfig::MLC3);
        assert!(Arc::ptr_eq(&a, &b), "providers must hand out the same map");
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }
}
