//! Published eNVM chips used to ground the models (paper Table 1).
//!
//! These are the fabricated reference points the paper extrapolates from;
//! `maxnvm-nvsim` calibrates its array model against their macro area and
//! read latency (Fig. 1 regenerates the comparison at a fixed 4MB).

use serde::{Deserialize, Serialize};

/// The access-device style of a published memory macro.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessDevice {
    /// Conventional CMOS access transistor (1T1R-style array).
    Cmos,
    /// Diode-selected crossbar.
    Diode,
    /// PRAM diode stack (20nm PCM).
    PramDiode,
}

/// The base storage technology of a published chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EnvmKind {
    /// Resistive RAM.
    Rram,
    /// Phase-change memory.
    Pcm,
    /// Multi-level-cell phase-change memory.
    MlcPcm,
    /// Spin-transfer-torque MRAM.
    Stt,
}

/// One row of the paper's Table 1: a fabricated eNVM macro with published
/// characteristics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReferenceChip {
    /// Citation tag as printed in the paper (e.g. `"[8]"`).
    pub reference: &'static str,
    /// Storage technology.
    pub kind: EnvmKind,
    /// Process node in nanometres.
    pub node_nm: f64,
    /// Access device style.
    pub access: AccessDevice,
    /// Cell footprint in F², if published.
    pub cell_area_f2: Option<f64>,
    /// Macro capacity in bits.
    pub capacity_bits: u64,
    /// Published macro area in mm², if available.
    pub macro_area_mm2: Option<f64>,
    /// Published read latency in nanoseconds, if available.
    pub read_latency_ns: Option<f64>,
    /// Published write latency range in nanoseconds `(min, max)`.
    pub write_latency_ns: Option<(f64, f64)>,
}

const KB: u64 = 1024;
const MB: u64 = 1024 * KB;
const GB: u64 = 1024 * MB;

/// All chips listed in Table 1, in row order.
pub fn table1_chips() -> Vec<ReferenceChip> {
    vec![
        ReferenceChip {
            reference: "[8]",
            kind: EnvmKind::Rram,
            node_nm: 28.0,
            access: AccessDevice::Cmos,
            cell_area_f2: Some(39.0),
            capacity_bits: MB,
            macro_area_mm2: Some(0.56),
            read_latency_ns: Some(6.8),
            write_latency_ns: Some((500.0, 100_000.0)),
        },
        ReferenceChip {
            reference: "[42]",
            kind: EnvmKind::Rram,
            node_nm: 40.0,
            access: AccessDevice::Cmos,
            cell_area_f2: Some(53.0),
            capacity_bits: 1_400 * KB,
            macro_area_mm2: Some(0.28),
            read_latency_ns: Some(10.0),
            write_latency_ns: None,
        },
        ReferenceChip {
            reference: "[45]",
            kind: EnvmKind::Rram,
            node_nm: 24.0,
            access: AccessDevice::Diode,
            cell_area_f2: Some(4.0),
            capacity_bits: 32 * GB,
            macro_area_mm2: Some(130.7),
            read_latency_ns: Some(40_000.0),
            write_latency_ns: Some((230_000.0, 230_000.0)),
        },
        ReferenceChip {
            reference: "[13]",
            kind: EnvmKind::MlcPcm,
            node_nm: 90.0,
            access: AccessDevice::Cmos,
            cell_area_f2: Some(25.0),
            capacity_bits: 256 * MB,
            macro_area_mm2: Some(120.0),
            read_latency_ns: Some(320.0),
            write_latency_ns: None,
        },
        ReferenceChip {
            reference: "[67]",
            kind: EnvmKind::Pcm,
            node_nm: 40.0,
            access: AccessDevice::Cmos,
            cell_area_f2: None,
            capacity_bits: MB,
            macro_area_mm2: None,
            read_latency_ns: None,
            write_latency_ns: Some((120.0, 120.0)),
        },
        ReferenceChip {
            reference: "[12]",
            kind: EnvmKind::Pcm,
            node_nm: 20.0,
            access: AccessDevice::PramDiode,
            cell_area_f2: Some(4.0),
            capacity_bits: 8 * GB,
            macro_area_mm2: Some(59.4),
            read_latency_ns: Some(120.0),
            write_latency_ns: Some((150.0, 100_000.0)),
        },
        ReferenceChip {
            reference: "[19]",
            kind: EnvmKind::Stt,
            node_nm: 28.0,
            access: AccessDevice::Cmos,
            cell_area_f2: Some(75.0),
            capacity_bits: MB,
            macro_area_mm2: Some(0.214),
            read_latency_ns: Some(2.8),
            write_latency_ns: Some((20.0, 20.0)),
        },
    ]
}

impl ReferenceChip {
    /// Bits of storage per mm² of macro area, if area is published.
    pub fn density_bits_per_mm2(&self) -> Option<f64> {
        self.macro_area_mm2.map(|a| self.capacity_bits as f64 / a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_seven_rows() {
        assert_eq!(table1_chips().len(), 7);
    }

    #[test]
    fn crossbar_chips_are_densest_but_slowest() {
        // §2.1: crossbar (diode) arrays offer 4F² cells but much higher
        // access times than CMOS-access designs.
        let chips = table1_chips();
        let crossbar = chips
            .iter()
            .find(|c| c.access == AccessDevice::Diode)
            .unwrap();
        let cmos_rram = chips.iter().find(|c| c.reference == "[8]").unwrap();
        assert!(crossbar.cell_area_f2.unwrap() < cmos_rram.cell_area_f2.unwrap());
        assert!(crossbar.read_latency_ns.unwrap() > 100.0 * cmos_rram.read_latency_ns.unwrap());
    }

    #[test]
    fn stt_has_fastest_read() {
        let chips = table1_chips();
        let stt = chips.iter().find(|c| c.kind == EnvmKind::Stt).unwrap();
        let fastest = chips
            .iter()
            .filter_map(|c| c.read_latency_ns)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(stt.read_latency_ns.unwrap(), fastest);
    }

    #[test]
    fn density_computation() {
        let chips = table1_chips();
        let gigachip = chips.iter().find(|c| c.reference == "[45]").unwrap();
        let d = gigachip.density_bits_per_mm2().unwrap();
        // 32Gb / 130.7mm² ≈ 0.26 Gb/mm²
        assert!(d > 2.0e8 && d < 3.0e8, "density {d}");
        let no_area = chips.iter().find(|c| c.reference == "[67]").unwrap();
        assert!(no_area.density_bits_per_mm2().is_none());
    }
}
