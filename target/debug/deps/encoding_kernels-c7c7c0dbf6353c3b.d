/root/repo/target/debug/deps/encoding_kernels-c7c7c0dbf6353c3b.d: crates/bench/benches/encoding_kernels.rs

/root/repo/target/debug/deps/encoding_kernels-c7c7c0dbf6353c3b: crates/bench/benches/encoding_kernels.rs

crates/bench/benches/encoding_kernels.rs:
