//! End-to-end pipeline integration tests: every paper model through the
//! full co-design flow on every technology, asserting the paper's
//! headline orderings and factors.

use maxnvm::{baseline_design, optimal_design, CellTechnology, NvdlaConfig};
use maxnvm_dnn::zoo::ModelSpec;

#[test]
fn every_model_finds_an_on_chip_design_on_every_technology() {
    for spec in ModelSpec::paper_models() {
        for tech in CellTechnology::ALL {
            let d = maxnvm::optimal_design(&spec, tech).expect("design");
            assert!(d.cells > 0, "{} on {}", spec.name, tech.name());
            assert!(
                d.mean_error <= spec.paper.classification_error + spec.paper.itn_bound + 1e-9,
                "{} on {}: error {} breaches ITN",
                spec.name,
                tech.name(),
                d.mean_error
            );
            assert!(
                d.array.area_mm2 < 40.0,
                "{} on {}: absurd area {}",
                spec.name,
                tech.name(),
                d.array.area_mm2
            );
        }
    }
}

#[test]
fn area_ordering_holds_for_every_model() {
    // Fig. 8 / Table 4: Opt MLC-RRAM < MLC-CTT < MLC-RRAM < SLC-RRAM.
    for spec in ModelSpec::paper_models() {
        let areas: Vec<f64> = [
            CellTechnology::OptMlcRram,
            CellTechnology::MlcCtt,
            CellTechnology::MlcRram,
            CellTechnology::SlcRram,
        ]
        .iter()
        .map(|&t| optimal_design(&spec, t).expect("design").array.area_mm2)
        .collect();
        for w in areas.windows(2) {
            assert!(
                w[0] < w[1],
                "{}: area ordering violated: {areas:?}",
                spec.name
            );
        }
    }
}

#[test]
fn mlc_beats_slc_by_an_order_of_magnitude() {
    // §1: up to 29x area reduction relative to SLC eNVM.
    let mut best_ratio = 0.0f64;
    for spec in ModelSpec::paper_models() {
        let slc = optimal_design(&spec, CellTechnology::SlcRram)
            .expect("design")
            .array
            .area_mm2;
        let opt = optimal_design(&spec, CellTechnology::OptMlcRram)
            .expect("design")
            .array
            .area_mm2;
        best_ratio = best_ratio.max(slc / opt);
    }
    assert!(
        (10.0..60.0).contains(&best_ratio),
        "best MLC/SLC area reduction {best_ratio} (paper: up to 29x)"
    );
}

#[test]
fn headline_power_and_energy_reductions() {
    // Abstract: up to 3.2x reduced power and up to 3.5x reduced energy per
    // ResNet50 inference vs the NVDLA DRAM baseline.
    let spec = maxnvm_dnn::zoo::resnet50();
    let base = baseline_design(&spec, &NvdlaConfig::nvdla_64());
    let ctt = optimal_design(&spec, CellTechnology::MlcCtt).expect("design");
    let p = base.avg_power_mw / ctt.system_64.avg_power_mw;
    let e = base.energy_per_inference_mj / ctt.system_64.energy_per_inference_mj;
    assert!((2.5..4.2).contains(&p), "power reduction {p} (paper 3.2x)");
    assert!((2.5..4.5).contains(&e), "energy reduction {e} (paper 3.5x)");
}

#[test]
fn nvdla_1024_power_reduction_is_smaller() {
    // §5.2: the bigger datapath dilutes the DRAM savings — total power
    // reduction drops to ~1.6x on NVDLA-1024.
    let spec = maxnvm_dnn::zoo::resnet50();
    let base = baseline_design(&spec, &NvdlaConfig::nvdla_1024());
    let ctt = optimal_design(&spec, CellTechnology::MlcCtt).expect("design");
    let p1024 = base.avg_power_mw / ctt.system_1024.avg_power_mw;
    let base64 = baseline_design(&spec, &NvdlaConfig::nvdla_64());
    let p64 = base64.avg_power_mw / ctt.system_64.avg_power_mw;
    assert!(
        p1024 < p64,
        "NVDLA-1024 reduction {p1024} should be below NVDLA-64's {p64}"
    );
    assert!((1.1..2.5).contains(&p1024), "{p1024} (paper ~1.6x)");
}

#[test]
fn frame_rates_exceed_sixty_on_the_big_config() {
    // §5.2: best performance per model consistently exceeds 60 FPS with
    // NVDLA-1024.
    for spec in ModelSpec::paper_models() {
        let best = CellTechnology::ALL
            .iter()
            .map(|&t| optimal_design(&spec, t).expect("design").system_1024.fps)
            .fold(0.0f64, f64::max);
        assert!(best > 60.0, "{}: best eNVM FPS {best}", spec.name);
    }
}

#[test]
fn capacities_track_table4() {
    // Table 4 capacity column: VGG12 ~4MB, VGG16 ~32MB, ResNet50 ~12MB
    // (ours differ where our DSE found denser encodings; stay within 2.5x).
    for (spec, paper_mb) in [
        (maxnvm_dnn::zoo::vgg12(), 4.0),
        (maxnvm_dnn::zoo::vgg16(), 32.0),
        (maxnvm_dnn::zoo::resnet50(), 12.0),
    ] {
        let d = optimal_design(&spec, CellTechnology::MlcCtt).expect("design");
        let ratio = d.capacity_mb / paper_mb;
        assert!(
            (0.4..2.5).contains(&ratio),
            "{}: capacity {}MB vs paper {paper_mb}MB",
            spec.name,
            d.capacity_mb
        );
    }
}

#[test]
fn writes_are_the_envm_achilles_heel() {
    // Table 5 orders of magnitude: CTT minutes (seconds for the tiny
    // LeNet5), RRAM sub-second — always >1000x apart.
    for spec in ModelSpec::paper_models() {
        let ctt = optimal_design(&spec, CellTechnology::MlcCtt)
            .expect("design")
            .write_time_s;
        let slc = optimal_design(&spec, CellTechnology::SlcRram)
            .expect("design")
            .write_time_s;
        assert!(ctt > 1.0, "{}: CTT write {}s", spec.name, ctt);
        assert!(slc < 1.0, "{}: SLC write {}s", spec.name, slc);
        assert!(ctt / slc > 1000.0);
        if spec.total_weights() > 5_000_000 {
            assert!(
                ctt > 60.0,
                "{}: CTT write should take minutes: {}s",
                spec.name,
                ctt
            );
        }
    }
}
