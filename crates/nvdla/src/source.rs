//! Weight sources: off-chip DRAM (baseline), on-chip eNVM (§5), or the §6
//! hybrid partition.

use crate::config::{NvdlaConfig, DRAM_ENERGY_PJ_PER_BYTE};
use maxnvm_nvsim::ArrayDesign;
use serde::{Deserialize, Serialize};

/// Where a layer's weights are fetched from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WeightSource {
    /// Baseline: all weights stream from off-chip LPDDR4 (Fig. 7a).
    Dram,
    /// All weights live in a characterized on-chip eNVM macro (Fig. 7b).
    Envm(ArrayDesign),
    /// Fixed on-chip budget split between SRAM and eNVM; weights not
    /// assigned to eNVM stream from DRAM (Fig. 7c). `fractions[i]` is the
    /// share of layer `i`'s weights resident on-chip — the paper's greedy
    /// placement fills the most DRAM-bottlenecked layers first and may
    /// split a layer across both stores.
    Hybrid {
        /// The on-chip eNVM macro.
        envm: ArrayDesign,
        /// Per-layer on-chip weight fraction in `[0, 1]`.
        fractions: Vec<f64>,
    },
}

impl WeightSource {
    /// Fraction of layer `idx`'s weights resident on-chip.
    pub fn on_chip_fraction(&self, idx: usize) -> f64 {
        match self {
            WeightSource::Dram => 0.0,
            WeightSource::Envm(_) => 1.0,
            WeightSource::Hybrid { fractions, .. } => fractions.get(idx).copied().unwrap_or(0.0),
        }
    }

    /// Cycles to stream `bytes` of layer `idx`'s weights. The eNVM and
    /// DRAM interfaces are independent, so a split layer fetches from both
    /// in parallel and finishes with the slower stream.
    pub fn weight_cycles(&self, idx: usize, bytes: u64, cfg: &NvdlaConfig) -> u64 {
        let envm_bw = match self {
            WeightSource::Dram => 0.0,
            WeightSource::Envm(d) | WeightSource::Hybrid { envm: d, .. } => d.read_bandwidth_gbps,
        };
        let f = self.on_chip_fraction(idx);
        let on_bytes = (bytes as f64 * f).round();
        let off_bytes = bytes as f64 - on_bytes;
        let on_cycles = if on_bytes > 0.0 {
            on_bytes / cfg.bytes_per_cycle(envm_bw)
        } else {
            0.0
        };
        let off_cycles = if off_bytes > 0.0 {
            off_bytes / cfg.bytes_per_cycle(cfg.dram_bw_gbps)
        } else {
            0.0
        };
        on_cycles.max(off_cycles).ceil() as u64
    }

    /// Energy (pJ) to fetch `bytes` of layer `idx`'s weights.
    pub fn fetch_energy_pj(&self, idx: usize, bytes: u64) -> f64 {
        let f = self.on_chip_fraction(idx);
        let on_bytes = (bytes as f64 * f).round() as u64;
        let off_bytes = bytes - on_bytes;
        let envm_pj = match self {
            WeightSource::Dram => 0.0,
            WeightSource::Envm(d) | WeightSource::Hybrid { envm: d, .. } => {
                d.read_energy_for_bytes(on_bytes)
            }
        };
        envm_pj + off_bytes as f64 * DRAM_ENERGY_PJ_PER_BYTE
    }

    /// Whether the system still needs the DRAM interface powered for
    /// weight traffic.
    pub fn needs_dram(&self) -> bool {
        match self {
            WeightSource::Dram => true,
            WeightSource::Envm(_) => false,
            WeightSource::Hybrid { fractions, .. } => fractions.iter().any(|&f| f < 1.0),
        }
    }

    /// Background power of the weight store itself (mW): eNVM leakage, or
    /// 0 for DRAM (accounted separately as interface power).
    pub fn store_leakage_mw(&self) -> f64 {
        match self {
            WeightSource::Dram => 0.0,
            WeightSource::Envm(d) | WeightSource::Hybrid { envm: d, .. } => d.leakage_mw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxnvm_envm::CellTechnology;
    use maxnvm_nvsim::{characterize, ArrayRequest, OptTarget};

    fn ctt_array() -> ArrayDesign {
        characterize(
            &ArrayRequest::new(CellTechnology::MlcCtt, 50_000_000, 2),
            OptTarget::ReadEdp,
        )
        .expect("feasible organization")
    }

    #[test]
    fn dram_uses_table3_bandwidth() {
        let cfg = NvdlaConfig::nvdla_64();
        // 25 GB/s at 1 GHz = 25 B/cycle: 2500 bytes take 100 cycles.
        assert_eq!(WeightSource::Dram.weight_cycles(0, 2500, &cfg), 100);
        assert!(WeightSource::Dram.needs_dram());
    }

    #[test]
    fn envm_fetch_energy_is_orders_below_dram() {
        // §5.2: weight-fetch energy reduced by over 100x vs DRAM.
        let envm = WeightSource::Envm(ctt_array());
        let dram = WeightSource::Dram;
        let bytes = 1_000_000;
        assert!(
            dram.fetch_energy_pj(0, bytes) > 100.0 * envm.fetch_energy_pj(0, bytes),
            "dram {} vs envm {}",
            dram.fetch_energy_pj(0, bytes),
            envm.fetch_energy_pj(0, bytes)
        );
        assert!(!envm.needs_dram());
    }

    #[test]
    fn hybrid_routes_by_layer() {
        let h = WeightSource::Hybrid {
            envm: ctt_array(),
            fractions: vec![1.0, 0.0],
        };
        assert_eq!(h.on_chip_fraction(0), 1.0);
        assert_eq!(h.on_chip_fraction(1), 0.0);
        assert!(h.needs_dram());
        let all_on_chip = WeightSource::Hybrid {
            envm: ctt_array(),
            fractions: vec![1.0, 1.0],
        };
        assert!(!all_on_chip.needs_dram());
    }

    #[test]
    fn split_layer_fetches_in_parallel() {
        let cfg = NvdlaConfig::nvdla_64();
        let envm = ctt_array();
        let whole = WeightSource::Dram.weight_cycles(0, 1_000_000, &cfg);
        let half = WeightSource::Hybrid {
            envm,
            fractions: vec![0.5],
        }
        .weight_cycles(0, 1_000_000, &cfg);
        // Half the DRAM traffic -> at most ~half the DRAM-side time (the
        // eNVM side streams concurrently).
        assert!(half <= whole / 2 + envm_side_slack(&envm, 500_000, &cfg));
        fn envm_side_slack(d: &maxnvm_nvsim::ArrayDesign, bytes: u64, cfg: &NvdlaConfig) -> u64 {
            (bytes as f64 / cfg.bytes_per_cycle(d.read_bandwidth_gbps)).ceil() as u64
        }
    }
}
