/root/repo/target/debug/deps/regression-3b14fbb2d6f95bf0.d: tests/regression.rs

/root/repo/target/debug/deps/regression-3b14fbb2d6f95bf0: tests/regression.rs

tests/regression.rs:
