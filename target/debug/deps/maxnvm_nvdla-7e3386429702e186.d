/root/repo/target/debug/deps/maxnvm_nvdla-7e3386429702e186.d: crates/nvdla/src/lib.rs crates/nvdla/src/config.rs crates/nvdla/src/hybrid.rs crates/nvdla/src/nonvolatility.rs crates/nvdla/src/perf.rs crates/nvdla/src/source.rs

/root/repo/target/debug/deps/maxnvm_nvdla-7e3386429702e186: crates/nvdla/src/lib.rs crates/nvdla/src/config.rs crates/nvdla/src/hybrid.rs crates/nvdla/src/nonvolatility.rs crates/nvdla/src/perf.rs crates/nvdla/src/source.rs

crates/nvdla/src/lib.rs:
crates/nvdla/src/config.rs:
crates/nvdla/src/hybrid.rs:
crates/nvdla/src/nonvolatility.rs:
crates/nvdla/src/perf.rs:
crates/nvdla/src/source.rs:
