//! `maxnvm-shard`: deterministic sharded design-space exploration
//! across worker processes (paper §4.4 at fleet scale).
//!
//! The parent splits the DSE sweep into N disjoint shards, spawns one
//! worker process per shard, supervises them (a killed worker is
//! respawned and resumes from its own checkpoint), and finally merges
//! the shard checkpoints into a result that is byte-identical to the
//! unsharded single-process run — same trial outcomes, same
//! early-stopping decisions, same optimal configuration. Workers share
//! encode work through a content-addressed on-disk cache, so the
//! dominant sparse-encode cost is paid once per artifact across the
//! whole fleet.
//!
//! ```sh
//! cargo run --release --example sharded_sweep -- --shards 4
//! cargo run --release --example sharded_sweep -- --shards 2 --verify
//! cargo run --release --example sharded_sweep -- --shards 2 --faulty-cache 42
//! ```
//!
//! `--verify` additionally runs the sweep unsharded in this process and
//! asserts the merged result is identical (encode-cache counters
//! zeroed: they describe I/O activity, not trial semantics), printing
//! the measured speedup and `dse_same_optimal`. `--faulty-cache SEED`
//! routes the shared cache through the fault-injecting checkpoint store
//! — the sweep must still complete with identical results, because the
//! cache is strictly best-effort.

use maxnvm_dnn::zoo;
use maxnvm_encoding::cluster::ClusteredLayer;
use maxnvm_encoding::storage::{EncodeCache, EncodeDiskCache};
use maxnvm_envm::{CellTechnology, SenseAmp};
use maxnvm_faultsim::dse::minimal_cells;
use maxnvm_faultsim::{
    AccuracyEval, Campaign, CheckpointArtifactStore, CheckpointConfig, DseConfig, DsePoint,
    EarlyStop, EvalContext, FaultPlan, FaultyStore, ProxyEval, RunControl, ShardSpec,
};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TECH: CellTechnology = CellTechnology::MlcCtt;
const RATE_SCALE: f64 = 120.0;
/// Respawn budget per shard before the supervisor gives up.
const MAX_RESPAWNS: usize = 3;

struct Args {
    shards: usize,
    trials: usize,
    verify: bool,
    faulty_cache: Option<u64>,
    /// Set when this process is a shard worker: (index, count, dir).
    child: Option<(usize, usize, PathBuf)>,
}

fn parse_args() -> Args {
    let mut args = Args {
        shards: 2,
        trials: 48,
        verify: false,
        faulty_cache: None,
        child: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |what: &str| -> String {
            it.next()
                .unwrap_or_else(|| panic!("{what} requires a value"))
        };
        match arg.as_str() {
            "--shards" => args.shards = value("--shards").parse().expect("--shards: integer"),
            "--trials" => args.trials = value("--trials").parse().expect("--trials: integer"),
            "--verify" => args.verify = true,
            "--faulty-cache" => {
                args.faulty_cache = Some(value("--faulty-cache").parse().expect("seed: integer"));
            }
            "--child" => {
                let index = value("--child index").parse().expect("index: integer");
                let count = value("--child count").parse().expect("count: integer");
                let dir = PathBuf::from(value("--child dir"));
                args.child = Some((index, count, dir));
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    args
}

/// The deterministic stand-in sweep every process reconstructs
/// identically: a VGG12-scale sampled layer, proxy evaluation,
/// exaggerated rates so faults land within the trial budget.
fn fixture() -> (Vec<ClusteredLayer>, ProxyEval) {
    let spec = zoo::vgg12();
    let m = spec.layers[4].sample_matrix(spec.paper.sparsity, 17, 48, 160);
    let layer = ClusteredLayer::from_matrix(&m, 4, 5);
    let eval = ProxyEval::new(vec![layer.reconstruct()], 0.1, 0.9);
    (vec![layer], eval)
}

fn dse_config(trials: usize) -> DseConfig {
    DseConfig {
        campaign: Campaign {
            trials,
            seed: 13,
            rate_scale: RATE_SCALE,
        },
        itn_bound: 0.02,
    }
}

fn shard_ckpt(dir: &Path, index: usize, count: usize) -> PathBuf {
    dir.join(format!("shard-{index}-of-{count}.ckpt"))
}

/// The shared cross-process encode cache, optionally routed through the
/// fault-injecting checkpoint store.
fn shared_cache(dir: &Path, faulty_seed: Option<u64>) -> Arc<EncodeCache> {
    let disk = EncodeDiskCache::new(dir.join("cache"));
    let disk = match faulty_seed {
        Some(seed) => disk.with_store(Arc::new(CheckpointArtifactStore(Arc::new(
            FaultyStore::new(seed, FaultPlan::flaky()),
        )))),
        None => disk,
    };
    Arc::new(EncodeCache::new().with_disk(disk))
}

/// The control every process uses, differing only in shard layout and
/// checkpoint path. Early stopping is configured identically everywhere
/// — shard workers fold it into their fingerprints but never stop early
/// (a shard sees only a subset of each scheme's trials); the merge
/// replays the decisions the single-process run would have made.
fn control_for(
    shard: ShardSpec,
    ckpt: Option<PathBuf>,
    cache: Option<Arc<EncodeCache>>,
    eval: &ProxyEval,
    cfg: &DseConfig,
) -> RunControl {
    RunControl {
        shard,
        checkpoint: ckpt.map(|p| CheckpointConfig::new(p).every(64).keep_on_success()),
        encode_cache: cache,
        early_stop: Some(EarlyStop::new(eval.baseline_error(), cfg.itn_bound)),
        ..RunControl::default()
    }
}

/// Shard-worker entry point: run this process's slice of the sweep,
/// checkpointing so a kill at any moment is resumable.
fn run_child(index: usize, count: usize, dir: &Path, trials: usize, faulty_seed: Option<u64>) {
    let (layers, eval) = fixture();
    let cfg = dse_config(trials);
    let ctx = EvalContext::new(TECH, &SenseAmp::paper_default(), RATE_SCALE).expect("context");
    let control = control_for(
        ShardSpec::of(index, count),
        Some(shard_ckpt(dir, index, count)),
        Some(shared_cache(dir, faulty_seed)),
        &eval,
        &cfg,
    );
    let points = ctx
        .run_dse_controlled(&layers, &eval, &cfg, &control)
        .expect("shard sweep");
    let stats = points.first().map(|p| p.encode_cache).unwrap_or_default();
    eprintln!(
        "[shard {index}/{count}] done: {} schemes, cache {} hits / {} misses",
        points.len(),
        stats.disk_hits,
        stats.disk_misses
    );
}

fn spawn_shard(dir: &Path, index: usize, count: usize, args: &Args) -> std::process::Child {
    let exe = std::env::current_exe().expect("runner path");
    let mut cmd = Command::new(exe);
    cmd.args(["--child", &index.to_string(), &count.to_string()])
        .arg(dir)
        .args(["--trials", &args.trials.to_string()]);
    if let Some(seed) = args.faulty_cache {
        // Salt the seed per shard so workers draw distinct fault
        // schedules (same-seed workers would fail in lockstep).
        cmd.args(["--faulty-cache", &(seed ^ index as u64).to_string()]);
    }
    cmd.stdout(Stdio::inherit())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn shard worker")
}

/// Supervises the worker fleet: respawn any shard that dies (it resumes
/// from its checkpoint), give up only after `MAX_RESPAWNS` per shard.
fn supervise(dir: &Path, args: &Args) {
    let mut fleet: Vec<(usize, std::process::Child, usize)> = (0..args.shards)
        .map(|i| (i, spawn_shard(dir, i, args.shards, args), 0))
        .collect();
    while !fleet.is_empty() {
        std::thread::sleep(Duration::from_millis(20));
        let mut still_running = Vec::new();
        for (index, mut child, respawns) in fleet {
            match child.try_wait().expect("try_wait") {
                None => still_running.push((index, child, respawns)),
                Some(status) if status.success() => {}
                Some(status) => {
                    assert!(
                        respawns < MAX_RESPAWNS,
                        "shard {index} failed {MAX_RESPAWNS} times (last: {status})"
                    );
                    eprintln!("[supervisor] shard {index} died ({status}); respawning to resume");
                    still_running.push((
                        index,
                        spawn_shard(dir, index, args.shards, args),
                        respawns + 1,
                    ));
                }
            }
        }
        fleet = still_running;
    }
}

/// Zeroes the I/O-activity counters so result comparisons test trial
/// semantics, not cache weather.
fn without_cache_stats(mut points: Vec<DsePoint>) -> Vec<DsePoint> {
    for p in &mut points {
        p.encode_cache = Default::default();
    }
    points
}

fn main() {
    let args = parse_args();
    if let Some((index, count, dir)) = &args.child {
        run_child(*index, *count, dir, args.trials, args.faulty_cache);
        return;
    }
    assert!(args.shards >= 1, "--shards must be at least 1");
    let dir = std::env::temp_dir().join(format!("maxnvm-sharded-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("work dir");
    println!(
        "Sharded DSE sweep: {} shards, {} trials/scheme, workdir {}",
        args.shards,
        args.trials,
        dir.display()
    );

    let sharded_start = Instant::now();
    supervise(&dir, &args);
    // Merge: an unsharded run preseeded from every shard's checkpoint.
    // Nothing re-executes — the merge replays early-stopping decisions
    // over the complete outcome set and assembles the final result.
    let (layers, eval) = fixture();
    let cfg = dse_config(args.trials);
    let ctx = EvalContext::new(TECH, &SenseAmp::paper_default(), RATE_SCALE).expect("context");
    let mut control = control_for(
        ShardSpec::unsharded(),
        None,
        Some(shared_cache(&dir, None)),
        &eval,
        &cfg,
    );
    control.merge_sources = (0..args.shards)
        .map(|i| shard_ckpt(&dir, i, args.shards))
        .collect();
    let merged = ctx
        .run_dse_controlled(&layers, &eval, &cfg, &control)
        .expect("merge");
    let sharded_time = sharded_start.elapsed();

    let best = minimal_cells(&merged).expect("something passes");
    let stats = merged.first().map(|p| p.encode_cache).unwrap_or_default();
    println!(
        "Merged {} schemes in {:.2?}; winner {} ({} cells, {:.2}% error).",
        merged.len(),
        sharded_time,
        best.scheme.label(),
        best.cells,
        best.mean_error * 100.0
    );
    println!(
        "encode_cache_hit_rate: {:.3} ({} hits / {} misses, {} B written)",
        stats.hit_rate(),
        stats.disk_hits,
        stats.disk_misses,
        stats.bytes_written
    );

    if args.verify {
        println!("\nVerifying against the unsharded single-process run...");
        let single_start = Instant::now();
        let control = control_for(ShardSpec::unsharded(), None, None, &eval, &cfg);
        let single = ctx
            .run_dse_controlled(&layers, &eval, &cfg, &control)
            .expect("unsharded run");
        let single_time = single_start.elapsed();
        let same = without_cache_stats(merged.clone()) == without_cache_stats(single.clone());
        let single_best = minimal_cells(&single).expect("something passes");
        let same_optimal = single_best.scheme.label() == best.scheme.label();
        println!(
            "dse_shard_speedup: {:.2} ({:.2?} single / {:.2?} sharded across {} procs)",
            single_time.as_secs_f64() / sharded_time.as_secs_f64(),
            single_time,
            sharded_time,
            args.shards
        );
        println!("dse_same_optimal: {same_optimal}");
        println!("merge_byte_identical: {same}");
        assert!(same, "merged result must equal the unsharded run");
        assert!(same_optimal, "sharding must not change the optimum");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
