//! Sense-amplifier model (§2.3).
//!
//! The paper characterizes a current-mode latch sense amplifier whose
//! input-referred offset is set by the input differential pair; Monte-Carlo
//! SPICE sweeps over the input transistor width trade offset (smaller
//! devices → larger mismatch → higher misread rates) against area and
//! energy. The SA size is chosen so that (a) total SA overhead stays below
//! 1% of the array and (b) the inherent inter-level fault rates are altered
//! by less than 2x. We capture that with a Pelgrom-style `offset ∝
//! 1/sqrt(area)` law.

use serde::{Deserialize, Serialize};

/// A sense amplifier with a Gaussian input-referred offset.
///
/// Offsets are expressed in the same normalized read-signal units as
/// [`LevelDistribution`](crate::LevelDistribution) (full window = 1.0).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SenseAmp {
    offset_sigma: f64,
}

impl SenseAmp {
    /// Relative area of one reference-size SA, as a fraction of a memory
    /// mat, used by the array model to bound SA overhead.
    pub const UNIT_AREA: f64 = 1.0;

    /// The SA size the paper settles on: offset small enough that fault
    /// rates shift by <2x and array overhead stays <1% (§2.3).
    pub fn paper_default() -> Self {
        Self::new(0.003)
    }

    /// Creates a sense amp with the given input-referred offset sigma.
    ///
    /// # Panics
    ///
    /// Panics if `offset_sigma` is negative or non-finite.
    pub fn new(offset_sigma: f64) -> Self {
        assert!(
            offset_sigma.is_finite() && offset_sigma >= 0.0,
            "invalid offset sigma {offset_sigma}"
        );
        Self { offset_sigma }
    }

    /// Derives the SA for a given input-pair sizing factor (`1.0` =
    /// reference size). Offset follows Pelgrom scaling: `sigma ∝ 1/sqrt(WL)`.
    ///
    /// # Panics
    ///
    /// Panics if `size_factor <= 0`.
    pub fn with_size_factor(size_factor: f64) -> Self {
        assert!(size_factor > 0.0, "size factor must be positive");
        let base = Self::paper_default().offset_sigma;
        Self::new(base / size_factor.sqrt())
    }

    /// The input-referred offset standard deviation.
    pub fn input_referred_offset_sigma(&self) -> f64 {
        self.offset_sigma
    }

    /// Relative area of this SA (Pelgrom: area ∝ 1/offset²).
    pub fn relative_area(&self) -> f64 {
        let base = Self::paper_default().offset_sigma;
        if self.offset_sigma == 0.0 {
            f64::INFINITY
        } else {
            (base / self.offset_sigma).powi(2)
        }
    }

    /// Number of sense amps needed per active bitline for an `levels`-level
    /// cell under the flash-ADC parallel sensing scheme (§2.3): `N - 1`
    /// comparators decode the stored value in one conversion step.
    pub fn amps_per_bitline(levels: usize) -> usize {
        assert!(levels >= 2, "need at least two levels");
        levels - 1
    }
}

impl Default for SenseAmp {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::{CellModel, LevelDistribution};

    #[test]
    fn default_matches_paper_default() {
        assert_eq!(SenseAmp::default(), SenseAmp::paper_default());
    }

    #[test]
    fn pelgrom_scaling() {
        let big = SenseAmp::with_size_factor(4.0);
        let small = SenseAmp::with_size_factor(1.0);
        assert!(
            (big.input_referred_offset_sigma() * 2.0 - small.input_referred_offset_sigma()).abs()
                < 1e-12
        );
        assert!((big.relative_area() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn flash_adc_comparator_count() {
        assert_eq!(SenseAmp::amps_per_bitline(2), 1);
        assert_eq!(SenseAmp::amps_per_bitline(4), 3);
        assert_eq!(SenseAmp::amps_per_bitline(8), 7);
    }

    #[test]
    fn paper_default_alters_fault_rate_by_less_than_2x() {
        // §2.3: the chosen SA size changes inherent inter-level fault rates
        // by less than 2x. Check on a representative MLC3 cell.
        let levels = (0..8)
            .map(|i| LevelDistribution::new(i as f64 / 7.0, 0.017))
            .collect();
        let cell = CellModel::new(levels);
        let base = cell.fault_map().worst_adjacent_rate();
        let with = cell
            .with_sense_amp(&SenseAmp::paper_default())
            .fault_map()
            .worst_adjacent_rate();
        assert!(with > base, "offset must not reduce fault rate");
        assert!(with < 2.0 * base, "SA inflates rate {base} -> {with}, >=2x");
    }

    #[test]
    #[should_panic(expected = "invalid offset sigma")]
    fn rejects_negative_offset() {
        SenseAmp::new(-0.1);
    }
}
