/root/repo/target/debug/deps/encoding_kernels-e03189be099a4e64.d: crates/bench/benches/encoding_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libencoding_kernels-e03189be099a4e64.rmeta: crates/bench/benches/encoding_kernels.rs Cargo.toml

crates/bench/benches/encoding_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
