/root/repo/target/debug/deps/crossbeam-a41393e6063f0fb8.d: vendor/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam-a41393e6063f0fb8.rmeta: vendor/crossbeam/src/lib.rs Cargo.toml

vendor/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
