/root/repo/target/debug/libmaxnvm_ecc.rlib: /root/repo/crates/bits/src/lib.rs /root/repo/crates/ecc/src/lib.rs /root/repo/vendor/serde/src/lib.rs /root/repo/vendor/serde_derive/src/lib.rs
