/root/repo/target/debug/deps/maxnvm_bench-875a2a31f04148ba.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmaxnvm_bench-875a2a31f04148ba.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmaxnvm_bench-875a2a31f04148ba.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
