//! Regenerates paper Fig. 9: NVDLA energy per ResNet50 inference, average
//! power, and frames per second for NVDLA-64 and NVDLA-1024, comparing
//! the LPDDR4-DRAM baseline with the four eNVM proposals.

use maxnvm::{baseline_design, optimal_design, CellTechnology, NvdlaConfig};
use maxnvm_dnn::zoo;

fn main() {
    let model = zoo::resnet50();
    println!("Fig. 9: ResNet50 inference on NVDLA\n");
    for cfg in [NvdlaConfig::nvdla_64(), NvdlaConfig::nvdla_1024()] {
        println!("== {} ==", cfg.name);
        println!(
            "{:<18} {:>14} {:>12} {:>10}",
            "Weight store", "Energy(mJ/inf)", "Power(mW)", "FPS"
        );
        let base = baseline_design(&model, &cfg);
        println!(
            "{:<18} {:>14.3} {:>12.1} {:>10.1}",
            "LPDDR4 DRAM", base.energy_per_inference_mj, base.avg_power_mw, base.fps
        );
        for tech in CellTechnology::ALL {
            let d = optimal_design(&model, tech).expect("design");
            let r = if cfg.macs == 64 {
                &d.system_64
            } else {
                &d.system_1024
            };
            println!(
                "{:<18} {:>14.3} {:>12.1} {:>10.1}",
                tech.name(),
                r.energy_per_inference_mj,
                r.avg_power_mw,
                r.fps
            );
        }
        // Headline ratios for this configuration.
        let ctt = optimal_design(&model, CellTechnology::MlcCtt).expect("design");
        let r = if cfg.macs == 64 {
            &ctt.system_64
        } else {
            &ctt.system_1024
        };
        println!(
            "-> MLC-CTT vs DRAM: {:.1}x energy, {:.1}x power (paper: 3.5x / 3.2x at NVDLA-64; ~1.6x power at NVDLA-1024)",
            base.energy_per_inference_mj / r.energy_per_inference_mj,
            base.avg_power_mw / r.avg_power_mw
        );
        println!();
    }
}
