/root/repo/target/debug/deps/maxnvm_repro-aa6ba432d3a47415.d: src/lib.rs

/root/repo/target/debug/deps/maxnvm_repro-aa6ba432d3a47415: src/lib.rs

src/lib.rs:
