//! Magnitude pruning and per-layer k-means weight clustering (§3.1.2).
//!
//! All weight values within a layer are represented by `2^index_bits`
//! unique clustered values; each weight is stored as its cluster index
//! with a small per-layer lookup table mapping indexes back to values.
//! Index 0 is reserved for the exact zero produced by pruning, so the
//! sparsity structure survives clustering.

use maxnvm_dnn::network::LayerMatrix;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// 1-D k-means with k-means++ seeding.
///
/// Returns the `k` centroids (sorted ascending). Runs at most `iters`
/// Lloyd iterations or until assignment converges.
///
/// # Panics
///
/// Panics if `values` is empty or `k == 0`.
pub fn kmeans_1d(values: &[f32], k: usize, iters: usize, seed: u64) -> Vec<f32> {
    assert!(!values.is_empty(), "kmeans on empty values");
    assert!(k > 0, "k must be positive");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    // Subsample very large layers for speed; 64k points pin down 1-D
    // centroids far beyond the precision clustering needs.
    let sample: Vec<f32> = if values.len() > 65_536 {
        let mut idx: Vec<usize> = (0..values.len()).collect();
        idx.shuffle(&mut rng);
        idx[..65_536].iter().map(|&i| values[i]).collect()
    } else {
        values.to_vec()
    };

    // k-means++ init on the (sorted) sample.
    let mut sorted = sample.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let k = k.min(sorted.len());
    let mut centroids: Vec<f32> = Vec::with_capacity(k);
    centroids.push(sorted[sorted.len() / 2]);
    while centroids.len() < k {
        // Pick the point farthest from its nearest centroid (deterministic
        // farthest-point variant of k-means++; robust in 1-D).
        // `sorted` is non-empty here: the first centroid above needs
        // at least one sample, so `max_by` finds a point.
        let Some(far) = sorted.iter().copied().max_by(|&a, &b| {
            let da = centroids
                .iter()
                .map(|&c| (a - c).abs())
                .fold(f32::MAX, f32::min);
            let db = centroids
                .iter()
                .map(|&c| (b - c).abs())
                .fold(f32::MAX, f32::min);
            da.total_cmp(&db)
        }) else {
            break;
        };
        if centroids.contains(&far) {
            break; // fewer distinct values than k
        }
        centroids.push(far);
    }
    centroids.sort_by(|a, b| a.total_cmp(b));

    // Lloyd iterations.
    for _ in 0..iters {
        let mut sums = vec![0.0f64; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for &v in &sample {
            let c = nearest(&centroids, v);
            sums[c] += v as f64;
            counts[c] += 1;
        }
        let mut moved = false;
        for (i, c) in centroids.iter_mut().enumerate() {
            if counts[i] > 0 {
                let m = (sums[i] / counts[i] as f64) as f32;
                if (m - *c).abs() > 1e-7 {
                    *c = m;
                    moved = true;
                }
            }
        }
        centroids.sort_by(|a, b| a.total_cmp(b));
        if !moved {
            break;
        }
    }
    centroids
}

/// Index of the centroid nearest to `v`.
fn nearest(centroids: &[f32], v: f32) -> usize {
    let mut best = 0;
    let mut bd = f32::MAX;
    for (i, &c) in centroids.iter().enumerate() {
        let d = (v - c).abs();
        if d < bd {
            bd = d;
            best = i;
        }
    }
    best
}

/// A layer whose weights have been pruned and clustered: every weight is a
/// `index_bits`-bit cluster index into a per-layer centroid table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusteredLayer {
    /// Layer name.
    pub name: String,
    /// Matrix rows.
    pub rows: usize,
    /// Matrix columns.
    pub cols: usize,
    /// Bits per cluster index (paper: 4–7).
    pub index_bits: u8,
    /// Cluster values; `centroids[0] == 0.0` always.
    pub centroids: Vec<f32>,
    /// Row-major cluster index per weight, `rows * cols` long.
    pub indices: Vec<u16>,
}

impl ClusteredLayer {
    /// Prunes nothing (the matrix is assumed already pruned — zeros map to
    /// index 0) and clusters the non-zero weights into `2^index_bits - 1`
    /// clusters.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or > 8.
    pub fn from_matrix(matrix: &LayerMatrix, index_bits: u8, seed: u64) -> Self {
        assert!((1..=8).contains(&index_bits), "index bits out of range");
        let nonzeros: Vec<f32> = matrix.data.iter().copied().filter(|&v| v != 0.0).collect();
        let k = (1usize << index_bits) - 1;
        let mut centroids = vec![0.0f32];
        if !nonzeros.is_empty() {
            let cs = kmeans_1d(&nonzeros, k, 25, seed);
            // Guard: a k-means centroid that landed exactly on 0 would
            // alias the reserved zero index.
            centroids.extend(cs.into_iter().map(|c| if c == 0.0 { 1e-12 } else { c }));
        }
        let indices = matrix
            .data
            .iter()
            .map(|&v| {
                if v == 0.0 {
                    0u16
                } else {
                    // Nearest non-zero centroid (indices 1..).
                    let mut best = 1usize;
                    let mut bd = f32::MAX;
                    for (i, &c) in centroids.iter().enumerate().skip(1) {
                        let d = (v - c).abs();
                        if d < bd {
                            bd = d;
                            best = i;
                        }
                    }
                    best as u16
                }
            })
            .collect();
        Self {
            name: matrix.name.clone(),
            rows: matrix.rows,
            cols: matrix.cols,
            index_bits,
            centroids,
            indices,
        }
    }

    /// Number of non-zero (index != 0) weights.
    pub fn nonzeros(&self) -> usize {
        self.indices.iter().filter(|&&i| i != 0).count()
    }

    /// Fraction of zero weights.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.nonzeros() as f64 / self.indices.len().max(1) as f64
    }

    /// Maps indices back to weight values.
    pub fn reconstruct(&self) -> LayerMatrix {
        self.reconstruct_from(&self.indices)
    }

    /// Maps an arbitrary (possibly fault-corrupted) index matrix back to
    /// values using this layer's centroid table. Out-of-range indices are
    /// clamped to the top centroid — mirroring what a hardware LUT read
    /// with a wild index would return.
    pub fn reconstruct_from(&self, indices: &[u16]) -> LayerMatrix {
        assert_eq!(indices.len(), self.rows * self.cols, "index matrix shape");
        let top = (self.centroids.len() - 1) as u16;
        let data = indices
            .iter()
            .map(|&i| self.centroids[i.min(top) as usize])
            .collect();
        LayerMatrix::new(&self.name, self.rows, self.cols, data)
    }

    /// Mean squared quantization error of clustering (against `matrix`).
    pub fn quantization_mse(&self, matrix: &LayerMatrix) -> f64 {
        let rec = self.reconstruct();
        rec.data
            .iter()
            .zip(&matrix.data)
            .map(|(a, b)| ((a - b) as f64).powi(2))
            .sum::<f64>()
            / matrix.data.len().max(1) as f64
    }
}

/// Per-layer index-bit selection (§3.1.2): "all the weight values within
/// a given layer can be represented by 16 to 128 unique clustered values
/// at no loss of accuracy" — i.e., the paper picks, per layer, the fewest
/// cluster bits whose quantization error is negligible. This returns the
/// smallest `bits` in `min_bits..=max_bits` whose relative quantization
/// MSE (vs the layer's weight energy) is at or below `target_rel_mse`,
/// falling back to `max_bits`.
pub fn min_index_bits(
    matrix: &LayerMatrix,
    min_bits: u8,
    max_bits: u8,
    target_rel_mse: f64,
    seed: u64,
) -> u8 {
    assert!(
        (1..=8).contains(&min_bits) && min_bits <= max_bits && max_bits <= 8,
        "bit range out of order"
    );
    let energy: f64 = matrix.data.iter().map(|&v| (v as f64).powi(2)).sum();
    if energy == 0.0 {
        return min_bits;
    }
    for bits in min_bits..=max_bits {
        let c = ClusteredLayer::from_matrix(matrix, bits, seed);
        let rel = c.quantization_mse(matrix) * matrix.data.len() as f64 / energy;
        if rel <= target_rel_mse {
            return bits;
        }
    }
    max_bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;

    fn sample_matrix(rows: usize, cols: usize, sparsity: f64, seed: u64) -> LayerMatrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| {
                if rng.gen::<f64>() < sparsity {
                    0.0
                } else {
                    rng.gen::<f32>() * 2.0 - 1.0
                }
            })
            .collect();
        LayerMatrix::new("t", rows, cols, data)
    }

    #[test]
    fn kmeans_recovers_well_separated_clusters() {
        let mut vals = Vec::new();
        for &c in &[-3.0f32, 0.5, 4.0] {
            for i in 0..50 {
                vals.push(c + (i as f32 - 25.0) * 0.002);
            }
        }
        let cs = kmeans_1d(&vals, 3, 30, 1);
        assert_eq!(cs.len(), 3);
        assert!((cs[0] + 3.0).abs() < 0.1, "{cs:?}");
        assert!((cs[1] - 0.5).abs() < 0.1, "{cs:?}");
        assert!((cs[2] - 4.0).abs() < 0.1, "{cs:?}");
    }

    #[test]
    fn kmeans_handles_fewer_distinct_values_than_k() {
        let vals = vec![1.0f32, 1.0, 2.0, 2.0];
        let cs = kmeans_1d(&vals, 8, 10, 2);
        assert!(cs.len() <= 8);
        assert!(cs.contains(&1.0) && cs.contains(&2.0));
    }

    #[test]
    fn centroid_zero_is_reserved() {
        let m = sample_matrix(8, 8, 0.5, 3);
        let c = ClusteredLayer::from_matrix(&m, 4, 1);
        assert_eq!(c.centroids[0], 0.0);
        // All zero weights map to index 0, all non-zero to other indices.
        for (v, &i) in m.data.iter().zip(&c.indices) {
            if *v == 0.0 {
                assert_eq!(i, 0);
            } else {
                assert_ne!(i, 0);
            }
        }
    }

    #[test]
    fn sparsity_survives_clustering() {
        let m = sample_matrix(16, 16, 0.7, 4);
        let c = ClusteredLayer::from_matrix(&m, 4, 1);
        assert!((c.sparsity() - m.sparsity()).abs() < 1e-9);
        let rec = c.reconstruct();
        assert!((rec.sparsity() - m.sparsity()).abs() < 1e-9);
    }

    #[test]
    fn reconstruction_error_shrinks_with_more_clusters() {
        let m = sample_matrix(32, 32, 0.3, 5);
        let e2 = ClusteredLayer::from_matrix(&m, 2, 1).quantization_mse(&m);
        let e4 = ClusteredLayer::from_matrix(&m, 4, 1).quantization_mse(&m);
        let e6 = ClusteredLayer::from_matrix(&m, 6, 1).quantization_mse(&m);
        assert!(e4 < e2, "{e4} !< {e2}");
        assert!(e6 < e4, "{e6} !< {e4}");
        assert!(e6 < 1e-4, "6-bit clustering should be near-lossless: {e6}");
    }

    #[test]
    fn reconstruct_from_clamps_wild_indices() {
        let m = sample_matrix(4, 4, 0.5, 6);
        let c = ClusteredLayer::from_matrix(&m, 2, 1);
        let wild = vec![u16::MAX; 16];
        let rec = c.reconstruct_from(&wild);
        let top = *c.centroids.last().unwrap();
        assert!(rec.data.iter().all(|&v| v == top));
    }

    #[test]
    fn all_zero_matrix_clusters_cleanly() {
        let m = LayerMatrix::new("z", 2, 3, vec![0.0; 6]);
        let c = ClusteredLayer::from_matrix(&m, 4, 1);
        assert_eq!(c.nonzeros(), 0);
        assert_eq!(c.centroids, vec![0.0]);
        assert_eq!(c.reconstruct().data, vec![0.0; 6]);
    }

    #[test]
    fn min_index_bits_tracks_weight_complexity() {
        // A two-valued layer needs few bits; a rich continuum needs more.
        let simple = LayerMatrix::new(
            "s",
            4,
            64,
            (0..256)
                .map(|i| if i % 2 == 0 { 0.5 } else { -0.5 })
                .collect(),
        );
        assert_eq!(min_index_bits(&simple, 2, 7, 1e-3, 1), 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let rich = LayerMatrix::new(
            "r",
            16,
            64,
            (0..1024).map(|_| rng.gen::<f32>() - 0.5).collect(),
        );
        let bits = min_index_bits(&rich, 2, 7, 1e-3, 1);
        assert!(bits >= 5, "continuum needs many clusters: {bits}");
    }

    #[test]
    fn min_index_bits_paper_band() {
        // §3.1.2: 16–128 clusters (4–7 bits) suffice for realistic
        // pruned-Gaussian layers at tight error targets.
        let m = sample_matrix(64, 64, 0.7, 9);
        let bits = min_index_bits(&m, 1, 8, 1e-3, 2);
        assert!((4..=7).contains(&bits), "bits {bits}");
    }

    #[test]
    fn all_zero_layer_needs_min_bits() {
        let m = LayerMatrix::new("z", 2, 2, vec![0.0; 4]);
        assert_eq!(min_index_bits(&m, 3, 7, 1e-3, 1), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_round_trip_indices_in_range(
            rows in 1usize..12, cols in 1usize..12, seed in any::<u64>(), bits in 2u8..6
        ) {
            let m = sample_matrix(rows, cols, 0.5, seed);
            let c = ClusteredLayer::from_matrix(&m, bits, seed);
            prop_assert!(c.centroids.len() <= 1 << bits);
            for &i in &c.indices {
                prop_assert!((i as usize) < c.centroids.len());
            }
            let rec = c.reconstruct();
            prop_assert_eq!(rec.rows, rows);
            prop_assert_eq!(rec.cols, cols);
        }
    }
}
