//! The ECC ↔ Gray-code contract (paper §3.3), locked by property tests.
//!
//! SEC-DED only makes MLC storage safe because codeword bits are packed
//! into **Gray-coded** cells: an adjacent-level misread then flips
//! exactly one codeword bit (correctable), and two faulted cells flip
//! two bits (detectable). These tests drive real codewords through that
//! cell channel — pack into levels, inject adjacent-level faults,
//! unpack, decode — and pin both halves of the guarantee, exhaustively
//! per codeword and property-based over data, codeword sizes, and
//! bits-per-cell.

use maxnvm_bits::BitBuffer;
use maxnvm_ecc::{Correction, SecDed};
use maxnvm_envm::gray::{binary_to_level, level_to_binary};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

fn random_data(bits: usize, seed: u64) -> BitBuffer {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..bits).map(|_| rng.gen::<bool>()).collect()
}

/// Packs a codeword into MLC levels, `bits` codeword bits per cell
/// (the final cell zero-padded), Gray-mapping each binary field to the
/// level that stores it.
fn pack(cw: &BitBuffer, bits: u8) -> Vec<u8> {
    let mut levels = Vec::with_capacity(cw.len().div_ceil(bits as usize));
    let mut i = 0;
    while i < cw.len() {
        let mut field = 0u64;
        for b in 0..bits as usize {
            if cw.get(i + b) == Some(true) {
                field |= 1 << b;
            }
        }
        levels.push(binary_to_level(field, bits));
        i += bits as usize;
    }
    levels
}

/// Reads `len` codeword bits back out of the cell levels.
fn unpack(levels: &[u8], bits: u8, len: usize) -> BitBuffer {
    let mut out = BitBuffer::with_capacity(len);
    'cells: for &lvl in levels {
        let field = level_to_binary(lvl, bits);
        for b in 0..bits as usize {
            if out.len() == len {
                break 'cells;
            }
            out.push_bit(field >> b & 1 == 1);
        }
    }
    out
}

/// Positions where two buffers of equal length disagree.
fn diff_positions(a: &BitBuffer, b: &BitBuffer) -> Vec<usize> {
    assert_eq!(a.len(), b.len());
    (0..a.len()).filter(|&i| a.get(i) != b.get(i)).collect()
}

/// Levels adjacent to `lvl` within a `bits`-per-cell cell.
fn adjacent_levels(lvl: u8, bits: u8) -> Vec<u8> {
    let max = (1u16 << bits) - 1;
    let mut out = Vec::new();
    if lvl > 0 {
        out.push(lvl - 1);
    }
    if (lvl as u16) < max {
        out.push(lvl + 1);
    }
    out
}

#[test]
fn gray_packing_round_trips_cleanly() {
    for bits in 1..=3u8 {
        let code = SecDed::new(26);
        let data = random_data(26, 40 + bits as u64);
        let cw = code.encode(&data);
        let levels = pack(&cw, bits);
        let mut back = unpack(&levels, bits, cw.len());
        assert_eq!(back, cw, "bits {bits}");
        let dec = code.decode(&mut back);
        assert_eq!(dec.correction, Correction::Clean);
        assert_eq!(dec.data, data);
    }
}

/// Every adjacent-level fault in every cell, at every bits-per-cell:
/// at most one codeword bit flips (exactly one unless the fault hit
/// final-cell padding), and SEC-DED recovers the data.
#[test]
fn every_adjacent_level_fault_is_corrected_exhaustively() {
    for bits in 1..=3u8 {
        let code = SecDed::new(26);
        let data = random_data(26, 50 + bits as u64);
        let clean_cw = code.encode(&data);
        let levels = pack(&clean_cw, bits);
        for cell in 0..levels.len() {
            for faulty_lvl in adjacent_levels(levels[cell], bits) {
                let mut faulty = levels.clone();
                faulty[cell] = faulty_lvl;
                let mut cw = unpack(&faulty, bits, clean_cw.len());
                let flips = diff_positions(&clean_cw, &cw);
                assert!(
                    flips.len() <= 1,
                    "bits {bits}: adjacent-level fault in cell {cell} flipped \
                     {} codeword bits — Gray adjacency is broken",
                    flips.len()
                );
                let dec = code.decode(&mut cw);
                match flips.as_slice() {
                    // The flip landed in the final cell's padding.
                    [] => assert_eq!(dec.correction, Correction::Clean),
                    &[pos] => {
                        assert_eq!(
                            dec.correction,
                            Correction::CorrectedSingle(pos),
                            "bits {bits}, cell {cell}"
                        );
                        assert_eq!(dec.data, data, "bits {bits}, cell {cell}");
                    }
                    _ => unreachable!(),
                }
            }
        }
    }
}

/// Every pair of adjacent-level faults in two distinct cells: two
/// codeword bits flip (minus any padding hits), and SEC-DED detects —
/// never miscorrects into silently wrong data.
#[test]
fn every_double_cell_fault_is_detected_exhaustively() {
    let bits = 3u8;
    let code = SecDed::new(11);
    let data = random_data(11, 60);
    let clean_cw = code.encode(&data);
    let levels = pack(&clean_cw, bits);
    for a in 0..levels.len() {
        for b in (a + 1)..levels.len() {
            for la in adjacent_levels(levels[a], bits) {
                for lb in adjacent_levels(levels[b], bits) {
                    let mut faulty = levels.clone();
                    faulty[a] = la;
                    faulty[b] = lb;
                    let mut cw = unpack(&faulty, bits, clean_cw.len());
                    let flips = diff_positions(&clean_cw, &cw).len();
                    let dec = code.decode(&mut cw);
                    match flips {
                        0 => assert_eq!(dec.correction, Correction::Clean),
                        1 => {
                            assert!(matches!(dec.correction, Correction::CorrectedSingle(_)));
                            assert_eq!(dec.data, data);
                        }
                        2 => assert_eq!(
                            dec.correction,
                            Correction::DetectedDouble,
                            "cells {a},{b} levels {la},{lb}"
                        ),
                        n => panic!("two cell faults flipped {n} bits"),
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A single adjacent-level cell fault is always corrected and the
    /// data always recovered, across codeword sizes and cell densities.
    #[test]
    fn prop_single_cell_fault_recovers_data(
        seed in any::<u64>(),
        data_bits in 1usize..150,
        bits in 1u8..=3,
        cell_pick in any::<prop::sample::Index>(),
        dir_pick in any::<prop::sample::Index>(),
    ) {
        let code = SecDed::new(data_bits);
        let data = random_data(data_bits, seed);
        let clean_cw = code.encode(&data);
        let levels = pack(&clean_cw, bits);
        let cell = cell_pick.index(levels.len());
        let adj = adjacent_levels(levels[cell], bits);
        let mut faulty = levels.clone();
        faulty[cell] = adj[dir_pick.index(adj.len())];
        let mut cw = unpack(&faulty, bits, clean_cw.len());
        prop_assert!(diff_positions(&clean_cw, &cw).len() <= 1);
        let dec = code.decode(&mut cw);
        prop_assert!(dec.correction.is_recovered());
        prop_assert_eq!(dec.data, data);
    }

    /// Two distinct faulted cells are never silently miscorrected: the
    /// decode either recovers the exact data (a padding hit absorbed
    /// one flip) or reports DetectedDouble.
    #[test]
    fn prop_double_cell_fault_never_lies(
        seed in any::<u64>(),
        data_bits in 2usize..150,
        bits in 1u8..=3,
        pick_a in any::<prop::sample::Index>(),
        pick_b in any::<prop::sample::Index>(),
        dir_a in any::<prop::sample::Index>(),
        dir_b in any::<prop::sample::Index>(),
    ) {
        let code = SecDed::new(data_bits);
        let data = random_data(data_bits, seed);
        let clean_cw = code.encode(&data);
        let levels = pack(&clean_cw, bits);
        // data_bits >= 2 plus >= 4 parity bits at <= 3 bits/cell
        // guarantees at least two cells.
        prop_assert!(levels.len() >= 2);
        let a = pick_a.index(levels.len());
        let b = pick_b.index(levels.len() - 1);
        let b = if b >= a { b + 1 } else { b };
        let mut faulty = levels.clone();
        let adj_a = adjacent_levels(levels[a], bits);
        let adj_b = adjacent_levels(levels[b], bits);
        faulty[a] = adj_a[dir_a.index(adj_a.len())];
        faulty[b] = adj_b[dir_b.index(adj_b.len())];
        let mut cw = unpack(&faulty, bits, clean_cw.len());
        let flips = diff_positions(&clean_cw, &cw).len();
        prop_assert!(flips <= 2);
        let dec = code.decode(&mut cw);
        if dec.correction.is_recovered() {
            prop_assert!(flips <= 1, "recovered despite {flips} flips");
            prop_assert_eq!(dec.data, data);
        } else {
            prop_assert_eq!(flips, 2);
            prop_assert_eq!(dec.correction, Correction::DetectedDouble);
        }
    }

    /// The cell channel itself is lossless without faults.
    #[test]
    fn prop_pack_unpack_round_trip(
        seed in any::<u64>(),
        data_bits in 1usize..200,
        bits in 1u8..=3,
    ) {
        let code = SecDed::new(data_bits);
        let data = random_data(data_bits, seed);
        let cw = code.encode(&data);
        let back = unpack(&pack(&cw, bits), bits, cw.len());
        prop_assert_eq!(back, cw);
    }
}
