/root/repo/target/debug/deps/maxnvm-00b44bf4e876d6f2.d: crates/core/src/lib.rs

/root/repo/target/debug/deps/maxnvm-00b44bf4e876d6f2: crates/core/src/lib.rs

crates/core/src/lib.rs:
