/root/repo/target/debug/deps/maxnvm_repro-91fcca7fe99d011e.d: src/lib.rs

/root/repo/target/debug/deps/libmaxnvm_repro-91fcca7fe99d011e.rlib: src/lib.rs

/root/repo/target/debug/deps/libmaxnvm_repro-91fcca7fe99d011e.rmeta: src/lib.rs

src/lib.rs:
