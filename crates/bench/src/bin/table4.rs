//! Regenerates paper Table 4: summary of optimal storage per eNVM
//! proposal, characterized per DNN.

use maxnvm::{optimal_design, CellTechnology};
use maxnvm_dnn::zoo;

fn main() {
    println!("Table 4: optimal storage per eNVM proposal (ours vs paper in parens)\n");
    // Paper rows: (model, tech, encoding, bpc, MB, area, read ns, fps)
    type PaperRow = (
        &'static str,
        &'static str,
        &'static str,
        u8,
        f64,
        f64,
        f64,
        f64,
    );
    let paper: &[PaperRow] = &[
        (
            "VGG12",
            "Opt MLC-RRAM",
            "BitM+IdxSync",
            3,
            4.0,
            0.12,
            5.1,
            132.0,
        ),
        ("VGG12", "MLC-CTT", "BitMask", 2, 4.0, 0.35, 1.6, 2286.0),
        ("VGG12", "MLC-RRAM", "BitM+IdxSync", 3, 4.0, 1.3, 4.9, 633.0),
        ("VGG12", "SLC-RRAM", "BitMask", 1, 4.0, 3.4, 1.7, 2967.0),
        ("VGG16", "Opt MLC-RRAM", "CSR+ECC", 3, 32.0, 1.3, 4.2, 102.0),
        ("VGG16", "MLC-CTT", "CSR+ECC", 3, 32.0, 2.0, 2.0, 142.0),
        ("VGG16", "MLC-RRAM", "CSR+ECC", 3, 32.0, 5.7, 3.2, 131.0),
        ("VGG16", "SLC-RRAM", "CSR", 1, 32.0, 19.2, 5.2, 147.0),
        (
            "ResNet50",
            "Opt MLC-RRAM",
            "BitM+IdxSync",
            2,
            12.0,
            0.6,
            2.1,
            147.0,
        ),
        (
            "ResNet50",
            "MLC-CTT",
            "BitM+IdxSync",
            2,
            12.0,
            1.0,
            1.9,
            215.0,
        ),
        (
            "ResNet50",
            "MLC-RRAM",
            "BitM+IdxSync",
            2,
            12.0,
            2.8,
            1.4,
            203.0,
        ),
        ("ResNet50", "SLC-RRAM", "BitMask", 1, 12.0, 9.6, 2.5, 219.0),
    ];
    println!(
        "{:<9} {:<14} {:<26} {:>9} {:>13} {:>15} {:>14} {:>16}",
        "Model", "Memory Tech", "Encoding", "BPC", "[MB]", "Area[mm2]", "Read[ns]", "FPS (1024)"
    );
    for spec in [zoo::vgg12(), zoo::vgg16(), zoo::resnet50()] {
        for tech in CellTechnology::ALL {
            let d = optimal_design(&spec, tech).expect("design");
            let p = paper
                .iter()
                .find(|(m, t, ..)| *m == spec.name && *t == tech.name())
                .expect("paper row");
            println!(
                "{:<9} {:<14} {:<26} {:>9} {:>13} {:>15} {:>14} {:>16}",
                spec.name,
                tech.name(),
                format!("{} ({})", d.scheme_label, p.2),
                format!("{} ({})", d.max_bits_per_cell, p.3),
                format!("{:.1} ({:.0})", d.capacity_mb, p.4),
                format!("{:.2} ({:.2})", d.array.area_mm2, p.5),
                format!("{:.1} ({:.1})", d.array.read_latency_ns, p.6),
                format!("{:.0} ({:.0})", d.system_1024.fps, p.7),
            );
        }
        println!();
    }
}
