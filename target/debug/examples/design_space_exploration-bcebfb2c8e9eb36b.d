/root/repo/target/debug/examples/design_space_exploration-bcebfb2c8e9eb36b.d: examples/design_space_exploration.rs

/root/repo/target/debug/examples/design_space_exploration-bcebfb2c8e9eb36b: examples/design_space_exploration.rs

examples/design_space_exploration.rs:
