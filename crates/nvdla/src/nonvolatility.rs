//! The §5.3 non-volatility study (Fig. 10): average energy per inference
//! as a function of frame rate, comparing eNVM (retains weights when
//! powered off) against a DRAM baseline that either stays powered between
//! frames or reloads all weights on every wake-up.

use crate::config::{NvdlaConfig, DRAM_RELOAD_PJ_PER_BYTE};
use crate::perf::SystemReport;
use serde::{Deserialize, Serialize};

/// How the DRAM-based baseline bridges the gaps between inferences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IdlePolicy {
    /// DRAM stays powered to retain weights ("DRAM always on").
    AlwaysOn,
    /// The system powers down and reloads all weights from main memory
    /// before each inference ("DRAM wake up").
    WakeUp,
    /// eNVM: weights are retained with zero standby power.
    Envm,
}

/// Average energy per inference (mJ) at a requested frame rate.
///
/// `report` must come from [`crate::perf::evaluate`] with the matching
/// source; `total_weight_bytes` is the full (encoded) model footprint
/// reloaded on wake-up.
///
/// # Panics
///
/// Panics if `fps` exceeds the system's maximum achievable rate or is not
/// positive.
pub fn average_energy_per_inference_mj(
    report: &SystemReport,
    cfg: &NvdlaConfig,
    policy: IdlePolicy,
    fps: f64,
    total_weight_bytes: u64,
) -> f64 {
    assert!(fps > 0.0, "frame rate must be positive");
    assert!(
        fps <= report.fps * 1.0001,
        "requested {fps} FPS exceeds achievable {}",
        report.fps
    );
    let period_s = 1.0 / fps;
    let exec_s = 1.0 / report.fps;
    let idle_s = (period_s - exec_s).max(0.0);
    match policy {
        IdlePolicy::AlwaysOn => {
            // Keep the DRAM interface powered through the idle gap.
            report.energy_per_inference_mj + cfg.dram_power_mw * idle_s
        }
        IdlePolicy::WakeUp => {
            // Power down between frames; reload every weight on wake.
            report.energy_per_inference_mj
                + total_weight_bytes as f64 * DRAM_RELOAD_PJ_PER_BYTE * 1e-9
        }
        IdlePolicy::Envm => {
            // Non-volatile store: nothing to retain, nothing to reload.
            report.energy_per_inference_mj
        }
    }
}

/// The frame rate below which waking up beats staying on (the §5.3
/// crossover, ~22 FPS for ResNet50): where idle retention energy equals
/// the reload energy.
pub fn always_on_crossover_fps(cfg: &NvdlaConfig, total_weight_bytes: u64) -> f64 {
    let reload_mj = total_weight_bytes as f64 * DRAM_RELOAD_PJ_PER_BYTE * 1e-9;
    // dram_power_mw * (1/fps) ≈ reload_mj  (idle ≈ period at low fps)
    cfg.dram_power_mw / reload_mj
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::{encoded_weight_bytes, evaluate};
    use crate::source::WeightSource;
    use maxnvm_dnn::zoo;
    use maxnvm_encoding::EncodingKind;
    use maxnvm_envm::CellTechnology;
    use maxnvm_nvsim::{characterize, ArrayRequest, OptTarget};

    fn setup() -> (SystemReport, SystemReport, NvdlaConfig, u64) {
        let model = zoo::resnet50();
        let bytes = encoded_weight_bytes(&model, EncodingKind::BitMask, true);
        let total: u64 = bytes.iter().sum();
        let cfg = NvdlaConfig::nvdla_1024();
        let base = evaluate(&model, &cfg, &WeightSource::Dram, &bytes);
        let envm = evaluate(
            &model,
            &cfg,
            &WeightSource::Envm(
                characterize(
                    &ArrayRequest::new(CellTechnology::MlcCtt, 50_000_000, 2),
                    OptTarget::ReadEdp,
                )
                .expect("feasible organization"),
            ),
            &bytes,
        );
        (base, envm, cfg, total)
    }

    #[test]
    fn envm_wins_big_at_low_frame_rates() {
        // §5.3: 5.3x–7.5x lower energy per inference at <22 FPS.
        let (base, envm, cfg, total) = setup();
        let fps = 10.0;
        let on = average_energy_per_inference_mj(&base, &cfg, IdlePolicy::AlwaysOn, fps, total);
        let wake = average_energy_per_inference_mj(&base, &cfg, IdlePolicy::WakeUp, fps, total);
        let nv = average_energy_per_inference_mj(&envm, &cfg, IdlePolicy::Envm, fps, total);
        let best_baseline = on.min(wake);
        let ratio = best_baseline / nv;
        assert!(
            (3.0..10.0).contains(&ratio),
            "low-fps advantage {ratio} (paper 5.3–7.5x): on {on} wake {wake} envm {nv}"
        );
    }

    #[test]
    fn envm_still_wins_at_vr_frame_rates() {
        // §5.3: 1.7x–2.5x lower energy even at 90 FPS.
        let (base, envm, cfg, total) = setup();
        let fps = 90.0;
        let on = average_energy_per_inference_mj(&base, &cfg, IdlePolicy::AlwaysOn, fps, total);
        let wake = average_energy_per_inference_mj(&base, &cfg, IdlePolicy::WakeUp, fps, total);
        let nv = average_energy_per_inference_mj(&envm, &cfg, IdlePolicy::Envm, fps, total);
        let ratio = on.min(wake) / nv;
        assert!((1.3..4.0).contains(&ratio), "90fps advantage {ratio}");
    }

    #[test]
    fn crossover_sits_at_tens_of_fps() {
        // §5.3: below ~22 FPS waking up per inference beats staying on.
        let (_, _, cfg, total) = setup();
        let cross = always_on_crossover_fps(&cfg, total);
        assert!(
            (5.0..80.0).contains(&cross),
            "crossover {cross} FPS (paper ~22)"
        );
        // Verify the crossover is real: wake-up wins below, loses above.
        let (base, _, _, _) = setup();
        let below = cross * 0.5;
        let above = (cross * 2.0).min(base.fps);
        let on_b = average_energy_per_inference_mj(&base, &cfg, IdlePolicy::AlwaysOn, below, total);
        let wk_b = average_energy_per_inference_mj(&base, &cfg, IdlePolicy::WakeUp, below, total);
        assert!(wk_b < on_b, "below crossover: wake {wk_b} vs on {on_b}");
        let on_a = average_energy_per_inference_mj(&base, &cfg, IdlePolicy::AlwaysOn, above, total);
        let wk_a = average_energy_per_inference_mj(&base, &cfg, IdlePolicy::WakeUp, above, total);
        assert!(wk_a > on_a, "above crossover: wake {wk_a} vs on {on_a}");
    }

    #[test]
    fn always_on_energy_decreases_with_frame_rate() {
        let (base, _, cfg, total) = setup();
        let lo = average_energy_per_inference_mj(&base, &cfg, IdlePolicy::AlwaysOn, 5.0, total);
        let hi = average_energy_per_inference_mj(&base, &cfg, IdlePolicy::AlwaysOn, 60.0, total);
        assert!(lo > hi);
        // Wake-up energy is flat in fps.
        let w1 = average_energy_per_inference_mj(&base, &cfg, IdlePolicy::WakeUp, 5.0, total);
        let w2 = average_energy_per_inference_mj(&base, &cfg, IdlePolicy::WakeUp, 60.0, total);
        assert!((w1 - w2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exceeds achievable")]
    fn rejects_impossible_frame_rates() {
        let (base, _, cfg, total) = setup();
        average_energy_per_inference_mj(&base, &cfg, IdlePolicy::AlwaysOn, base.fps * 2.0, total);
    }
}
