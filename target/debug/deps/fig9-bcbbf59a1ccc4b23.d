/root/repo/target/debug/deps/fig9-bcbbf59a1ccc4b23.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-bcbbf59a1ccc4b23: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
