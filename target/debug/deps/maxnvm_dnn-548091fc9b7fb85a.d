/root/repo/target/debug/deps/maxnvm_dnn-548091fc9b7fb85a.d: crates/dnn/src/lib.rs crates/dnn/src/data.rs crates/dnn/src/layer.rs crates/dnn/src/network.rs crates/dnn/src/rnn.rs crates/dnn/src/tensor.rs crates/dnn/src/train.rs crates/dnn/src/zoo.rs

/root/repo/target/debug/deps/maxnvm_dnn-548091fc9b7fb85a: crates/dnn/src/lib.rs crates/dnn/src/data.rs crates/dnn/src/layer.rs crates/dnn/src/network.rs crates/dnn/src/rnn.rs crates/dnn/src/tensor.rs crates/dnn/src/train.rs crates/dnn/src/zoo.rs

crates/dnn/src/lib.rs:
crates/dnn/src/data.rs:
crates/dnn/src/layer.rs:
crates/dnn/src/network.rs:
crates/dnn/src/rnn.rs:
crates/dnn/src/tensor.rs:
crates/dnn/src/train.rs:
crates/dnn/src/zoo.rs:
