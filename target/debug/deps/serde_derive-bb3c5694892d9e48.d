/root/repo/target/debug/deps/serde_derive-bb3c5694892d9e48.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-bb3c5694892d9e48.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
