/root/repo/target/debug/deps/fig8-353848832f0c7dbe.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-353848832f0c7dbe: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
