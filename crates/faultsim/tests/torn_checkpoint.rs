//! Torn-checkpoint robustness: a snapshot truncated at *every* byte
//! boundary (simulating a tear that beat the atomic rename — a crashed
//! foreign writer, a corrupted disk) must either parse back whole or
//! fail with a typed `CheckpointParse`/`CheckpointIo` — never a panic,
//! and never a silently-wrong trial count surviving into a resumed
//! result.

use maxnvm_dnn::zoo;
use maxnvm_encoding::cluster::ClusteredLayer;
use maxnvm_encoding::storage::{StorageScheme, StoredLayer};
use maxnvm_encoding::EncodingKind;
use maxnvm_envm::{CellTechnology, MlcConfig, SenseAmp};
use maxnvm_faultsim::{
    Campaign, CampaignCheckpoint, CampaignResult, CheckpointConfig, EngineError, ProxyEval,
    RunControl,
};
use proptest::prelude::*;
use std::path::PathBuf;

const TECH: CellTechnology = CellTechnology::MlcCtt;

fn fixture() -> (StoredLayer, ProxyEval) {
    let spec = zoo::vgg12();
    let m = spec.layers[4].sample_matrix(spec.paper.sparsity, 17, 48, 96);
    let c = ClusteredLayer::from_matrix(&m, 4, 5);
    let stored = StoredLayer::store(
        &c,
        &StorageScheme::uniform(EncodingKind::Csr, MlcConfig::MLC3),
    );
    let eval = ProxyEval::new(vec![c.reconstruct()], 0.1, 0.9);
    (stored, eval)
}

fn campaign() -> Campaign {
    Campaign {
        trials: 10,
        seed: 31,
        rate_scale: 120.0,
    }
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("maxnvm-torn-checkpoint-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{name}-{}.ckpt", std::process::id()))
}

/// A complete, verified snapshot of the fixture campaign, as text.
fn complete_snapshot_text() -> String {
    let (stored, eval) = fixture();
    let ckpt = temp_path("source");
    let _ = std::fs::remove_file(&ckpt);
    let control = RunControl {
        checkpoint: Some(CheckpointConfig::new(&ckpt).every(1).keep_on_success()),
        ..RunControl::default()
    };
    campaign()
        .run_controlled(
            std::slice::from_ref(&stored),
            TECH,
            &SenseAmp::paper_default(),
            &eval,
            &control,
        )
        .expect("checkpointed run");
    let text = std::fs::read_to_string(&ckpt).expect("read snapshot");
    let _ = std::fs::remove_file(&ckpt);
    text
}

#[test]
fn every_byte_boundary_truncation_parses_typed_or_whole() {
    let text = complete_snapshot_text();
    assert!(text.is_ascii(), "byte boundaries must be char boundaries");
    assert!(text.len() > 100, "fixture snapshot suspiciously small");
    let full = CampaignCheckpoint::from_text(&text).expect("the whole snapshot parses");
    let recorded = full.entries.len();
    assert_eq!(recorded, campaign().trials, "fixture records every trial");
    for cut in 0..=text.len() {
        match CampaignCheckpoint::from_text(&text[..cut]) {
            // A prefix that parses must carry an internally consistent
            // trial set — the `end <count>` trailer guards exactly this.
            Ok(snapshot) => assert_eq!(
                snapshot.entries.len(),
                recorded,
                "cut at byte {cut} of {} parsed with a wrong trial count",
                text.len()
            ),
            Err(EngineError::CheckpointParse { .. }) => {}
            Err(other) => panic!("cut at byte {cut}: unexpected error {other}"),
        }
    }
}

#[test]
fn resume_from_any_truncation_is_typed_or_byte_identical() {
    // Through the engine's actual resume path: every truncation either
    // resumes to the uninterrupted bytes (only a whole file can) or is
    // a typed checkpoint error — sampled at every 37th boundary plus
    // both ends to keep the end-to-end arm fast.
    let (stored, eval) = fixture();
    let truth: CampaignResult = campaign()
        .run(
            std::slice::from_ref(&stored),
            TECH,
            &SenseAmp::paper_default(),
            &eval,
        )
        .expect("uninterrupted run");
    let text = complete_snapshot_text();
    let ckpt = temp_path("resume");
    let cuts = (0..=text.len())
        .step_by(37)
        .chain([text.len() - 1, text.len()]);
    for cut in cuts {
        std::fs::write(&ckpt, &text.as_bytes()[..cut]).expect("write truncated");
        let outcome = campaign().resume_from(
            &ckpt,
            std::slice::from_ref(&stored),
            TECH,
            &SenseAmp::paper_default(),
            &eval,
            &RunControl::default(),
        );
        match outcome {
            Ok(resumed) => assert_eq!(resumed, truth, "cut at byte {cut}"),
            Err(EngineError::CheckpointParse { .. }) | Err(EngineError::CheckpointIo { .. }) => {}
            Err(other) => panic!("cut at byte {cut}: unexpected error {other}"),
        }
    }
    let _ = std::fs::remove_file(&ckpt);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary tears — a truncation, optionally followed by trailing
    /// garbage bytes (a torn write over a longer stale file) — never
    /// panic the parser and never produce a wrong trial count.
    #[test]
    fn random_tears_and_garbage_tails_stay_typed(
        cut_frac in 0.0f64..1.0,
        garbage in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let text = complete_snapshot_text();
        let cut = ((text.len() as f64) * cut_frac) as usize;
        let mut bytes = text.as_bytes()[..cut.min(text.len())].to_vec();
        bytes.extend_from_slice(&garbage);
        let torn = String::from_utf8_lossy(&bytes).into_owned();
        match CampaignCheckpoint::from_text(&torn) {
            Ok(snapshot) => prop_assert_eq!(snapshot.entries.len(), campaign().trials),
            Err(EngineError::CheckpointParse { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error {}", other),
        }
    }
}
