/root/repo/target/debug/deps/ablation_invariants-0fdb39ff15609b92.d: tests/ablation_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libablation_invariants-0fdb39ff15609b92.rmeta: tests/ablation_invariants.rs Cargo.toml

tests/ablation_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
