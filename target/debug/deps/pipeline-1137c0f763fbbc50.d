/root/repo/target/debug/deps/pipeline-1137c0f763fbbc50.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-1137c0f763fbbc50: tests/pipeline.rs

tests/pipeline.rs:
