//! Monte-Carlo injection campaigns: repeat (inject → decode → evaluate)
//! over many seeded trials and aggregate, exactly the Ares flow of §4.1.
//!
//! The heavy lifting lives in [`crate::engine`]: `Campaign` is the
//! serializable configuration, and its `run*` methods build a transient
//! [`EvalContext`] on the process-wide worker pool. The pre-engine
//! scoped-thread implementation is retained as
//! [`Campaign::run_reference`] for parity tests and benchmarks.

use crate::engine::{EngineError, EvalContext};
use crate::evaluate::AccuracyEval;
use maxnvm_encoding::storage::{DecodeStats, StoredLayer};
use maxnvm_encoding::StructureKind;
use maxnvm_envm::{CellTechnology, FaultMap, MlcConfig, SenseAmp};
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Campaign configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Campaign {
    /// Number of independent trials (unique fault maps, §4.1).
    pub trials: usize,
    /// Base RNG seed; trial `t` uses `seed + t`.
    pub seed: u64,
    /// Multiplier on every per-cell fault rate. Leave at 1.0 for faithful
    /// rates; small stand-in models use >1 so their *expected fault
    /// counts per structure* match a full-size deployment (the stand-ins
    /// have 100-1000x fewer cells than the paper's models).
    pub rate_scale: f64,
}

impl Default for Campaign {
    fn default() -> Self {
        Self {
            trials: 20,
            seed: 0,
            rate_scale: 1.0,
        }
    }
}

/// Aggregated campaign outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Per-trial classification error.
    pub errors: Vec<f64>,
    /// Mean classification error over trials.
    pub mean_error: f64,
    /// Worst trial.
    pub max_error: f64,
    /// Mean injected cell faults per trial.
    pub mean_cell_faults: f64,
    /// Exact expected cell faults per trial (sum of per-cell fault
    /// probabilities over every stored structure's level histogram).
    /// Engine-run campaigns report it; the pre-engine reference arm
    /// leaves it at `0.0`.
    pub expected_cell_faults: f64,
    /// Mean ECC-corrected codewords per trial.
    pub mean_ecc_corrected: f64,
    /// Mean uncorrectable codewords per trial.
    pub mean_ecc_uncorrectable: f64,
}

impl CampaignResult {
    pub(crate) fn from_trials(trials: Vec<(f64, DecodeStats)>) -> Self {
        let n = trials.len().max(1) as f64;
        let errors: Vec<f64> = trials.iter().map(|(e, _)| *e).collect();
        let mean_error = errors.iter().sum::<f64>() / n;
        let max_error = errors.iter().cloned().fold(0.0, f64::max);
        let mean_cell_faults = trials
            .iter()
            .map(|(_, s)| s.cell_faults as f64)
            .sum::<f64>()
            / n;
        let mean_ecc_corrected = trials
            .iter()
            .map(|(_, s)| s.ecc_corrected as f64)
            .sum::<f64>()
            / n;
        let mean_ecc_uncorrectable = trials
            .iter()
            .map(|(_, s)| s.ecc_uncorrectable as f64)
            .sum::<f64>()
            / n;
        Self {
            errors,
            mean_error,
            max_error,
            mean_cell_faults,
            expected_cell_faults: 0.0,
            mean_ecc_corrected,
            mean_ecc_uncorrectable,
        }
    }

    /// Attaches the analytically exact expected fault count per trial
    /// (from [`maxnvm_envm::FaultInjector::expected_faults_exact`]).
    pub(crate) fn with_expected_faults(mut self, expected: f64) -> Self {
        self.expected_cell_faults = expected;
        self
    }

    /// Whether the mean error stays within `bound` of `baseline` — the
    /// paper's iso-training-noise acceptance test (§3.1.1).
    pub fn within_itn(&self, baseline: f64, bound: f64) -> bool {
        self.mean_error <= baseline + bound
    }
}

/// Builds the per-bits-per-cell fault maps for a technology (including the
/// sense-amp offset, §2.3). The maps are built once and handed out by
/// `Arc`, so a hot per-cell lookup loop never copies probability tables.
pub fn fault_maps(tech: CellTechnology, sa: &SenseAmp) -> impl Fn(MlcConfig) -> Arc<FaultMap> + '_ {
    let maps: Vec<Arc<FaultMap>> = (1..=3u8)
        .map(|b| {
            let cfg = MlcConfig::new(b).expect("valid bits");
            Arc::new(if b <= tech.max_bits_per_cell() {
                tech.cell_model(cfg).with_sense_amp(sa).fault_map()
            } else {
                FaultMap::perfect(cfg.levels())
            })
        })
        .collect();
    move |cfg: MlcConfig| Arc::clone(&maps[(cfg.bits() - 1) as usize])
}

impl Campaign {
    /// Runs the full campaign: all structures of every layer are injected
    /// each trial. Trials run in parallel on the engine's worker pool;
    /// results are deterministic per seed at any worker count.
    ///
    /// Errors with [`EngineError::InvalidRateScale`] if `rate_scale` is
    /// not a positive finite number.
    pub fn run(
        &self,
        stored: &[StoredLayer],
        tech: CellTechnology,
        sa: &SenseAmp,
        eval: &(dyn AccuracyEval + Sync),
    ) -> Result<CampaignResult, EngineError> {
        let ctx = EvalContext::new(tech, sa, self.rate_scale)?;
        Ok(ctx.run_campaign(self.trials, self.seed, stored, eval))
    }

    /// Runs a campaign injecting faults *only* into structures of `target`
    /// kind (others stored perfectly) — Fig. 5's isolation methodology.
    pub fn run_isolated(
        &self,
        stored: &[StoredLayer],
        target: StructureKind,
        tech: CellTechnology,
        sa: &SenseAmp,
        eval: &(dyn AccuracyEval + Sync),
    ) -> Result<CampaignResult, EngineError> {
        let ctx = EvalContext::new(tech, sa, self.rate_scale)?;
        Ok(ctx.run_isolated(self.trials, self.seed, target, stored, eval))
    }

    /// Runs the campaign with the paper's exact chip semantics: each
    /// trial *programs a chip instance* (every cell's analog outcome drawn
    /// once from its level distribution, §4.1) and decodes it
    /// deterministically. Statistically this matches [`Campaign::run`] for
    /// single decodes, but it also produces the rare non-adjacent misreads
    /// and models faults as permanent.
    ///
    /// Errors with [`EngineError::ChipRateScale`] if `rate_scale != 1.0`
    /// — analog programming outcomes cannot be rate-scaled; use the
    /// fault-map path for scaled studies.
    pub fn run_chips(
        &self,
        stored: &[StoredLayer],
        tech: CellTechnology,
        sa: &SenseAmp,
        eval: &(dyn AccuracyEval + Sync),
    ) -> Result<CampaignResult, EngineError> {
        if (self.rate_scale - 1.0).abs() > 1e-12 {
            return Err(EngineError::ChipRateScale(self.rate_scale));
        }
        let ctx = EvalContext::new(tech, sa, self.rate_scale)?;
        ctx.run_chips(self.trials, self.seed, stored, eval)
    }

    /// The pre-engine implementation: scoped threads spawned per call,
    /// hard-capped at eight, fault maps rebuilt (and re-scaled per
    /// lookup) on every thread, and every trial paying a full per-cell
    /// inject + decode pass. Retained unchanged as the reference arm for
    /// parity tests and the speedup benchmark. [`Campaign::run`] now
    /// samples faults sparsely (a different RNG stream with the same
    /// per-cell marginals), so the two arms agree statistically rather
    /// than bit for bit.
    pub fn run_reference(
        &self,
        stored: &[StoredLayer],
        tech: CellTechnology,
        sa: &SenseAmp,
        eval: &(dyn AccuracyEval + Sync),
    ) -> CampaignResult {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(self.trials.max(1))
            .min(8);
        let mut results: Vec<(f64, DecodeStats)> = Vec::with_capacity(self.trials);
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let trial_ids: Vec<usize> = (0..self.trials).filter(|i| i % threads == t).collect();
                let seed = self.seed;
                let rate_scale = self.rate_scale;
                handles.push(scope.spawn(move |_| {
                    let base_maps = fault_maps(tech, sa);
                    let fault_for =
                        move |cfg: MlcConfig| Arc::new(base_maps(cfg).scaled(rate_scale));
                    let mut out = Vec::with_capacity(trial_ids.len());
                    for trial in trial_ids {
                        let mut rng =
                            rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(trial as u64));
                        let mut stats = DecodeStats::default();
                        let mats: Vec<_> = stored
                            .iter()
                            .map(|layer| {
                                let (m, s) = layer.decode_with_faults(&fault_for, &mut rng);
                                stats.absorb(s);
                                m
                            })
                            .collect();
                        out.push((trial, eval.eval(&mats), stats));
                    }
                    out
                }));
            }
            let mut all: Vec<(usize, f64, DecodeStats)> = handles
                .into_iter()
                .flat_map(|h| h.join().expect("trial thread panicked"))
                .collect();
            all.sort_by_key(|(t, _, _)| *t);
            results = all.into_iter().map(|(_, e, s)| (e, s)).collect();
        })
        .expect("campaign scope");
        CampaignResult::from_trials(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::ProxyEval;
    use maxnvm_dnn::network::LayerMatrix;
    use maxnvm_encoding::cluster::ClusteredLayer;
    use maxnvm_encoding::storage::StorageScheme;
    use maxnvm_encoding::EncodingKind;
    use rand::Rng;

    fn stored_layer(scale: f64, bpc: MlcConfig) -> (ClusteredLayer, StoredLayer) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let data: Vec<f32> = (0..64 * 128)
            .map(|_| {
                if rng.gen::<f64>() < 0.5 {
                    0.0
                } else {
                    rng.gen::<f32>() + 0.1
                }
            })
            .collect();
        let m = LayerMatrix::new("l", 64, 128, data);
        let c = ClusteredLayer::from_matrix(&m, 4, 3);
        let stored = StoredLayer::store(&c, &StorageScheme::uniform(EncodingKind::BitMask, bpc));
        let _ = scale;
        (c, stored)
    }

    #[test]
    fn zero_fault_technology_reproduces_baseline() {
        let (c, stored) = stored_layer(1.0, MlcConfig::SLC);
        let eval = ProxyEval::new(vec![c.reconstruct()], 0.05, 0.9);
        // SLC RRAM fault rates are below 1e-10: effectively no faults.
        let result = Campaign {
            trials: 5,
            seed: 1,
            rate_scale: 1.0,
        }
        .run(
            std::slice::from_ref(&stored),
            CellTechnology::SlcRram,
            &SenseAmp::paper_default(),
            &eval,
        )
        .expect("campaign");
        assert!((result.mean_error - 0.05).abs() < 1e-9);
        assert_eq!(result.mean_cell_faults, 0.0);
    }

    #[test]
    fn mlc3_bitmask_without_protection_raises_error() {
        // Mask faults propagate: a campaign on an unprotected MLC3 bitmask
        // layer must show error above baseline. RRAM MLC3 mean rate ~1e-5;
        // ~2700 mask cells -> use many trials and check the mean moved.
        let (c, stored) = stored_layer(1.0, MlcConfig::MLC3);
        let eval = ProxyEval::new(vec![c.reconstruct()], 0.05, 0.9);
        let result = Campaign {
            trials: 60,
            seed: 2,
            rate_scale: 1.0,
        }
        .run(
            std::slice::from_ref(&stored),
            CellTechnology::MlcRram,
            &SenseAmp::paper_default(),
            &eval,
        )
        .expect("campaign");
        // With per-cell rates ~1e-5 and ~15k cells total, a fair share of
        // trials see at least one fault; the worst trial must degrade.
        assert!(result.mean_cell_faults > 0.0, "no faults injected");
        assert!(result.max_error > 0.05, "max {}", result.max_error);
    }

    #[test]
    fn results_are_deterministic_per_seed() {
        let (c, stored) = stored_layer(1.0, MlcConfig::MLC3);
        let eval = ProxyEval::new(vec![c.reconstruct()], 0.05, 0.9);
        let run = |seed| {
            Campaign {
                trials: 8,
                seed,
                rate_scale: 1.0,
            }
            .run(
                std::slice::from_ref(&stored),
                CellTechnology::MlcRram,
                &SenseAmp::paper_default(),
                &eval,
            )
            .expect("campaign")
        };
        let a = run(3);
        let b = run(3);
        assert_eq!(a.errors, b.errors);
    }

    #[test]
    fn engine_run_agrees_with_the_reference_implementation() {
        // The engine samples faults sparsely (geometric skips), drawing a
        // different RNG stream than the reference's per-cell injector, so
        // the arms agree statistically — same Binomial marginals — not
        // bitwise.
        let (c, stored) = stored_layer(1.0, MlcConfig::MLC3);
        let eval = ProxyEval::new(vec![c.reconstruct()], 0.05, 0.9);
        let campaign = Campaign {
            trials: 200,
            seed: 21,
            rate_scale: 40.0,
        };
        let engine = campaign
            .run(
                std::slice::from_ref(&stored),
                CellTechnology::MlcRram,
                &SenseAmp::paper_default(),
                &eval,
            )
            .expect("campaign");
        let reference = campaign.run_reference(
            std::slice::from_ref(&stored),
            CellTechnology::MlcRram,
            &SenseAmp::paper_default(),
            &eval,
        );
        assert_eq!(engine.errors.len(), reference.errors.len());
        // The engine reports the analytically exact expectation, and both
        // arms' empirical fault means must sit near it.
        assert!(
            engine.expected_cell_faults > 0.5,
            "{}",
            engine.expected_cell_faults
        );
        for (arm, mean) in [
            ("engine", engine.mean_cell_faults),
            ("reference", reference.mean_cell_faults),
        ] {
            let rel = (mean / engine.expected_cell_faults - 1.0).abs();
            assert!(
                rel < 0.25,
                "{arm} mean {mean} vs expected {} (rel {rel})",
                engine.expected_cell_faults
            );
        }
        assert!(
            (engine.mean_error - reference.mean_error).abs() < 0.1,
            "engine {} vs reference {}",
            engine.mean_error,
            reference.mean_error
        );
    }

    #[test]
    fn invalid_rate_scale_is_a_typed_error() {
        let (c, stored) = stored_layer(1.0, MlcConfig::SLC);
        let eval = ProxyEval::new(vec![c.reconstruct()], 0.05, 0.9);
        let err = Campaign {
            trials: 1,
            seed: 0,
            rate_scale: -3.0,
        }
        .run(
            std::slice::from_ref(&stored),
            CellTechnology::SlcRram,
            &SenseAmp::paper_default(),
            &eval,
        )
        .expect_err("negative rate_scale must be rejected");
        assert_eq!(err, EngineError::InvalidRateScale(-3.0));
    }

    #[test]
    fn chip_campaign_matches_fault_map_campaign_statistically() {
        // On an SLC layer both paths see (essentially) zero faults and
        // agree exactly; on MLC3 their mean fault counts must agree.
        let (c, stored) = stored_layer(1.0, MlcConfig::MLC3);
        let eval = ProxyEval::new(vec![c.reconstruct()], 0.05, 0.9);
        let campaign = Campaign {
            trials: 40,
            seed: 7,
            rate_scale: 1.0,
        };
        let maps = campaign
            .run(
                std::slice::from_ref(&stored),
                CellTechnology::MlcRram,
                &SenseAmp::paper_default(),
                &eval,
            )
            .expect("campaign");
        let chips = campaign
            .run_chips(
                std::slice::from_ref(&stored),
                CellTechnology::MlcRram,
                &SenseAmp::paper_default(),
                &eval,
            )
            .expect("chip campaign");
        // Expected faults per trial are fractions of a fault at these
        // rates; mean counts must be within a fault of each other.
        assert!(
            (maps.mean_cell_faults - chips.mean_cell_faults).abs() < 1.0,
            "maps {} vs chips {}",
            maps.mean_cell_faults,
            chips.mean_cell_faults
        );
    }

    #[test]
    fn chip_campaign_rejects_rate_scaling() {
        let (c, stored) = stored_layer(1.0, MlcConfig::SLC);
        let eval = ProxyEval::new(vec![c.reconstruct()], 0.05, 0.9);
        let err = Campaign {
            trials: 1,
            seed: 0,
            rate_scale: 2.0,
        }
        .run_chips(
            std::slice::from_ref(&stored),
            CellTechnology::SlcRram,
            &SenseAmp::paper_default(),
            &eval,
        )
        .expect_err("scaled chip campaign must be rejected");
        assert_eq!(err, EngineError::ChipRateScale(2.0));
    }

    #[test]
    fn within_itn_uses_mean() {
        let r = CampaignResult {
            errors: vec![0.1, 0.2],
            mean_error: 0.15,
            max_error: 0.2,
            mean_cell_faults: 0.0,
            expected_cell_faults: 0.0,
            mean_ecc_corrected: 0.0,
            mean_ecc_uncorrectable: 0.0,
        };
        assert!(r.within_itn(0.1, 0.06));
        assert!(!r.within_itn(0.1, 0.04));
    }

    #[test]
    fn isolated_run_only_faults_target() {
        let (c, stored) = stored_layer(1.0, MlcConfig::MLC3);
        let eval = ProxyEval::new(vec![c.reconstruct()], 0.05, 0.9);
        // Isolate the (tiny) sync-counter structure of a non-IdxSync
        // layer: it does not exist, so no faults at all.
        let result = Campaign {
            trials: 4,
            seed: 5,
            rate_scale: 1.0,
        }
        .run_isolated(
            std::slice::from_ref(&stored),
            StructureKind::SyncCounter,
            CellTechnology::MlcRram,
            &SenseAmp::paper_default(),
            &eval,
        )
        .expect("campaign");
        assert_eq!(result.mean_cell_faults, 0.0);
        assert!((result.mean_error - 0.05).abs() < 1e-9);
    }
}
