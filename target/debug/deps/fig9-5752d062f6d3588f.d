/root/repo/target/debug/deps/fig9-5752d062f6d3588f.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-5752d062f6d3588f: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
