/root/repo/target/debug/deps/maxnvm_faultsim-6f5cb242fa4aec16.d: crates/faultsim/src/lib.rs crates/faultsim/src/analytic.rs crates/faultsim/src/campaign.rs crates/faultsim/src/dse.rs crates/faultsim/src/engine/mod.rs crates/faultsim/src/engine/error.rs crates/faultsim/src/engine/pool.rs crates/faultsim/src/evaluate.rs crates/faultsim/src/vulnerability.rs

/root/repo/target/debug/deps/libmaxnvm_faultsim-6f5cb242fa4aec16.rlib: crates/faultsim/src/lib.rs crates/faultsim/src/analytic.rs crates/faultsim/src/campaign.rs crates/faultsim/src/dse.rs crates/faultsim/src/engine/mod.rs crates/faultsim/src/engine/error.rs crates/faultsim/src/engine/pool.rs crates/faultsim/src/evaluate.rs crates/faultsim/src/vulnerability.rs

/root/repo/target/debug/deps/libmaxnvm_faultsim-6f5cb242fa4aec16.rmeta: crates/faultsim/src/lib.rs crates/faultsim/src/analytic.rs crates/faultsim/src/campaign.rs crates/faultsim/src/dse.rs crates/faultsim/src/engine/mod.rs crates/faultsim/src/engine/error.rs crates/faultsim/src/engine/pool.rs crates/faultsim/src/evaluate.rs crates/faultsim/src/vulnerability.rs

crates/faultsim/src/lib.rs:
crates/faultsim/src/analytic.rs:
crates/faultsim/src/campaign.rs:
crates/faultsim/src/dse.rs:
crates/faultsim/src/engine/mod.rs:
crates/faultsim/src/engine/error.rs:
crates/faultsim/src/engine/pool.rs:
crates/faultsim/src/evaluate.rs:
crates/faultsim/src/vulnerability.rs:
