//! Regenerates paper Table 1: characterization of published non-volatile
//! memory chips.

use maxnvm_envm::reference::table1_chips;

fn main() {
    println!("Table 1: Characterization of different non-volatile memory chips");
    println!(
        "{:<6} {:<8} {:<8} {:<10} {:>10} {:>10} {:>12} {:>12} {:>20}",
        "Ref", "Type", "Node", "Access", "Cell(F2)", "Capacity", "Area(mm2)", "Read", "Write"
    );
    for c in table1_chips() {
        let cap = {
            let bits = c.capacity_bits as f64;
            if bits >= 8.0 * 1024.0 * 1024.0 * 1024.0 {
                format!("{:.0}Gb", bits / (1024.0 * 1024.0 * 1024.0))
            } else {
                format!("{:.1}Mb", bits / (1024.0 * 1024.0))
            }
        };
        let fmt_ns = |ns: f64| {
            if ns >= 1000.0 {
                format!("{:.0}us", ns / 1000.0)
            } else {
                format!("{ns:.1}ns")
            }
        };
        println!(
            "{:<6} {:<8} {:<8} {:<10} {:>10} {:>10} {:>12} {:>12} {:>20}",
            c.reference,
            format!("{:?}", c.kind),
            format!("{:.0}nm", c.node_nm),
            format!("{:?}", c.access),
            c.cell_area_f2.map_or("-".into(), |a| format!("{a:.0}")),
            cap,
            c.macro_area_mm2.map_or("-".into(), |a| format!("{a:.3}")),
            c.read_latency_ns.map_or("-".into(), fmt_ns),
            c.write_latency_ns.map_or("-".into(), |(lo, hi)| {
                if lo == hi {
                    fmt_ns(lo)
                } else {
                    format!("{} - {}", fmt_ns(lo), fmt_ns(hi))
                }
            }),
        );
    }
}
