/root/repo/target/debug/deps/maxnvm_bench-5d093ccf15731b2e.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmaxnvm_bench-5d093ccf15731b2e.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
