/root/repo/target/debug/deps/maxnvm_ecc-fb1c86702558c8df.d: crates/ecc/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmaxnvm_ecc-fb1c86702558c8df.rmeta: crates/ecc/src/lib.rs Cargo.toml

crates/ecc/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
