/root/repo/target/debug/deps/pipeline-7bb191d2bcaa3034.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-7bb191d2bcaa3034: tests/pipeline.rs

tests/pipeline.rs:
