/root/repo/target/debug/deps/fig6-1dbe65edd3bd6e38.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-1dbe65edd3bd6e38: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
