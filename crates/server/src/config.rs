//! Supervisor policy knobs and their environment overrides.

use maxnvm_faultsim::checkpoint::{CheckpointStore, FsStore, RetryPolicy};
use maxnvm_faultsim::EngineError;
use std::path::PathBuf;
use std::sync::{Arc, Once};
use std::time::Duration;

/// Environment variable overriding the per-stream watchdog deadline, in
/// whole seconds.
pub const WATCHDOG_ENV: &str = "MAXNVM_WATCHDOG_SECS";

/// Watchdog deadline when `MAXNVM_WATCHDOG_SECS` is unset: a stream
/// that makes no progress — no evaluator call and no checkpoint-store
/// I/O attempt — for this long is cancelled-and-quarantined. The
/// default comfortably exceeds the worst single silent gap a healthy
/// stream can produce: one capped retry backoff
/// (`RETRY_BASE_DELAY · 2¹⁰` ≈ 10 s) plus the I/O attempt around it.
/// An override must also cover a stream's pre-first-eval setup
/// (snapshot parse, fault-map build), which only the spawn timestamp
/// covers.
pub const DEFAULT_WATCHDOG: Duration = Duration::from_secs(30);

/// Parses a `MAXNVM_WATCHDOG_SECS` override: a positive integer number
/// of seconds. Anything else is a typed
/// [`EngineError::InvalidConfig`], never a silent default.
pub fn parse_watchdog_secs(raw: &str) -> Result<Duration, EngineError> {
    match raw.trim().parse::<u64>() {
        Ok(n) if n > 0 => Ok(Duration::from_secs(n)),
        _ => Err(EngineError::InvalidConfig {
            var: WATCHDOG_ENV.to_string(),
            value: raw.to_string(),
        }),
    }
}

/// The validated watchdog override from the environment: `Ok(None)`
/// when `MAXNVM_WATCHDOG_SECS` is unset,
/// [`EngineError::InvalidConfig`] when it is set but malformed.
pub fn env_watchdog_secs() -> Result<Option<Duration>, EngineError> {
    match std::env::var(WATCHDOG_ENV) {
        Ok(raw) => parse_watchdog_secs(&raw).map(Some),
        Err(_) => Ok(None),
    }
}

/// The watchdog deadline from the environment when valid, otherwise
/// [`DEFAULT_WATCHDOG`]. A malformed override cannot be reported here,
/// so it falls back with a one-time warning;
/// [`crate::Supervisor::start`] surfaces the typed error at the API
/// boundary.
fn default_watchdog() -> Duration {
    match env_watchdog_secs() {
        Ok(Some(d)) => d,
        Ok(None) => DEFAULT_WATCHDOG,
        Err(e) => {
            static WARN_ONCE: Once = Once::new();
            WARN_ONCE.call_once(|| {
                eprintln!(
                    "maxnvm: warning: {e}; falling back to {}s watchdog",
                    DEFAULT_WATCHDOG.as_secs()
                );
            });
            DEFAULT_WATCHDOG
        }
    }
}

/// Everything a [`crate::Supervisor`] is parameterized by. Build with
/// [`SupervisorConfig::new`] and override per field; validation of the
/// environment overrides happens in [`crate::Supervisor::start`].
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Directory holding one `<stream-id>.ckpt` spool file per stream.
    pub spool_dir: PathBuf,
    /// Streams running concurrently (each on the shared engine pool).
    pub max_running: usize,
    /// Hard cap on streams in flight (queued + running); admission
    /// beyond it is [`crate::Rejected::QueueFull`].
    pub max_inflight: usize,
    /// Per-stream watchdog: no progress (evaluator calls and
    /// checkpoint-store I/O attempts both count) for this long
    /// cancels-and-quarantines the stream. Must exceed the longest
    /// single retry backoff and the stream's pre-first-eval setup; see
    /// [`DEFAULT_WATCHDOG`]. Default honours `MAXNVM_WATCHDOG_SECS`.
    pub watchdog: Duration,
    /// Event-loop tick (watchdog scan cadence, and the upper bound on
    /// how stale a watchdog decision can be).
    pub tick: Duration,
    /// Checkpoint flush cadence per stream, in completed trials.
    pub checkpoint_every: usize,
    /// How long shutdown waits for stalled (quarantined) jobs before
    /// detaching their threads.
    pub shutdown_grace: Duration,
    /// The checkpoint backend every stream spools through (default: the
    /// real [`FsStore`]; the fault-injection suite swaps in a
    /// [`maxnvm_faultsim::FaultyStore`]).
    pub store: Arc<dyn CheckpointStore>,
    /// Retry policy for each stream's checkpoint I/O. Default honours
    /// `MAXNVM_CHECKPOINT_RETRIES`.
    pub retry: RetryPolicy,
}

impl SupervisorConfig {
    /// Defaults: 2 concurrent streams, 64 in flight, environment-driven
    /// watchdog and retry budget, 25 ms tick, checkpoint every 8
    /// trials, 5 s shutdown grace, real filesystem store.
    pub fn new(spool_dir: impl Into<PathBuf>) -> Self {
        Self {
            spool_dir: spool_dir.into(),
            max_running: 2,
            max_inflight: 64,
            watchdog: default_watchdog(),
            tick: Duration::from_millis(25),
            checkpoint_every: 8,
            shutdown_grace: Duration::from_secs(5),
            store: Arc::new(FsStore),
            retry: RetryPolicy::from_env(),
        }
    }

    /// Sets the concurrent-stream count (clamped to ≥ 1).
    pub fn max_running(mut self, n: usize) -> Self {
        self.max_running = n.max(1);
        self
    }

    /// Sets the in-flight bound (clamped to ≥ 1).
    pub fn max_inflight(mut self, n: usize) -> Self {
        self.max_inflight = n.max(1);
        self
    }

    /// Sets the watchdog deadline.
    pub fn watchdog(mut self, d: Duration) -> Self {
        self.watchdog = d;
        self
    }

    /// Sets the checkpoint flush cadence (clamped to ≥ 1).
    pub fn checkpoint_every(mut self, trials: usize) -> Self {
        self.checkpoint_every = trials.max(1);
        self
    }

    /// Routes every stream's checkpoint I/O through `store`.
    pub fn with_store(mut self, store: Arc<dyn CheckpointStore>) -> Self {
        self.store = store;
        self
    }

    /// Overrides the checkpoint retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watchdog_overrides_parse_strictly() {
        assert_eq!(parse_watchdog_secs("5").ok(), Some(Duration::from_secs(5)));
        assert_eq!(
            parse_watchdog_secs(" 120 ").ok(),
            Some(Duration::from_secs(120))
        );
        for bad in ["0", "-3", "", "  ", "fast", "1.5", "30s"] {
            let err = parse_watchdog_secs(bad).expect_err(bad);
            assert_eq!(
                err,
                EngineError::InvalidConfig {
                    var: WATCHDOG_ENV.to_string(),
                    value: bad.to_string(),
                },
                "{bad:?}"
            );
        }
    }

    #[test]
    fn builder_clamps_degenerate_values() {
        let cfg = SupervisorConfig::new("/tmp/spool")
            .max_running(0)
            .max_inflight(0)
            .checkpoint_every(0);
        assert_eq!(cfg.max_running, 1);
        assert_eq!(cfg.max_inflight, 1);
        assert_eq!(cfg.checkpoint_every, 1);
    }
}
