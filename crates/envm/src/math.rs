//! Numerical helpers: complementary error function, Gaussian tails, and a
//! Box–Muller normal sampler (keeps the dependency set to plain `rand`).

use rand::Rng;

/// Complementary error function.
///
/// Uses the Chebyshev-fitted rational approximation from *Numerical
/// Recipes*, which has a **fractional** error below `1.2e-7` for all `x` —
/// crucially the error is relative, so deep-tail probabilities (the paper
/// quotes non-adjacent misread rates down to `1.5e-10`) remain accurate.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function, `erf(x) = 1 - erfc(x)`.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Standard normal upper-tail probability `Q(z) = P(X > z)` for `X ~ N(0,1)`.
pub fn q_function(z: f64) -> f64 {
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

/// Standard normal CDF `Φ(z)`.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Draws a standard normal sample via the Box–Muller transform.
///
/// Implemented locally so the crate only depends on `rand` (not
/// `rand_distr`).
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Rejection-free polar-less form; u1 in (0,1] avoids ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws from `N(mean, sigma^2)`.
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    mean + sigma * sample_standard_normal(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn erfc_reference_values() {
        // Reference values from standard tables.
        let cases = [
            (0.0, 1.0),
            (0.5, 0.479_500_122),
            (1.0, 0.157_299_207),
            (2.0, 0.004_677_735),
            (3.0, 2.209_049_7e-5),
        ];
        for (x, want) in cases {
            let got = erfc(x);
            assert!(
                ((got - want) / want).abs() < 1e-5,
                "erfc({x}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn erfc_deep_tail_relative_accuracy() {
        // erfc(5) = 1.537459794e-12: the approximation's error is relative,
        // so the tail value must be right to ~1e-6 relative.
        let got = erfc(5.0);
        let want = 1.537_459_794e-12;
        assert!(((got - want) / want).abs() < 1e-5, "erfc(5) = {got}");
    }

    #[test]
    fn erfc_negative_symmetry() {
        for x in [0.1, 0.7, 1.5, 3.0] {
            let s = erfc(-x) + erfc(x);
            assert!((s - 2.0).abs() < 1e-12, "erfc symmetry at {x}: {s}");
        }
    }

    #[test]
    fn q_function_known_points() {
        // Q(0)=0.5, Q(1.2816)≈0.1, Q(3.0902)≈1e-3, Q(4.2649)≈1e-5.
        // The erfc approximation has ~1.2e-7 fractional error, so
        // tolerances are relative to each value's magnitude.
        assert!((q_function(0.0) - 0.5).abs() < 1e-7);
        assert!((q_function(1.2816) - 0.1).abs() < 1e-4);
        assert!((q_function(3.0902) - 1e-3).abs() < 1e-6);
        assert!((q_function(4.2649) - 1e-5).abs() < 2e-8);
    }

    #[test]
    fn normal_cdf_complements_q() {
        for z in [-2.5, -0.3, 0.0, 0.9, 3.3] {
            assert!((normal_cdf(z) + q_function(z) - 1.0).abs() < 1e-7);
        }
    }

    #[test]
    fn box_muller_moments() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.02, "var = {var}");
    }

    #[test]
    fn scaled_normal_sampling() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_normal(&mut rng, 3.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.01, "mean = {mean}");
    }
}
