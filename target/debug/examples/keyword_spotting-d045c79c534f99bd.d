/root/repo/target/debug/examples/keyword_spotting-d045c79c534f99bd.d: examples/keyword_spotting.rs

/root/repo/target/debug/examples/keyword_spotting-d045c79c534f99bd: examples/keyword_spotting.rs

examples/keyword_spotting.rs:
