/root/repo/target/debug/deps/maxnvm_repro-fb3cf2d866e0f97b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmaxnvm_repro-fb3cf2d866e0f97b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
