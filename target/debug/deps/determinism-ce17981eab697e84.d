/root/repo/target/debug/deps/determinism-ce17981eab697e84.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-ce17981eab697e84: tests/determinism.rs

tests/determinism.rs:
