/root/repo/target/release/deps/maxnvm_ecc-3ecafd49f0345cfa.d: crates/ecc/src/lib.rs

/root/repo/target/release/deps/libmaxnvm_ecc-3ecafd49f0345cfa.rlib: crates/ecc/src/lib.rs

/root/repo/target/release/deps/libmaxnvm_ecc-3ecafd49f0345cfa.rmeta: crates/ecc/src/lib.rs

crates/ecc/src/lib.rs:
