//! Engine-parallel vs reference (pre-engine) design-space exploration.
//!
//! Both arms sweep the full MLC-CTT candidate space (105 schemes) over
//! the same layers. The reference arm explores schemes one at a time,
//! re-encoding every layer per scheme, injecting faults per cell, and
//! running each campaign on freshly spawned scoped threads capped at
//! eight; the engine arm shares raw encodes and clean decodes through
//! the `EncodeCache`, precomputes the fault maps once, samples faults
//! sparsely over `PreparedLayer`s, and flattens (scheme × trial) onto
//! the persistent worker pool. Schemes and cell counts match exactly
//! between the arms; errors agree statistically (the sparse sampler
//! draws a different RNG stream with the same per-cell marginals).

use criterion::{criterion_group, criterion_main, Criterion};
use maxnvm_dnn::zoo;
use maxnvm_encoding::cluster::ClusteredLayer;
use maxnvm_envm::{CellTechnology, SenseAmp};
use maxnvm_faultsim::dse::{explore_concrete, explore_concrete_reference};
use maxnvm_faultsim::evaluate::ProxyEval;
use maxnvm_faultsim::{Campaign, DseConfig};

fn fixture() -> (Vec<ClusteredLayer>, ProxyEval, DseConfig) {
    let spec = zoo::vgg12();
    let layers: Vec<ClusteredLayer> = [3usize, 5]
        .iter()
        .map(|&i| {
            let m = spec.layers[i].sample_matrix(spec.paper.sparsity, 23 + i as u64, 64, 256);
            ClusteredLayer::from_matrix(&m, 4, 5)
        })
        .collect();
    let reference = layers.iter().map(ClusteredLayer::reconstruct).collect();
    let eval = ProxyEval::new(reference, 0.1, 0.9);
    let cfg = DseConfig {
        campaign: Campaign {
            trials: 6,
            seed: 3,
            rate_scale: 120.0,
        },
        itn_bound: 0.02,
    };
    (layers, eval, cfg)
}

fn bench_dse(c: &mut Criterion) {
    let (layers, eval, cfg) = fixture();
    let sa = SenseAmp::paper_default();
    let tech = CellTechnology::MlcCtt;
    // Sanity: the deterministic outputs agree before we time the arms.
    let engine = explore_concrete(&layers, tech, &sa, &eval, &cfg).expect("dse");
    let reference = explore_concrete_reference(&layers, tech, &sa, &eval, &cfg);
    assert_eq!(engine.len(), reference.len(), "arms diverged");
    for (e, r) in engine.iter().zip(&reference) {
        assert_eq!(e.scheme, r.scheme, "arms diverged; timings are meaningless");
        assert_eq!(e.cells, r.cells, "arms diverged; timings are meaningless");
    }

    let mut group = c.benchmark_group("dse");
    group.sample_size(10);
    group.bench_function("reference_serial_sweep", |b| {
        b.iter(|| explore_concrete_reference(&layers, tech, &sa, &eval, &cfg))
    });
    group.bench_function("engine_parallel_sweep", |b| {
        b.iter(|| explore_concrete(&layers, tech, &sa, &eval, &cfg).expect("dse"))
    });
    group.finish();
}

criterion_group!(benches, bench_dse);
criterion_main!(benches);
