//! Compact bit-level buffers used by the MaxNVM encodings and ECC codecs.
//!
//! Sparse-encoded DNN weights are streams of fields whose widths are not
//! byte-aligned (4–7 bit cluster indices, per-cell level codes, Hamming
//! parity bits). [`BitBuffer`] is a minimal append-only bit vector with a
//! matching [`BitReader`] cursor; both are deliberately simple so that the
//! encoders in `maxnvm-encoding` stay easy to audit.
//!
//! # Examples
//!
//! ```
//! use maxnvm_bits::{BitBuffer, BitReader};
//!
//! let mut buf = BitBuffer::new();
//! buf.push_bits(0b101, 3);
//! buf.push_bits(0x7f, 7);
//! let mut rd = BitReader::new(&buf);
//! assert_eq!(rd.read_bits(3), Some(0b101));
//! assert_eq!(rd.read_bits(7), Some(0x7f));
//! assert_eq!(rd.read_bits(1), None);
//! ```

/// An append-only, LSB-first bit vector.
///
/// Bits are stored in 64-bit words; bit `i` of the logical stream lives at
/// word `i / 64`, bit position `i % 64`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct BitBuffer {
    words: Vec<u64>,
    len: usize,
}

impl BitBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with capacity for `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            words: Vec::with_capacity(bits.div_ceil(64)),
            len: 0,
        }
    }

    /// Creates a buffer of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends the low `width` bits of `value`, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or if `value` has bits set above `width`.
    pub fn push_bits(&mut self, value: u64, width: usize) {
        assert!(width <= 64, "width {width} exceeds 64");
        if width < 64 {
            assert!(
                value < (1u64 << width),
                "value {value:#x} does not fit in {width} bits"
            );
        }
        let mut remaining = width;
        let mut v = value;
        while remaining > 0 {
            let word = self.len / 64;
            let bit = self.len % 64;
            if word == self.words.len() {
                self.words.push(0);
            }
            let take = remaining.min(64 - bit);
            let mask = if take == 64 {
                u64::MAX
            } else {
                (1u64 << take) - 1
            };
            self.words[word] |= (v & mask) << bit;
            v = if take == 64 { 0 } else { v >> take };
            self.len += take;
            remaining -= take;
        }
    }

    /// Appends a single bit.
    pub fn push_bit(&mut self, bit: bool) {
        self.push_bits(bit as u64, 1);
    }

    /// Returns bit `index`, or `None` past the end.
    pub fn get(&self, index: usize) -> Option<bool> {
        if index >= self.len {
            return None;
        }
        Some((self.words[index / 64] >> (index % 64)) & 1 == 1)
    }

    /// Sets bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn set(&mut self, index: usize, bit: bool) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        let mask = 1u64 << (index % 64);
        if bit {
            self.words[index / 64] |= mask;
        } else {
            self.words[index / 64] &= !mask;
        }
    }

    /// Flips bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn toggle(&mut self, index: usize) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        self.words[index / 64] ^= 1u64 << (index % 64);
    }

    /// Reads the `width`-bit field starting at bit `start`, LSB first.
    ///
    /// Returns `None` if the field extends past the end of the buffer.
    pub fn read_at(&self, start: usize, width: usize) -> Option<u64> {
        assert!(width <= 64, "width {width} exceeds 64");
        if start + width > self.len {
            return None;
        }
        let mut out = 0u64;
        let mut got = 0usize;
        while got < width {
            let word = (start + got) / 64;
            let bit = (start + got) % 64;
            let take = (width - got).min(64 - bit);
            let mask = if take == 64 {
                u64::MAX
            } else {
                (1u64 << take) - 1
            };
            out |= ((self.words[word] >> bit) & mask) << got;
            got += take;
        }
        Some(out)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        // The tail word only holds valid bits below `len % 64`; push_bits
        // never writes above `len`, so summing full words is exact.
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterator over all bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        // Every index below `len` is in range, so the fallback is dead.
        (0..self.len).map(move |i| self.get(i).unwrap_or(false))
    }

    /// Serializes to little-endian bytes (final partial byte zero-padded).
    pub fn to_bytes(&self) -> Vec<u8> {
        let nbytes = self.len.div_ceil(8);
        let mut out = Vec::with_capacity(nbytes);
        for i in 0..nbytes {
            let word = self.words[i / 8];
            out.push((word >> ((i % 8) * 8)) as u8);
        }
        out
    }

    /// Rebuilds a buffer from bytes produced by [`BitBuffer::to_bytes`].
    ///
    /// `len` is the bit length (the byte slice may carry up to 7 pad bits).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is too short for `len` bits.
    pub fn from_bytes(bytes: &[u8], len: usize) -> Self {
        assert!(
            bytes.len() * 8 >= len,
            "byte slice too short for {len} bits"
        );
        let mut buf = Self::with_capacity(len);
        for i in 0..len {
            buf.push_bit((bytes[i / 8] >> (i % 8)) & 1 == 1);
        }
        buf
    }
}

impl FromIterator<bool> for BitBuffer {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut buf = BitBuffer::new();
        for b in iter {
            buf.push_bit(b);
        }
        buf
    }
}

impl Extend<bool> for BitBuffer {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for b in iter {
            self.push_bit(b);
        }
    }
}

/// A read cursor over a [`BitBuffer`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a BitBuffer,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader positioned at bit 0.
    pub fn new(buf: &'a BitBuffer) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current bit position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Moves the cursor to an absolute bit position.
    ///
    /// Positions past the end are allowed; subsequent reads return `None`.
    pub fn seek(&mut self, pos: usize) {
        self.pos = pos;
    }

    /// Bits remaining until the end of the buffer.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Reads the next `width`-bit field, advancing the cursor.
    ///
    /// Returns `None` (without advancing) if fewer than `width` bits remain.
    pub fn read_bits(&mut self, width: usize) -> Option<u64> {
        let v = self.buf.read_at(self.pos, width)?;
        self.pos += width;
        Some(v)
    }

    /// Reads a single bit.
    pub fn read_bit(&mut self) -> Option<bool> {
        self.read_bits(1).map(|v| v == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn push_and_get_single_bits() {
        let mut b = BitBuffer::new();
        b.push_bit(true);
        b.push_bit(false);
        b.push_bit(true);
        assert_eq!(b.len(), 3);
        assert_eq!(b.get(0), Some(true));
        assert_eq!(b.get(1), Some(false));
        assert_eq!(b.get(2), Some(true));
        assert_eq!(b.get(3), None);
    }

    #[test]
    fn push_bits_crossing_word_boundary() {
        let mut b = BitBuffer::new();
        b.push_bits(u64::MAX >> 4, 60);
        b.push_bits(0b1011, 4); // crosses the 64-bit word boundary
        b.push_bits(0xabcd, 16);
        assert_eq!(b.read_at(0, 60), Some(u64::MAX >> 4));
        assert_eq!(b.read_at(60, 4), Some(0b1011));
        assert_eq!(b.read_at(64, 16), Some(0xabcd));
    }

    #[test]
    fn push_full_64_bit_word() {
        let mut b = BitBuffer::new();
        b.push_bits(0xdead_beef_cafe_f00d, 64);
        assert_eq!(b.read_at(0, 64), Some(0xdead_beef_cafe_f00d));
        assert_eq!(b.len(), 64);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn push_bits_rejects_oversized_value() {
        BitBuffer::new().push_bits(0b100, 2);
    }

    #[test]
    fn zeros_and_set() {
        let mut b = BitBuffer::zeros(130);
        assert_eq!(b.len(), 130);
        assert_eq!(b.count_ones(), 0);
        b.set(129, true);
        b.set(0, true);
        assert_eq!(b.count_ones(), 2);
        b.set(0, false);
        assert_eq!(b.count_ones(), 1);
        assert_eq!(b.get(129), Some(true));
    }

    #[test]
    fn toggle_flips() {
        let mut b = BitBuffer::zeros(10);
        b.toggle(7);
        assert_eq!(b.get(7), Some(true));
        b.toggle(7);
        assert_eq!(b.get(7), Some(false));
    }

    #[test]
    fn reader_walks_fields() {
        let mut b = BitBuffer::new();
        for i in 0..100u64 {
            b.push_bits(i % 8, 3);
        }
        let mut r = BitReader::new(&b);
        for i in 0..100u64 {
            assert_eq!(r.read_bits(3), Some(i % 8));
        }
        assert_eq!(r.read_bits(3), None);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn reader_seek() {
        let mut b = BitBuffer::new();
        b.push_bits(0b110101, 6);
        let mut r = BitReader::new(&b);
        r.seek(2);
        assert_eq!(r.read_bits(4), Some(0b1101));
        r.seek(100);
        assert_eq!(r.read_bit(), None);
    }

    #[test]
    fn bytes_round_trip() {
        let mut b = BitBuffer::new();
        b.push_bits(0x1ff, 9);
        b.push_bits(0, 5);
        b.push_bits(0x3, 2);
        let bytes = b.to_bytes();
        assert_eq!(bytes.len(), 2);
        let back = BitBuffer::from_bytes(&bytes, b.len());
        assert_eq!(back, b);
    }

    #[test]
    fn from_iterator_collects() {
        let b: BitBuffer = [true, false, true, true].into_iter().collect();
        assert_eq!(b.len(), 4);
        assert_eq!(b.read_at(0, 4), Some(0b1101));
    }

    #[test]
    fn count_ones_ignores_padding() {
        let mut b = BitBuffer::new();
        b.push_bits(0b111, 3);
        assert_eq!(b.count_ones(), 3);
    }

    proptest! {
        #[test]
        fn prop_push_read_round_trip(fields in prop::collection::vec((any::<u64>(), 1usize..=64), 0..200)) {
            let mut b = BitBuffer::new();
            let mut expected = Vec::new();
            for (v, w) in &fields {
                let v = if *w == 64 { *v } else { v & ((1u64 << w) - 1) };
                b.push_bits(v, *w);
                expected.push((v, *w));
            }
            let mut r = BitReader::new(&b);
            for (v, w) in expected {
                prop_assert_eq!(r.read_bits(w), Some(v));
            }
            prop_assert_eq!(r.remaining(), 0);
        }

        #[test]
        fn prop_bytes_round_trip(bits in prop::collection::vec(any::<bool>(), 0..500)) {
            let b: BitBuffer = bits.iter().copied().collect();
            let back = BitBuffer::from_bytes(&b.to_bytes(), b.len());
            prop_assert_eq!(&back, &b);
            prop_assert_eq!(back.count_ones(), bits.iter().filter(|&&x| x).count());
        }

        #[test]
        fn prop_set_get(len in 1usize..300, idx_bits in prop::collection::vec((any::<prop::sample::Index>(), any::<bool>()), 0..50)) {
            let mut b = BitBuffer::zeros(len);
            let mut model = vec![false; len];
            for (idx, bit) in idx_bits {
                let i = idx.index(len);
                b.set(i, bit);
                model[i] = bit;
            }
            for (i, &m) in model.iter().enumerate() {
                prop_assert_eq!(b.get(i), Some(m));
            }
        }
    }
}
