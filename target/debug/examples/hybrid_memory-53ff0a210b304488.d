/root/repo/target/debug/examples/hybrid_memory-53ff0a210b304488.d: examples/hybrid_memory.rs

/root/repo/target/debug/examples/hybrid_memory-53ff0a210b304488: examples/hybrid_memory.rs

examples/hybrid_memory.rs:
