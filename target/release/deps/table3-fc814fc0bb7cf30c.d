/root/repo/target/release/deps/table3-fc814fc0bb7cf30c.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-fc814fc0bb7cf30c: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
