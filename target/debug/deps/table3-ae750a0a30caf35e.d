/root/repo/target/debug/deps/table3-ae750a0a30caf35e.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-ae750a0a30caf35e: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
