//! The §6 hybrid memory solution (Fig. 7c, Fig. 11): a fixed on-chip area
//! budget split between activation SRAM and weight eNVM, with DRAM taking
//! the overflow of both.
//!
//! The eNVM is *not* a cache: on-chip eNVM and DRAM hold mutually
//! exclusive weight sets, both feeding the datapath directly. Layers are
//! placed greedily, most-DRAM-bottlenecked first.

use crate::config::NvdlaConfig;
use crate::perf::{evaluate, layer_perf, SystemReport};
use crate::source::WeightSource;
use maxnvm_dnn::zoo::ModelSpec;
use maxnvm_envm::CellTechnology;
use maxnvm_nvsim::sram::SramMacro;
use maxnvm_nvsim::{characterize, ArrayDesign, ArrayRequest, NvsimError, OptTarget};
use serde::{Deserialize, Serialize};

/// One point of the Fig. 11 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HybridPoint {
    /// Fraction of the on-chip area budget given to eNVM.
    pub envm_fraction: f64,
    /// Resulting eNVM capacity (bits).
    pub envm_capacity_bits: u64,
    /// Layers whose weights were placed on-chip.
    pub layers_on_chip: usize,
    /// Full system evaluation at this split.
    pub report: SystemReport,
    /// FPS relative to the all-SRAM (fraction 0) baseline.
    pub relative_performance: f64,
    /// Energy per inference relative to the all-SRAM baseline.
    pub relative_energy: f64,
}

/// Largest eNVM macro (in cells) fitting within `area_mm2`, by scaling a
/// reference characterization and refining once (area is near-linear in
/// cells for fixed organization).
///
/// # Errors
///
/// Propagates [`NvsimError`] if the reference array cannot be
/// characterized.
pub fn capacity_cells_for_area(
    tech: CellTechnology,
    bits_per_cell: u8,
    area_mm2: f64,
) -> Result<u64, NvsimError> {
    assert!(area_mm2 > 0.0, "empty area budget");
    let ref_cells = 10_000_000u64;
    let reference = characterize(
        &ArrayRequest::new(tech, ref_cells, bits_per_cell),
        OptTarget::ReadEdp,
    )?;
    let mut cells = (ref_cells as f64 * area_mm2 / reference.area_mm2) as u64;
    // One refinement step against the actual (discrete) characterization.
    if cells > 0 {
        let d = characterize(
            &ArrayRequest::new(tech, cells, bits_per_cell),
            OptTarget::ReadEdp,
        )?;
        cells = (cells as f64 * area_mm2 / d.area_mm2) as u64;
    }
    Ok(cells)
}

/// Greedy placement: layers sorted by how badly they are DRAM-bottlenecked
/// (weight-fetch cycles minus their other bottleneck), filled while eNVM
/// capacity remains; the layer that exhausts the capacity is split across
/// eNVM and DRAM (§6: "selectively read certain weights from eNVM").
/// Returns the per-layer on-chip fraction.
pub fn greedy_placement(
    model: &ModelSpec,
    cfg: &NvdlaConfig,
    weight_bytes: &[u64],
    capacity_bits: u64,
) -> Vec<f64> {
    let sram_bytes = cfg.sram_kb as u64 * 1024;
    let mut severity: Vec<(usize, i64)> = model
        .layers
        .iter()
        .zip(weight_bytes)
        .enumerate()
        .map(|(i, (l, &wb))| {
            let spill = crate::perf::activation_spill_bytes(l.in_elems, l.out_elems, sram_bytes);
            let wc = (wb as f64 / cfg.bytes_per_cycle(cfg.dram_bw_gbps)).ceil() as u64;
            let p = layer_perf(l.macs, wc, l.in_elems, l.out_elems, spill, cfg);
            let other = p.compute_cycles.max(p.activation_cycles);
            (i, p.weight_cycles as i64 - other as i64)
        })
        .collect();
    severity.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
    let mut fractions = vec![0.0f64; model.layers.len()];
    let mut remaining = capacity_bits;
    for (i, _) in severity {
        if remaining == 0 {
            break;
        }
        let need = weight_bytes[i] * 8;
        if need == 0 {
            fractions[i] = 1.0;
            continue;
        }
        let take = need.min(remaining);
        fractions[i] = take as f64 / need as f64;
        remaining -= take;
    }
    fractions
}

/// Sweeps the on-chip area split for a model (Fig. 11).
///
/// `fractions` are the eNVM shares of `area_budget_mm2` to evaluate;
/// fraction 0 (the all-SRAM baseline) is always evaluated first as the
/// normalization point.
/// # Errors
///
/// Propagates [`NvsimError`] if the eNVM macro at any split cannot be
/// characterized.
pub fn sweep_hybrid(
    model: &ModelSpec,
    base_cfg: &NvdlaConfig,
    tech: CellTechnology,
    bits_per_cell: u8,
    area_budget_mm2: f64,
    weight_bytes: &[u64],
    fractions: &[f64],
) -> Result<Vec<HybridPoint>, NvsimError> {
    let eval_at = |fraction: f64| -> Result<(u64, usize, SystemReport), NvsimError> {
        let sram_area = area_budget_mm2 * (1.0 - fraction);
        let sram = SramMacro::fit_in_area(sram_area).unwrap_or_else(|| SramMacro::new(64 * 1024));
        let mut cfg = base_cfg.clone();
        cfg.sram_kb = (sram.bytes / 1024) as u32;
        cfg.sram_bw_gbps = sram.bandwidth_gbps;
        if fraction <= 0.0 {
            let report = evaluate(model, &cfg, &WeightSource::Dram, weight_bytes);
            return Ok((0, 0, report));
        }
        let cells = capacity_cells_for_area(tech, bits_per_cell, area_budget_mm2 * fraction)?;
        let envm: ArrayDesign = characterize(
            &ArrayRequest::new(tech, cells.max(1), bits_per_cell),
            OptTarget::ReadEdp,
        )?;
        let capacity_bits = envm.request.capacity_bits();
        let fractions = greedy_placement(model, &cfg, weight_bytes, capacity_bits);
        let on_chip = fractions.iter().filter(|&&f| f > 0.0).count();
        let source = WeightSource::Hybrid { envm, fractions };
        let report = evaluate(model, &cfg, &source, weight_bytes);
        Ok((capacity_bits, on_chip, report))
    };

    let (_, _, baseline) = eval_at(0.0)?;
    fractions
        .iter()
        .map(|&fraction| {
            let (envm_capacity_bits, layers_on_chip, report) = eval_at(fraction)?;
            Ok(HybridPoint {
                envm_fraction: fraction,
                envm_capacity_bits,
                layers_on_chip,
                relative_performance: report.fps / baseline.fps,
                relative_energy: report.energy_per_inference_mj / baseline.energy_per_inference_mj,
                report,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::encoded_weight_bytes;
    use maxnvm_dnn::zoo;
    use maxnvm_encoding::EncodingKind;

    fn vgg16_sweep() -> Vec<HybridPoint> {
        let model = zoo::vgg16();
        let bytes = encoded_weight_bytes(&model, EncodingKind::Csr, false);
        sweep_hybrid(
            &model,
            &NvdlaConfig::nvdla_1024(),
            CellTechnology::MlcCtt,
            3,
            1.0,
            &bytes,
            &[0.0, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9],
        )
        .expect("feasible hybrid sweep")
    }

    #[test]
    fn capacity_scales_with_area() {
        let half = capacity_cells_for_area(CellTechnology::MlcCtt, 3, 0.5).expect("feasible");
        let one = capacity_cells_for_area(CellTechnology::MlcCtt, 3, 1.0).expect("feasible");
        let ratio = one as f64 / half as f64;
        assert!((1.6..2.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn greedy_prefers_weight_bound_layers() {
        let model = zoo::vgg16();
        let bytes = encoded_weight_bytes(&model, EncodingKind::Csr, false);
        let cfg = NvdlaConfig::nvdla_1024();
        // Capacity for roughly the fully connected layers (the most
        // DRAM-bottlenecked in VGG16).
        let placed = greedy_placement(&model, &cfg, &bytes, 20 * 8 * 1024 * 1024);
        let fc6_idx = model.layers.iter().position(|l| l.name == "fc6").unwrap();
        assert!(
            placed[fc6_idx] > 0.0,
            "fc6 (most weight-bound) must be placed first"
        );
        assert!(
            placed.iter().any(|&f| f < 1.0),
            "capacity should not fit everything"
        );
    }

    #[test]
    fn some_envm_beats_none() {
        // Fig. 11: there is initial benefit from alleviating the weight
        // DRAM bottleneck — some interior split must beat the all-SRAM
        // baseline on both performance and energy.
        let points = vgg16_sweep();
        let best_perf = points
            .iter()
            .filter(|p| p.envm_fraction > 0.0)
            .map(|p| p.relative_performance)
            .fold(0.0f64, f64::max);
        assert!(
            best_perf > 1.0,
            "no split outperforms all-SRAM: best {best_perf}"
        );
        let best_energy = points
            .iter()
            .filter(|p| p.envm_fraction > 0.0)
            .map(|p| p.relative_energy)
            .fold(f64::INFINITY, f64::min);
        assert!(
            best_energy < 1.0,
            "no split cuts energy: best {best_energy}"
        );
    }

    #[test]
    fn too_much_envm_starves_the_sram() {
        // Fig. 11: performance sharply degrades when SRAM can no longer
        // hold the intermediate working set.
        let points = vgg16_sweep();
        let mid = points.iter().find(|p| p.envm_fraction == 0.45).unwrap();
        let extreme = points.iter().find(|p| p.envm_fraction == 0.9).unwrap();
        assert!(
            extreme.relative_performance < mid.relative_performance,
            "90% eNVM {} should be worse than 45% {}",
            extreme.relative_performance,
            mid.relative_performance
        );
    }

    #[test]
    fn energy_optimum_sits_mid_sweep() {
        // §6: lowest energy per inference around ~45% eNVM.
        let points = vgg16_sweep();
        let best = points
            .iter()
            .min_by(|a, b| a.relative_energy.partial_cmp(&b.relative_energy).unwrap())
            .unwrap();
        assert!(
            (0.1..0.8).contains(&best.envm_fraction),
            "energy optimum at {}",
            best.envm_fraction
        );
    }

    #[test]
    fn placement_respects_capacity() {
        let model = zoo::vgg16();
        let bytes = encoded_weight_bytes(&model, EncodingKind::Csr, false);
        let cfg = NvdlaConfig::nvdla_1024();
        let cap = 4 * 8 * 1024 * 1024u64;
        let placed = greedy_placement(&model, &cfg, &bytes, cap);
        let used: f64 = placed
            .iter()
            .zip(&bytes)
            .map(|(&f, &b)| f * (b * 8) as f64)
            .sum();
        assert!(used <= cap as f64 + 8.0);
        assert!(used > 0.0);
    }
}
