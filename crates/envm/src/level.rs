//! Per-level Gaussian read distributions and sense thresholds (§2.2–2.3).
//!
//! A cell programmed to level *i* is read by comparing its (noisy) read
//! current against `N-1` reference thresholds. The probability of misreading
//! level *i* as the adjacent level follows from the Gaussian tail beyond the
//! neighbouring threshold — exactly the construction the paper uses on the
//! measured CTT current histograms (Fig. 2b) and published RRAM data.

use crate::fault::FaultMap;
use crate::math::{normal_cdf, q_function, sample_normal};
use crate::sense::SenseAmp;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of bits stored per cell (1 = SLC, 2 = MLC2, 3 = MLC3).
///
/// The paper evaluates up to 3 bits per cell, the densest configuration
/// demonstrated on the CTT test chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MlcConfig {
    bits: u8,
}

/// Error returned when constructing an out-of-range [`MlcConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidMlcConfig(pub u8);

impl fmt::Display for InvalidMlcConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bits per cell must be in 1..=3, got {}", self.0)
    }
}

impl std::error::Error for InvalidMlcConfig {}

impl MlcConfig {
    /// Single-level cell (1 bit).
    pub const SLC: MlcConfig = MlcConfig { bits: 1 };
    /// 2 bits per cell.
    pub const MLC2: MlcConfig = MlcConfig { bits: 2 };
    /// 3 bits per cell (8 levels).
    pub const MLC3: MlcConfig = MlcConfig { bits: 3 };

    /// All configurations the paper's design-space exploration sweeps.
    pub const ALL: [MlcConfig; 3] = [Self::SLC, Self::MLC2, Self::MLC3];

    /// Creates a configuration storing `bits` bits per cell.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidMlcConfig`] unless `1 <= bits <= 3`.
    pub fn new(bits: u8) -> Result<Self, InvalidMlcConfig> {
        if (1..=3).contains(&bits) {
            Ok(Self { bits })
        } else {
            Err(InvalidMlcConfig(bits))
        }
    }

    /// Bits stored per cell.
    pub fn bits(self) -> u8 {
        self.bits
    }

    /// Number of programmable levels, `2^bits`.
    pub fn levels(self) -> usize {
        1 << self.bits
    }
}

impl fmt::Display for MlcConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.bits {
            1 => write!(f, "SLC"),
            b => write!(f, "MLC{b}"),
        }
    }
}

/// A single programmed level's read distribution, `N(mean, sigma^2)`, in
/// normalized read-signal units (the full signal window is `[0, 1]`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelDistribution {
    /// Mean read signal.
    pub mean: f64,
    /// Standard deviation of the read signal.
    pub sigma: f64,
}

impl LevelDistribution {
    /// Creates a level distribution.
    ///
    /// # Panics
    ///
    /// Panics if `sigma <= 0` or either value is non-finite.
    pub fn new(mean: f64, sigma: f64) -> Self {
        assert!(mean.is_finite() && sigma.is_finite(), "non-finite level");
        assert!(sigma > 0.0, "sigma must be positive, got {sigma}");
        Self { mean, sigma }
    }
}

/// A fully specified multi-level cell: level distributions plus the sense
/// thresholds that separate them.
///
/// Thresholds default to sigma-weighted midpoints between adjacent level
/// means, which is how a flash-ADC style parallel sensing scheme (§2.3)
/// would place its references.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellModel {
    levels: Vec<LevelDistribution>,
    thresholds: Vec<f64>,
}

impl CellModel {
    /// Builds a cell from level distributions, placing each threshold at the
    /// sigma-weighted midpoint between adjacent means (equalizes the two
    /// adjacent misread rates).
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 levels are given, if the level count is not a
    /// power of two, or if means are not strictly increasing.
    pub fn new(levels: Vec<LevelDistribution>) -> Self {
        assert!(levels.len() >= 2, "need at least 2 levels");
        assert!(
            levels.len().is_power_of_two(),
            "level count {} must be a power of two",
            levels.len()
        );
        for pair in levels.windows(2) {
            assert!(
                pair[1].mean > pair[0].mean,
                "level means must be strictly increasing"
            );
        }
        let thresholds = levels
            .windows(2)
            .map(|p| {
                // Sigma-weighted midpoint: both neighbours sit the same
                // number of their own sigmas away from the threshold.
                (p[0].mean * p[1].sigma + p[1].mean * p[0].sigma) / (p[0].sigma + p[1].sigma)
            })
            .collect();
        Self { levels, thresholds }
    }

    /// Builds a cell with explicit thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `thresholds.len() != levels.len() - 1`, or if the
    /// thresholds do not interleave the level means.
    // maxnvm-lint: allow(R1/index-arith): thresholds.len() is asserted == levels.len()-1, so levels[i+1] exists for every threshold index i.
    pub fn with_thresholds(levels: Vec<LevelDistribution>, thresholds: Vec<f64>) -> Self {
        assert_eq!(thresholds.len(), levels.len() - 1, "threshold count");
        for (i, &t) in thresholds.iter().enumerate() {
            assert!(
                levels[i].mean < t && t < levels[i + 1].mean,
                "threshold {i} = {t} does not separate levels"
            );
        }
        Self { levels, thresholds }
    }

    /// Number of programmable levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Bits stored per cell, `log2(levels)`.
    pub fn bits_per_cell(&self) -> u8 {
        self.levels.len().trailing_zeros() as u8
    }

    /// The level distributions.
    pub fn levels(&self) -> &[LevelDistribution] {
        &self.levels
    }

    /// The sense thresholds (length `num_levels() - 1`).
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }

    /// Returns a copy whose level sigmas are inflated by the sense
    /// amplifier's input-referred offset (§2.3): the offset adds in
    /// quadrature with the intrinsic level spread.
    pub fn with_sense_amp(&self, sa: &SenseAmp) -> CellModel {
        let off = sa.input_referred_offset_sigma();
        let levels = self
            .levels
            .iter()
            .map(|l| LevelDistribution::new(l.mean, (l.sigma * l.sigma + off * off).sqrt()))
            .collect();
        CellModel {
            levels,
            thresholds: self.thresholds.clone(),
        }
    }

    /// Probability that a cell programmed to `stored` is read back as
    /// `read`: the Gaussian mass of level `stored` falling in `read`'s
    /// threshold window.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    // maxnvm-lint: allow(R1/index-arith): stored/read are asserted < num_levels and thresholds has n-1 entries, so thresholds[read-1] exists whenever read > 0.
    pub fn misread_probability(&self, stored: usize, read: usize) -> f64 {
        let n = self.num_levels();
        assert!(stored < n && read < n, "level index out of range");
        let l = self.levels[stored];
        let lo = if read == 0 {
            f64::NEG_INFINITY
        } else {
            self.thresholds[read - 1]
        };
        let hi = if read == n - 1 {
            f64::INFINITY
        } else {
            self.thresholds[read]
        };
        let cdf = |x: f64| -> f64 {
            if x == f64::NEG_INFINITY {
                0.0
            } else if x == f64::INFINITY {
                1.0
            } else {
                normal_cdf((x - l.mean) / l.sigma)
            }
        };
        cdf(hi) - cdf(lo)
    }

    /// Adjacent-level fault map: for each level, the probability of being
    /// misread one level up and one level down.
    // maxnvm-lint: allow(R1/index-arith): the i+1 < n guard precedes every thresholds[i]/levels[i+1] access, and i-1 is only read when i > 0.
    pub fn fault_map(&self) -> FaultMap {
        let n = self.num_levels();
        let mut p_up = vec![0.0; n];
        let mut p_down = vec![0.0; n];
        for i in 0..n {
            let l = self.levels[i];
            if i + 1 < n {
                p_up[i] = q_function((self.thresholds[i] - l.mean) / l.sigma);
            }
            if i > 0 {
                p_down[i] = normal_cdf((self.thresholds[i - 1] - l.mean) / l.sigma);
            }
        }
        FaultMap::new(p_up, p_down)
    }

    /// Samples the level read back for a cell programmed to `stored`, by
    /// the paper's §4.1 procedure verbatim: draw the analog read signal
    /// from the stored level's Gaussian and locate it among the sense
    /// thresholds. Unlike [`FaultMap::sample`](crate::FaultMap::sample),
    /// this path also produces the (astronomically rare) non-adjacent
    /// misreads.
    ///
    /// # Panics
    ///
    /// Panics if `stored` is out of range.
    pub fn sample_read<R: Rng + ?Sized>(&self, stored: usize, rng: &mut R) -> usize {
        let l = self.levels[stored];
        let x = sample_normal(rng, l.mean, l.sigma);
        // Thresholds are sorted; the read level is the bin x falls in.
        self.thresholds.partition_point(|&t| t < x)
    }

    /// Upper bound on the probability of a *non-adjacent* misread across
    /// all levels. The paper states this is `1.5e-10` or below for the
    /// technologies considered; the fault injector ignores such events.
    pub fn non_adjacent_bound(&self) -> f64 {
        let n = self.num_levels();
        let mut worst: f64 = 0.0;
        for stored in 0..n {
            for read in 0..n {
                if read.abs_diff(stored) >= 2 {
                    worst = worst.max(self.misread_probability(stored, read));
                }
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evenly_spaced(n: usize, sigma: f64) -> CellModel {
        let levels = (0..n)
            .map(|i| LevelDistribution::new(i as f64 / (n - 1) as f64, sigma))
            .collect();
        CellModel::new(levels)
    }

    #[test]
    fn mlc_config_bounds() {
        assert!(MlcConfig::new(0).is_err());
        assert!(MlcConfig::new(4).is_err());
        assert_eq!(MlcConfig::new(2).unwrap().levels(), 4);
        assert_eq!(MlcConfig::MLC3.levels(), 8);
        assert_eq!(MlcConfig::SLC.to_string(), "SLC");
        assert_eq!(MlcConfig::MLC3.to_string(), "MLC3");
    }

    #[test]
    fn thresholds_interleave_means() {
        let c = evenly_spaced(8, 0.02);
        assert_eq!(c.thresholds().len(), 7);
        for (i, &t) in c.thresholds().iter().enumerate() {
            assert!(c.levels()[i].mean < t && t < c.levels()[i + 1].mean);
        }
        assert_eq!(c.bits_per_cell(), 3);
    }

    #[test]
    fn equal_sigma_thresholds_are_midpoints() {
        let c = evenly_spaced(4, 0.05);
        for (i, &t) in c.thresholds().iter().enumerate() {
            let mid = (c.levels()[i].mean + c.levels()[i + 1].mean) / 2.0;
            assert!((t - mid).abs() < 1e-12);
        }
    }

    #[test]
    fn weighted_threshold_balances_fault_rates() {
        // Unequal sigmas: the sigma-weighted threshold makes the up-fault of
        // the wide level equal the down-fault of the tight one.
        let levels = vec![
            LevelDistribution::new(0.0, 0.08),
            LevelDistribution::new(0.3, 0.02),
        ];
        let c = CellModel::new(levels);
        let fm = c.fault_map();
        let up0 = fm.p_up(0);
        let down1 = fm.p_down(1);
        assert!(
            ((up0 - down1) / up0).abs() < 1e-9,
            "up0 = {up0}, down1 = {down1}"
        );
    }

    #[test]
    fn misread_rows_sum_to_one() {
        let c = evenly_spaced(8, 0.03);
        for stored in 0..8 {
            let total: f64 = (0..8).map(|r| c.misread_probability(stored, r)).sum();
            assert!((total - 1.0).abs() < 1e-9, "row {stored} sums to {total}");
        }
    }

    #[test]
    fn tighter_sigma_means_fewer_faults() {
        let loose = evenly_spaced(8, 0.03).fault_map().worst_adjacent_rate();
        let tight = evenly_spaced(8, 0.015).fault_map().worst_adjacent_rate();
        assert!(tight < loose);
    }

    #[test]
    fn more_levels_means_more_faults() {
        let slc = evenly_spaced(2, 0.02).fault_map().worst_adjacent_rate();
        let mlc2 = evenly_spaced(4, 0.02).fault_map().worst_adjacent_rate();
        let mlc3 = evenly_spaced(8, 0.02).fault_map().worst_adjacent_rate();
        assert!(slc < mlc2 && mlc2 < mlc3, "{slc} {mlc2} {mlc3}");
    }

    #[test]
    fn non_adjacent_bound_is_tiny_for_realistic_cells() {
        let c = evenly_spaced(8, 0.018);
        // Adjacent faults are ~1e-4 but two-level jumps should be <= ~1e-10.
        assert!(c.non_adjacent_bound() < 1e-9);
    }

    #[test]
    fn sense_amp_inflates_sigma() {
        let c = evenly_spaced(8, 0.02);
        let sa = SenseAmp::new(0.02);
        let with = c.with_sense_amp(&sa);
        let base = c.fault_map().worst_adjacent_rate();
        let noisy = with.fault_map().worst_adjacent_rate();
        assert!(noisy > base);
        // §2.3: SA sized so fault rates are altered by less than 2x — that
        // is a property of the chosen size, checked in tech.rs tests.
    }

    #[test]
    fn analog_sampling_matches_fault_map_statistics() {
        use rand::SeedableRng;
        // The closed-form adjacent-fault probabilities and the verbatim
        // analog-sampling path must agree statistically.
        let c = evenly_spaced(4, 0.08); // exaggerated overlap for statistics
        let fm = c.fault_map();
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let trials = 200_000;
        for stored in 0..4usize {
            let mut ups = 0usize;
            for _ in 0..trials {
                let read = c.sample_read(stored, &mut rng);
                if read == stored + 1 {
                    ups += 1;
                }
            }
            let observed = ups as f64 / trials as f64;
            let expected = fm.p_up(stored);
            if expected > 1e-4 {
                let rel = (observed - expected).abs() / expected;
                assert!(
                    rel < 0.15,
                    "level {stored}: observed {observed}, expected {expected}"
                );
            }
        }
    }

    #[test]
    fn analog_sampling_stays_in_range() {
        use rand::SeedableRng;
        let c = evenly_spaced(8, 0.1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        for stored in 0..8usize {
            for _ in 0..1000 {
                let read = c.sample_read(stored, &mut rng);
                assert!(read < 8);
            }
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_levels() {
        CellModel::new(vec![
            LevelDistribution::new(0.5, 0.01),
            LevelDistribution::new(0.1, 0.01),
        ]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let levels = (0..3)
            .map(|i| LevelDistribution::new(i as f64, 0.01))
            .collect();
        CellModel::new(levels);
    }
}
