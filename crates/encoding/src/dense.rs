//! Dense pruned-and-clustered storage ("P+C"): every weight stored as its
//! cluster index, zeros included. The baseline the sparse encodings are
//! compared against in Table 2 and Fig. 6.

use crate::cluster::ClusteredLayer;
use crate::StructureKind;
use maxnvm_bits::{BitBuffer, BitReader};
use serde::{Deserialize, Serialize};

/// A densely stored clustered layer (indices only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseLayer {
    /// Matrix rows.
    pub rows: usize,
    /// Matrix columns.
    pub cols: usize,
    /// Bits per cluster index.
    pub index_bits: u8,
    /// Row-major cluster indices, `rows * cols` long.
    pub indices: Vec<u16>,
}

impl DenseLayer {
    /// Encodes a clustered layer (a straight copy of its index matrix).
    pub fn encode(layer: &ClusteredLayer) -> Self {
        Self {
            rows: layer.rows,
            cols: layer.cols,
            index_bits: layer.index_bits,
            indices: layer.indices.clone(),
        }
    }

    /// Serializes into a single index stream.
    pub fn to_streams(&self) -> Vec<(StructureKind, BitBuffer)> {
        let mut buf = BitBuffer::with_capacity(self.indices.len() * self.index_bits as usize);
        for &i in &self.indices {
            buf.push_bits(i as u64, self.index_bits as usize);
        }
        vec![(StructureKind::Values, buf)]
    }

    /// Rebuilds from a (possibly corrupted) stream.
    pub fn from_streams(rows: usize, cols: usize, index_bits: u8, values: &BitBuffer) -> Self {
        let mut r = BitReader::new(values);
        let indices = (0..rows * cols)
            .map(|_| r.read_bits(index_bits as usize).unwrap_or(0) as u16)
            .collect();
        Self {
            rows,
            cols,
            index_bits,
            indices,
        }
    }

    /// The dense cluster-index matrix. Dense storage has no alignment
    /// structures, so a fault corrupts exactly one weight — the fault
    /// tolerance baseline of §4.2.
    pub fn reconstruct_indices(&self) -> Vec<u16> {
        self.indices.clone()
    }

    /// Walks the non-zero cluster indices in row-major order, calling
    /// `f(row, col, value)` — the dense counterpart of the sparse
    /// encodings' run walks.
    pub fn for_each_nonzero(&self, mut f: impl FnMut(usize, usize, u16)) {
        for (i, &v) in self.indices.iter().enumerate() {
            if v != 0 {
                f(i / self.cols, i % self.cols, v);
            }
        }
    }

    /// Output slot of each stored entry: entry `j` is matrix position `j`.
    pub fn entry_slots(&self) -> Vec<u32> {
        (0..self.rows as u32 * self.cols as u32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxnvm_dnn::network::LayerMatrix;

    fn clustered() -> ClusteredLayer {
        let m = LayerMatrix::new("t", 2, 4, vec![0.0, 0.5, 0.0, 1.0, -0.5, 0.0, 0.0, 0.25]);
        ClusteredLayer::from_matrix(&m, 3, 1)
    }

    #[test]
    fn round_trip() {
        let c = clustered();
        let enc = DenseLayer::encode(&c);
        let streams = enc.to_streams();
        assert_eq!(streams.len(), 1);
        assert_eq!(streams[0].0, StructureKind::Values);
        let dec = DenseLayer::from_streams(c.rows, c.cols, c.index_bits, &streams[0].1);
        assert_eq!(dec.reconstruct_indices(), c.indices);
    }

    #[test]
    fn stream_length_is_exact() {
        let c = clustered();
        let streams = DenseLayer::encode(&c).to_streams();
        assert_eq!(streams[0].1.len(), 8 * 3);
    }

    #[test]
    fn walk_visits_nonzeros_in_order() {
        let enc = DenseLayer::encode(&clustered());
        let mut walked = Vec::new();
        enc.for_each_nonzero(|r, c, v| walked.push((r, c, v)));
        let expect: Vec<(usize, usize, u16)> = enc
            .indices
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0)
            .map(|(i, &v)| (i / enc.cols, i % enc.cols, v))
            .collect();
        assert_eq!(walked, expect);
        assert!(!walked.is_empty());
    }

    #[test]
    fn short_stream_pads_with_zeros() {
        let c = clustered();
        let truncated = BitBuffer::zeros(5);
        let dec = DenseLayer::from_streams(c.rows, c.cols, c.index_bits, &truncated);
        assert_eq!(dec.reconstruct_indices().len(), 8);
    }
}
