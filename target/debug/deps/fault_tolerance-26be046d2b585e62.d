/root/repo/target/debug/deps/fault_tolerance-26be046d2b585e62.d: tests/fault_tolerance.rs Cargo.toml

/root/repo/target/debug/deps/libfault_tolerance-26be046d2b585e62.rmeta: tests/fault_tolerance.rs Cargo.toml

tests/fault_tolerance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
