/root/repo/target/debug/deps/maxnvm-c7ab5b3f7345c7a5.d: crates/core/src/lib.rs

/root/repo/target/debug/deps/maxnvm-c7ab5b3f7345c7a5: crates/core/src/lib.rs

crates/core/src/lib.rs:
