/root/repo/target/debug/examples/quickstart-c64266911d1be442.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c64266911d1be442: examples/quickstart.rs

examples/quickstart.rs:
