//! Cache-blocked f32 GEMM with a fixed, input-independent summation
//! order and runtime-dispatched SIMD micro-kernels.
//!
//! The naive i-k-j matmul this replaces re-reads the whole right-hand
//! matrix from memory for every output row; at LeNet5 batch sizes the
//! trial loop spends most of its time there. This kernel uses the
//! classic three-level blocking (GotoBLAS / BLIS structure): the right
//! operand is packed into `nr`-wide column panels, the left operand
//! into `mr`-tall row panels, and an `mr`×`nr` register-tile
//! micro-kernel runs over [`KC`]-deep slices. The tile shape is chosen
//! per instruction set by [`active_tier`] — a 4×8 portable tile
//! ([`SimdTier::Scalar`]), a 6×16 AVX2/FMA tile, an 8×32 AVX-512 tile,
//! or an 8×8 NEON tile — detected **once per process** from CPU
//! features (plus the `MAXNVM_FORCE_SCALAR` escape hatch), never from
//! the data being multiplied.
//!
//! # Summation order (determinism contract D1)
//!
//! Every output element `c[i, j]` is accumulated in **pure ascending-k
//! order** as a chain of IEEE-754 *fused* multiply-adds, one single
//! rounding per term: `fma(a[i,k], b[k,j], … fma(a[i,1], b[1,j],
//! fma(a[i,0], b[0,j], 0.0)) …)`. The micro-kernel keeps exactly one
//! accumulator per output element, loads the current `c` tile into it,
//! adds the panel's `kc` terms in k order, and stores the tile back, so
//! splitting `k` into `KC`-deep panels — or `n` into per-worker column
//! bands — does not reorder or re-associate any element's chain.
//!
//! Crucially, the chain is **tier-independent**: `f32::mul_add`, an
//! x86 `vfmadd` lane, and a NEON `vfma` lane are all the same
//! correctly-rounded fused operation, so every tier (and every
//! architecture) produces identical bits. SIMD dispatch is therefore a
//! pure performance knob; [`gemm_row_into`] (a sequential fused dot,
//! one `mul_add` per term) reproduces any row of [`gemm_into`] bit for
//! bit on any machine. That property is what lets the fault-delta
//! forward pass recompute only the rows a fault touched (see
//! `network`/`prefix`), and what makes campaign results byte-identical
//! between scalar-forced and SIMD runs.
//!
//! The dense kernel does not branch on zero-valued `a` entries —
//! data-dependent branches defeat vectorization — but skipping a term
//! whose `a` entry is exactly `±0.0` *is* a bitwise no-op under fused
//! arithmetic too: `fma(±0.0, b, acc)` rounds `±0.0·b + acc = acc`
//! exactly for any finite `b`, and an accumulator that starts at `+0.0`
//! can never become `-0.0` (under round-to-nearest `+0.0 + ±0.0 = +0.0`
//! and exact cancellation of nonzero terms yields `+0.0`; a fused term
//! behaves the same because its product's sign only matters when the
//! sum is exactly zero). So the sparse path ([`sparse_gemm_into`],
//! [`sparse_row_into`]) — the same ascending-k additions minus the
//! skippable zero terms — is bit-identical to the dense one. The one
//! caveat is non-finite activations (`0.0 · inf = NaN` on the dense
//! path only), which cannot arise from the finite inputs this crate
//! feeds the kernels (see `DESIGN.md` §13).
//!
//! # Within-trial parallelism
//!
//! A [`GemmParallel`] handle installed on the [`GemmScratch`] lets one
//! large multiply fan out over the engine's worker pool: the `n`
//! dimension is split into `nr`-aligned column bands with **fixed
//! ownership** — job `i` owns band `i`, no stealing — so each output
//! element is still computed serially, in the same ascending-k order,
//! by exactly one job. Results are byte-identical at any worker count
//! (including the serial path) because band boundaries never split an
//! element's chain; the split only decides *who* computes it. Small
//! multiplies ([`PAR_MIN_WORK`], [`PAR_MIN_COLS`]) stay serial — the
//! shape gate depends on dimensions only, never on data, and both
//! routes are bit-identical anyway.

mod dispatch;
#[cfg(target_arch = "aarch64")]
mod kernel_neon;
#[cfg(target_arch = "x86_64")]
mod kernel_x86;

pub use dispatch::{
    active_tier, env_force_scalar, force_tier_for_tests, parse_force_scalar, supported_tiers,
    InvalidForceScalar, SimdTier, FORCE_SCALAR_ENV,
};

use std::sync::Arc;

/// Depth of one packed panel (L1-resident slice of the k dimension);
/// shared by every tier.
pub const KC: usize = 256;
/// Column-block width (L3-resident slab of the packed right operand);
/// shared by every tier and divisible by every tier's `nr`.
pub const NC: usize = 1024;

/// Largest `mr`×`nr` register tile across tiers (the AVX-512 8×32);
/// sizes the edge-tile staging buffer.
const MAX_TILE: usize = 8 * 32;

/// Stored-density threshold above which [`sparse_gemm_into`] routes
/// through the dense kernel on a materialized copy. Near-dense layers
/// (e.g. VGG12's 0.591 overall density, Table 2) pay more for the
/// per-row cursor walk than the skipped zeros save. The decision reads
/// only `a.density()` — a pure function of the stored operand, not of
/// the activations — and both routes are bit-identical (see module
/// docs), so the cutover can never change a result, only its speed.
pub const SPARSE_DENSE_CUTOVER: f64 = 0.35;

/// Minimum columns per job before a multiply fans out; keeps each
/// band's packing amortized and bands `nr`-aligned and non-trivial.
pub const PAR_MIN_COLS: usize = 256;
/// Minimum multiply-add count (`m·k·n` dense, `nnz·n` sparse) before a
/// multiply fans out; below this the pool hand-off costs more than the
/// compute. Shape-only, never data-dependent.
pub const PAR_MIN_WORK: usize = 1 << 21;

/// Deterministic fan-out used by [`gemm_into`]/[`sparse_gemm_into`] to
/// run one multiply's column bands on the engine's worker pool.
///
/// Implementations must run `task(0..jobs)` exactly once each and
/// return only when all calls finished; calls may run concurrently.
/// Job indices carry **fixed ownership** of disjoint column bands, so
/// the schedule (which thread runs which index, in what order) can
/// never affect results.
pub trait GemmParallel: Send + Sync + std::fmt::Debug {
    /// Upper bound on useful concurrent jobs (e.g. pool workers + the
    /// caller). The kernels may use fewer for small shapes.
    fn max_jobs(&self) -> usize;
    /// Runs `task(j)` for every `j in 0..jobs`, returning when all are
    /// done.
    fn run(&self, jobs: usize, task: &(dyn Fn(usize) + Sync));
}

/// One set of packing buffers (one serial multiply, or one parallel
/// job's band).
#[derive(Debug, Clone, Default)]
struct PackBufs {
    packed_a: Vec<f32>,
    packed_b: Vec<f32>,
    /// Per-`KC`-block nonzero counts of the sparse left operand, used
    /// by [`sparse_gemm_into`] to elide packing for all-zero k panels.
    kblock_nnz: Vec<u32>,
    /// Per-row walk positions into the sparse left operand's entries.
    cursors: Vec<usize>,
}

/// Reusable state for [`gemm_into`]/[`sparse_gemm_into`]. Holding one
/// per worker (inside the evaluation scratch) keeps the trial loop
/// allocation-free: the buffers grow once and are reused by every
/// subsequent multiply. Optionally carries a [`GemmParallel`] handle
/// (plus per-job buffers) so large multiplies fan out within a trial.
#[derive(Debug, Clone, Default)]
pub struct GemmScratch {
    bufs: PackBufs,
    /// Per-job packing buffers for parallel column bands; `par_bufs[j]`
    /// is owned exclusively by job `j` while a fan-out runs.
    par_bufs: Vec<PackBufs>,
    /// Materialization buffer for the sparse→dense cutover.
    dense_a: Vec<f32>,
    parallel: Option<Arc<dyn GemmParallel>>,
}

impl GemmScratch {
    /// Installs (or removes) the fan-out handle used for within-trial
    /// GEMM parallelism. `None` (the default) keeps every multiply on
    /// the calling thread. Results are byte-identical either way.
    pub fn set_parallel(&mut self, parallel: Option<Arc<dyn GemmParallel>>) {
        self.parallel = parallel;
    }

    /// The installed fan-out handle, if any.
    pub fn parallel(&self) -> Option<&Arc<dyn GemmParallel>> {
        self.parallel.as_ref()
    }
}

/// Raw base pointer smuggled into fan-out jobs.
struct SendPtr<T>(*mut T);

// Manual Copy/Clone: the derive would demand `T: Copy`, but only the
// pointer is copied.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// SAFETY: `SendPtr` is only constructed inside this module's fan-out
// paths, where every job dereferences a *disjoint* region (its own
// column band of `c`, or its own `par_bufs[j]` entry) under the fixed
// job↔band ownership documented on `GemmParallel`, and the fan-out
// call completes before the owning `&mut` borrow is used again.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: see the `Send` justification above — shared access is only
// ever to disjoint regions selected by the job index.
unsafe impl<T> Sync for SendPtr<T> {}

/// `c = a · b` for row-major `a` (`m`×`k`), `b` (`k`×`n`), `c` (`m`×`n`).
///
/// `c` is overwritten (zeroed first). See the module docs for the
/// summation-order guarantee; if `scratch` carries a [`GemmParallel`]
/// handle and the shape clears the fan-out gate, column bands run on
/// the pool with byte-identical results.
///
/// # Panics
///
/// Asserts that the slice lengths match the given dimensions.
pub fn gemm_into(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut GemmScratch,
) {
    assert_eq!(a.len(), m * k, "lhs length vs {m}x{k}");
    assert_eq!(b.len(), k * n, "rhs length vs {k}x{n}");
    assert_eq!(c.len(), m * n, "out length vs {m}x{n}");
    c.fill(0.0);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    let tier = active_tier();
    let GemmScratch {
        bufs,
        par_bufs,
        parallel,
        ..
    } = scratch;
    if let Some(par) = parallel.as_deref() {
        let work = m.saturating_mul(k).saturating_mul(n);
        let jobs = plan_jobs(par.max_jobs(), work, n);
        if jobs > 1 {
            if par_bufs.len() < jobs {
                par_bufs.resize_with(jobs, PackBufs::default);
            }
            let cp = SendPtr(c.as_mut_ptr());
            let bp = SendPtr(par_bufs.as_mut_ptr());
            let nr = tier.nr();
            par.run(jobs, &|j| {
                // Capture the whole `SendPtr` wrappers (not their raw
                // fields) so the closure is Sync.
                let (cp, bp) = (cp, bp);
                // SAFETY: fixed ownership — job j is the only accessor
                // of `par_bufs[j]` (j < jobs ≤ par_bufs.len()) for the
                // duration of the fan-out.
                let job_bufs = unsafe { &mut *bp.0.add(j) };
                let (j0, j1) = (band_edge(n, jobs, nr, j), band_edge(n, jobs, nr, j + 1));
                gemm_cols(tier, cp, a, b, k, n, j0, j1, m, job_bufs);
            });
            return;
        }
    }
    gemm_cols(tier, SendPtr(c.as_mut_ptr()), a, b, k, n, 0, n, m, bufs);
}

/// One output row by a sequential fused dot: `out[j] = fma(row[k-1],
/// b[k-1,j], … fma(row[0], b[0,j], 0.0))` in ascending-k order —
/// bit-identical to the same row of [`gemm_into`] on every tier (see
/// the module docs). Used by the clean-prefix fault path to recompute
/// only the weight rows a fault touched.
///
/// # Panics
///
/// Asserts that the slice lengths match the given dimensions.
// maxnvm-lint: allow(R1/index-arith): entry asserts pin row/b/out to k, k*n, n, so the kk*n..(kk+1)*n panel is in range for every kk < k.
pub fn gemm_row_into(out: &mut [f32], row: &[f32], b: &[f32], k: usize, n: usize) {
    assert_eq!(row.len(), k, "row length vs k={k}");
    assert_eq!(b.len(), k * n, "rhs length vs {k}x{n}");
    assert_eq!(out.len(), n, "out length vs n={n}");
    out.fill(0.0);
    let tier = active_tier();
    for (kk, &av) in row.iter().enumerate() {
        axpy(tier, out, &b[kk * n..(kk + 1) * n], av);
    }
}

/// Sequential fused dot product — the scalar form of the kernels'
/// per-element chain: `fma(a[k-1], b[k-1], … fma(a[0], b[0], 0.0))`.
/// Bit-identical to one element of [`gemm_into`] (`n = 1` column) on
/// every tier; used wherever a single output needs the same bits as
/// the batched kernels (e.g. the single-sample linear layer).
///
/// # Panics
///
/// Asserts that the slices have equal length.
pub fn fused_dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot operand lengths");
    let mut acc = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        acc = x.mul_add(y, acc);
    }
    acc
}

/// `c = a · b` for a sparse-encoded left operand: row-major `b`
/// (`a.cols()`×`n`), `c` (`a.rows()`×`n`), with no dense
/// materialization of `a` below [`SPARSE_DENSE_CUTOVER`]. O(nnz · n)
/// plus packing.
///
/// Blocking mirrors [`gemm_into`]: the right operand is packed into the
/// same `nr`-wide `KC`-deep panels (widened to the active tier's tile),
/// but k panels with no nonzero `a` entry are elided entirely (never
/// packed, never touched), and within a live panel each row walks only
/// its stored entries via per-row cursors. Per output element the
/// additions are the dense kernel's ascending-k fused chain minus the
/// exact-zero terms, which the module docs show is bitwise identical
/// for finite `b` — so this routine's output equals [`gemm_into`] of
/// the materialized matrix bit for bit. Above the cutover the kernel
/// *does* materialize (into scratch) and runs the dense path, which by
/// the same argument cannot change the result. Fans out over column
/// bands like the dense kernel when a [`GemmParallel`] handle is set.
///
/// # Panics
///
/// Asserts that the slice lengths match `a`'s shape and `n`.
pub fn sparse_gemm_into(
    c: &mut [f32],
    a: &crate::sparse::SparseMatrix,
    b: &[f32],
    n: usize,
    scratch: &mut GemmScratch,
) {
    let (m, k) = (a.rows(), a.cols());
    assert_eq!(b.len(), k * n, "rhs length vs {k}x{n}");
    assert_eq!(c.len(), m * n, "out length vs {m}x{n}");
    c.fill(0.0);
    if m == 0 || k == 0 || n == 0 || a.nnz() == 0 {
        return;
    }
    if a.density() > SPARSE_DENSE_CUTOVER {
        // Near-dense: materialize once into scratch and run the dense
        // kernel — bit-identical (module docs), strictly faster.
        let mut dense = core::mem::take(&mut scratch.dense_a);
        a.to_dense_into(&mut dense);
        gemm_into(c, &dense, b, m, k, n, scratch);
        scratch.dense_a = dense;
        return;
    }
    let tier = active_tier();
    let GemmScratch {
        bufs,
        par_bufs,
        parallel,
        ..
    } = scratch;
    a.kblock_nnz(KC, &mut bufs.kblock_nnz);
    let kblocks = &bufs.kblock_nnz;
    if let Some(par) = parallel.as_deref() {
        let work = (a.nnz()).saturating_mul(n);
        let jobs = plan_jobs(par.max_jobs(), work, n);
        if jobs > 1 {
            if par_bufs.len() < jobs {
                par_bufs.resize_with(jobs, PackBufs::default);
            }
            let cp = SendPtr(c.as_mut_ptr());
            let bp = SendPtr(par_bufs.as_mut_ptr());
            let nr = tier.nr();
            par.run(jobs, &|j| {
                // Capture the whole `SendPtr` wrappers (not their raw
                // fields) so the closure is Sync.
                let (cp, bp) = (cp, bp);
                // SAFETY: fixed ownership — job j is the only accessor
                // of `par_bufs[j]` (j < jobs ≤ par_bufs.len()) for the
                // duration of the fan-out.
                let job_bufs = unsafe { &mut *bp.0.add(j) };
                let (j0, j1) = (band_edge(n, jobs, nr, j), band_edge(n, jobs, nr, j + 1));
                sparse_cols(tier, cp, a, b, n, j0, j1, kblocks, job_bufs);
            });
            return;
        }
    }
    let cp = SendPtr(c.as_mut_ptr());
    // The serial path reuses the per-job buffer slot 0 so the borrow of
    // `bufs.kblock_nnz` (shared) and the packing buffers (mutable)
    // don't alias.
    if par_bufs.is_empty() {
        par_bufs.resize_with(1, PackBufs::default);
    }
    sparse_cols(tier, cp, a, b, n, 0, n, kblocks, &mut par_bufs[0]);
}

/// One output row from a sparse weight row: `out[j] = Σ a[c]·b[c,j]`
/// over the stored `(cols, vals)` entries in ascending-column order,
/// one fused multiply-add per term — bit-identical to [`gemm_row_into`]
/// of the materialized row (and hence to the same row of [`gemm_into`]
/// / [`sparse_gemm_into`]) for finite `b`, by the zero-skip argument in
/// the module docs. Used by the clean-prefix fault path.
///
/// # Panics
///
/// Asserts that the slice lengths match the given dimensions.
// maxnvm-lint: allow(R1/index-arith): entry asserts pin b.len() to k*n and CSR columns are < k by construction, so the col*n row slice is in range.
pub fn sparse_row_into(out: &mut [f32], cols: &[u32], vals: &[f32], b: &[f32], k: usize, n: usize) {
    assert_eq!(cols.len(), vals.len(), "sparse row entry mismatch");
    assert_eq!(b.len(), k * n, "rhs length vs {k}x{n}");
    assert_eq!(out.len(), n, "out length vs n={n}");
    out.fill(0.0);
    let tier = active_tier();
    for (&col, &av) in cols.iter().zip(vals) {
        let kk = col as usize;
        axpy(tier, out, &b[kk * n..kk * n + n], av);
    }
}

/// Jobs for one fan-out: 1 (serial) unless the multiply is big enough
/// on both the work and column axes. Depends on shape only.
fn plan_jobs(max_jobs: usize, work: usize, n: usize) -> usize {
    if work < PAR_MIN_WORK || n < 2 * PAR_MIN_COLS {
        return 1;
    }
    max_jobs.clamp(1, n / PAR_MIN_COLS)
}

/// Start column of job `j`'s band: an `nr`-aligned balanced partition
/// of `0..n` (job `jobs` maps to `n`). Monotone in `j`, so bands are
/// disjoint and cover `0..n` exactly.
fn band_edge(n: usize, jobs: usize, nr: usize, j: usize) -> usize {
    if j >= jobs {
        n
    } else {
        n * j / jobs / nr * nr
    }
}

/// Serial driver over the column range `j0..j1` of `c`: the classic
/// jc/pc/ic loop nest with the active tier's packing shapes. Safe to
/// run concurrently for *disjoint* column ranges — all writes land in
/// `jc..jc+nc ⊆ j0..j1`.
#[allow(clippy::too_many_arguments)]
fn gemm_cols(
    tier: SimdTier,
    cp: SendPtr<f32>,
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    j0: usize,
    j1: usize,
    m: usize,
    bufs: &mut PackBufs,
) {
    let (mr, nr, mc_blk) = (tier.mr(), tier.nr(), tier.mc());
    let mut jc = j0;
    while jc < j1 {
        let nc = NC.min(j1 - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            pack_b(&mut bufs.packed_b, b, n, pc, kc, jc, nc, nr);
            let mut ic = 0;
            while ic < m {
                let mc = mc_blk.min(m - ic);
                pack_a(&mut bufs.packed_a, a, k, ic, mc, pc, kc, mr);
                macro_kernel(
                    tier,
                    cp,
                    &bufs.packed_a,
                    &bufs.packed_b,
                    n,
                    ic,
                    mc,
                    kc,
                    jc,
                    nc,
                );
                ic += mc_blk;
            }
            pc += KC;
        }
        jc += NC;
    }
}

/// Sparse counterpart of [`gemm_cols`] over the column range `j0..j1`:
/// elides all-zero k panels via the shared `kblocks` census and walks
/// each row's stored entries with per-range cursors.
#[allow(clippy::too_many_arguments)]
// maxnvm-lint: allow(R1/index-arith): column offsets come from the CSR invariant cols[i] < k and the asserted b.len() == k*n, so col*n panels stay in range.
fn sparse_cols(
    tier: SimdTier,
    cp: SendPtr<f32>,
    a: &crate::sparse::SparseMatrix,
    b: &[f32],
    n: usize,
    j0: usize,
    j1: usize,
    kblocks: &[u32],
    bufs: &mut PackBufs,
) {
    let (m, k) = (a.rows(), a.cols());
    let nr = tier.nr();
    let mut jc = j0;
    while jc < j1 {
        let nc = NC.min(j1 - jc);
        let strips = nc.div_ceil(nr);
        bufs.cursors.clear();
        bufs.cursors.resize(m, 0);
        let mut pc = 0;
        let mut block = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            if kblocks[block] == 0 {
                // Zero panel elided: no row has an entry here, so the
                // cursors are already past it.
                pc += KC;
                block += 1;
                continue;
            }
            pack_b(&mut bufs.packed_b, b, n, pc, kc, jc, nc, nr);
            for i in 0..m {
                let (cols, vals) = a.row(i);
                let mut cur = bufs.cursors[i];
                // SAFETY: rows are disjoint between loop iterations and
                // the column range `jc..jc+nc ⊆ j0..j1` is owned by
                // this job (fixed band ownership), so no other slice or
                // job aliases this region; dropped before the next row.
                let crow = unsafe { core::slice::from_raw_parts_mut(cp.0.add(i * n + jc), nc) };
                while cur < cols.len() && (cols[cur] as usize) < pc + kc {
                    let kk = cols[cur] as usize - pc;
                    let av = vals[cur];
                    for s in 0..strips {
                        let width = nr.min(nc - s * nr);
                        let pb = &bufs.packed_b[(s * kc + kk) * nr..(s * kc + kk) * nr + width];
                        axpy(tier, &mut crow[s * nr..s * nr + width], pb, av);
                    }
                    cur += 1;
                }
                bufs.cursors[i] = cur;
            }
            pc += KC;
            block += 1;
        }
        jc += NC;
    }
}

/// Packs `a[ic.., pc..]` (`mc`×`kc`) into `mr`-tall strips:
/// `packed[(strip·kc + kk)·mr + i] = a[ic + strip·mr + i, pc + kk]`,
/// zero-padded past `mc` so the micro-kernel never branches on edges.
#[allow(clippy::too_many_arguments)]
// maxnvm-lint: allow(R1/index-arith): packed is resized to exactly strips*kc*MR before the copy loops; every index is a (strip, row, lane) triple inside those extents.
fn pack_a(
    packed: &mut Vec<f32>,
    a: &[f32],
    k: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    mr: usize,
) {
    let strips = mc.div_ceil(mr);
    packed.clear();
    packed.resize(strips * kc * mr, 0.0);
    for s in 0..strips {
        let base = s * kc * mr;
        for i in 0..mr {
            let row = s * mr + i;
            if row >= mc {
                continue; // padding stays zero
            }
            let src = &a[(ic + row) * k + pc..(ic + row) * k + pc + kc];
            for (kk, &v) in src.iter().enumerate() {
                packed[base + kk * mr + i] = v;
            }
        }
    }
}

/// Packs `b[pc.., jc..]` (`kc`×`nc`) into `nr`-wide strips:
/// `packed[(strip·kc + kk)·nr + j] = b[pc + kk, jc + strip·nr + j]`,
/// zero-padded past `nc`.
#[allow(clippy::too_many_arguments)]
// maxnvm-lint: allow(R1/index-arith): packed is resized to exactly strips*kc*NR before the copy loops; every index is a (strip, row, lane) triple inside those extents.
fn pack_b(
    packed: &mut Vec<f32>,
    b: &[f32],
    n: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    nr: usize,
) {
    let strips = nc.div_ceil(nr);
    packed.clear();
    packed.resize(strips * kc * nr, 0.0);
    for s in 0..strips {
        let base = s * kc * nr;
        let col = jc + s * nr;
        let width = nr.min(nc - s * nr);
        for kk in 0..kc {
            let src = &b[(pc + kk) * n + col..(pc + kk) * n + col + width];
            let dst = &mut packed[base + kk * nr..base + kk * nr + width];
            dst.copy_from_slice(src);
        }
    }
}

/// Runs the tier's `mr`×`nr` micro-kernel over every strip pair of one
/// (`mc`×`kc`)·(`kc`×`nc`) block, accumulating into `c`. Full tiles run
/// in place; edge tiles bounce through a zero-padded staging tile —
/// the live lanes' chains are identical either way, and padded lanes
/// multiply packed zeros (a bitwise no-op never stored back).
#[allow(clippy::too_many_arguments)]
// maxnvm-lint: allow(R1/index-arith): indexes the packed panels with the same strip/kc/lane extents pack_a/pack_b allocated; the micro-tile loops never exceed them.
fn macro_kernel(
    tier: SimdTier,
    cp: SendPtr<f32>,
    packed_a: &[f32],
    packed_b: &[f32],
    n: usize,
    ic: usize,
    mc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
) {
    let (mr, nr) = (tier.mr(), tier.nr());
    let mut stage = [0.0f32; MAX_TILE];
    for bs in 0..nc.div_ceil(nr) {
        let pb = &packed_b[bs * kc * nr..(bs + 1) * kc * nr];
        let cols = nr.min(nc - bs * nr);
        for asx in 0..mc.div_ceil(mr) {
            let pa = &packed_a[asx * kc * mr..(asx + 1) * kc * mr];
            let rows = mr.min(mc - asx * mr);
            let off = (ic + asx * mr) * n + jc + bs * nr;
            if rows == mr && cols == nr {
                // SAFETY: the full tile is in bounds (`ic + asx·mr + mr
                // ≤ m` rows of `n`-strided memory, `jc + bs·nr + nr ≤
                // jc + nc` columns inside this call's owned band) and
                // unaliased — fixed band ownership, serial within a
                // job.
                unsafe { micro_tile(tier, cp.0.add(off), n, pa, pb, kc) };
            } else {
                for (i, srow) in stage.chunks_mut(nr).enumerate().take(rows) {
                    // SAFETY: live-corner row `i` (`rows ≤ mr`, `cols ≤
                    // nr`) is in bounds and owned by this job; the
                    // shared slice is dropped before any write below.
                    let crow = unsafe { core::slice::from_raw_parts(cp.0.add(off + i * n), cols) };
                    srow[..cols].copy_from_slice(crow);
                }
                // SAFETY: `stage` holds mr·nr ≤ MAX_TILE floats at
                // stride nr; `pa`/`pb` hold kc·mr / kc·nr floats.
                unsafe { micro_tile(tier, stage.as_mut_ptr(), nr, pa, pb, kc) };
                for (i, srow) in stage.chunks(nr).enumerate().take(rows) {
                    // SAFETY: as above; rows are disjoint and each
                    // slice is dropped at the end of its iteration.
                    let crow =
                        unsafe { core::slice::from_raw_parts_mut(cp.0.add(off + i * n), cols) };
                    crow.copy_from_slice(&srow[..cols]);
                }
            }
        }
    }
}

/// Dispatches one full `mr`×`nr` tile to the active tier's kernel.
///
/// # Safety
///
/// `cp` must point at the tile's top-left element of a buffer where all
/// `mr` rows of `nr` elements at `stride` spacing are in bounds and not
/// concurrently accessed; `pa`/`pb` must hold `kc·mr` / `kc·nr` floats.
// SAFETY: `unsafe fn` — the pointer contract above is forwarded
// verbatim to the tier kernels; tier values other than Scalar are only
// produced by dispatch after feature detection, which is exactly the
// precondition the `#[target_feature]` kernels need.
unsafe fn micro_tile(
    tier: SimdTier,
    cp: *mut f32,
    stride: usize,
    pa: &[f32],
    pb: &[f32],
    kc: usize,
) {
    debug_assert!(pa.len() >= kc * tier.mr() && pb.len() >= kc * tier.nr());
    match tier {
        SimdTier::Scalar => {
            #[cfg(target_arch = "x86_64")]
            if dispatch::scalar_fma_available() {
                // SAFETY: hardware FMA detected; same pointer contract,
                // same per-element fused chain as the portable body.
                unsafe { kernel_x86::micro_4x8_fma(cp, stride, pa.as_ptr(), pb.as_ptr(), kc) };
                return;
            }
            // SAFETY: caller contract (4×8 tile in bounds).
            unsafe { micro_tile_mul_add::<4, 8>(cp, stride, pa.as_ptr(), pb.as_ptr(), kc) };
        }
        SimdTier::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: dispatch yields Avx2 only after detecting
            // avx2+fma; caller contract covers the 6×16 tile.
            unsafe {
                kernel_x86::micro_6x16_avx2(cp, stride, pa.as_ptr(), pb.as_ptr(), kc)
            };
            #[cfg(not(target_arch = "x86_64"))]
            // SAFETY: caller contract; dispatch never yields Avx2 off
            // x86-64, but the portable body keeps this arm total (and
            // bit-identical).
            unsafe {
                micro_tile_mul_add::<6, 16>(cp, stride, pa.as_ptr(), pb.as_ptr(), kc)
            };
        }
        SimdTier::Avx512 => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: dispatch yields Avx512 only after detecting
            // avx512f; caller contract covers the 8×32 tile.
            unsafe {
                kernel_x86::micro_8x32_avx512(cp, stride, pa.as_ptr(), pb.as_ptr(), kc)
            };
            #[cfg(not(target_arch = "x86_64"))]
            // SAFETY: caller contract; unreachable off x86-64 in
            // practice, portable body keeps this arm total.
            unsafe {
                micro_tile_mul_add::<8, 32>(cp, stride, pa.as_ptr(), pb.as_ptr(), kc)
            };
        }
        SimdTier::Neon => {
            #[cfg(target_arch = "aarch64")]
            // SAFETY: NEON is baseline on aarch64; caller contract
            // covers the 8×8 tile.
            unsafe {
                kernel_neon::micro_8x8_neon(cp, stride, pa.as_ptr(), pb.as_ptr(), kc)
            };
            #[cfg(not(target_arch = "aarch64"))]
            // SAFETY: caller contract; dispatch never yields Neon off
            // aarch64, portable body keeps this arm total.
            unsafe {
                micro_tile_mul_add::<8, 8>(cp, stride, pa.as_ptr(), pb.as_ptr(), kc)
            };
        }
    }
}

/// Portable register-tile body: one accumulator per output element,
/// `f32::mul_add` per term, ascending k — the reference semantics every
/// SIMD kernel must (and does) match bit for bit. `#[inline(always)]`
/// so `#[target_feature]` clones (e.g. `micro_4x8_fma`) compile it with
/// hardware FMA without changing semantics.
///
/// # Safety
///
/// Same pointer contract as [`micro_tile`] with `mr = TMR`, `nr = TNR`.
// SAFETY: `unsafe fn` — pointer contract documented above, discharged
// at each call site.
#[inline(always)]
unsafe fn micro_tile_mul_add<const TMR: usize, const TNR: usize>(
    cp: *mut f32,
    stride: usize,
    pa: *const f32,
    pb: *const f32,
    kc: usize,
) {
    // SAFETY: caller guarantees `pa`/`pb` hold kc·TMR / kc·TNR floats.
    let (pa, pb) = unsafe {
        (
            core::slice::from_raw_parts(pa, kc * TMR),
            core::slice::from_raw_parts(pb, kc * TNR),
        )
    };
    let mut acc = [[0.0f32; TNR]; TMR];
    for (i, arow) in acc.iter_mut().enumerate() {
        // SAFETY: caller guarantees row i of the tile is in bounds.
        let crow = unsafe { core::slice::from_raw_parts(cp.add(i * stride), TNR) };
        arow.copy_from_slice(crow);
    }
    for kk in 0..kc {
        let av = &pa[kk * TMR..kk * TMR + TMR];
        let bv = &pb[kk * TNR..kk * TNR + TNR];
        for (i, arow) in acc.iter_mut().enumerate() {
            let ai = av[i];
            for (cell, &bvj) in arow.iter_mut().zip(bv) {
                *cell = ai.mul_add(bvj, *cell);
            }
        }
    }
    for (i, arow) in acc.iter().enumerate() {
        // SAFETY: caller guarantees row i is in bounds and unaliased;
        // each row slice is dropped at the end of its iteration.
        let crow = unsafe { core::slice::from_raw_parts_mut(cp.add(i * stride), TNR) };
        crow.copy_from_slice(arow);
    }
}

/// `dst[j] = fma(a, src[j], dst[j])` on the active tier — the shared
/// building block of the row kernels and the sparse strip updates. One
/// fused rounding per element on every tier, so all routes are
/// bit-identical.
fn axpy(tier: SimdTier, dst: &mut [f32], src: &[f32], a: f32) {
    debug_assert_eq!(dst.len(), src.len());
    match tier {
        SimdTier::Scalar => {
            #[cfg(target_arch = "x86_64")]
            if dispatch::scalar_fma_available() {
                // SAFETY: hardware FMA detected; equal lengths checked
                // by the kernel itself.
                unsafe { kernel_x86::axpy_fma(dst, src, a) };
                return;
            }
            axpy_portable(dst, src, a);
        }
        SimdTier::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: dispatch yields Avx2 only after detecting
            // avx2+fma.
            unsafe {
                kernel_x86::axpy_avx2(dst, src, a)
            };
            #[cfg(not(target_arch = "x86_64"))]
            axpy_portable(dst, src, a);
        }
        SimdTier::Avx512 => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: dispatch yields Avx512 only after detecting
            // avx512f.
            unsafe {
                kernel_x86::axpy_avx512(dst, src, a)
            };
            #[cfg(not(target_arch = "x86_64"))]
            axpy_portable(dst, src, a);
        }
        SimdTier::Neon => {
            #[cfg(target_arch = "aarch64")]
            // SAFETY: NEON is baseline on aarch64.
            unsafe {
                kernel_neon::axpy_neon(dst, src, a)
            };
            #[cfg(not(target_arch = "aarch64"))]
            axpy_portable(dst, src, a);
        }
    }
}

/// Portable axpy body: one `f32::mul_add` per element — the reference
/// semantics for every tier's vector axpy and its tail.
fn axpy_portable(dst: &mut [f32], src: &[f32], a: f32) {
    for (o, &s) in dst.iter_mut().zip(src) {
        *o = a.mul_add(s, *o);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    /// The reference: textbook triple loop, no blocking, ascending-k
    /// fused accumulation per element (the chain the kernels promise).
    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc = a[i * k + kk].mul_add(b[kk * n + j], acc);
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn random(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect()
    }

    fn run_gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        gemm_into(&mut c, a, b, m, k, n, &mut GemmScratch::default());
        c
    }

    #[test]
    fn known_2x3_3x2() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [7.0, 8.0, 9.0, 10.0, 11.0, 12.0];
        assert_eq!(run_gemm(&a, &b, 2, 3, 2), vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matches_naive_bitwise_on_small_shapes() {
        // The kernel's per-element summation order equals the naive
        // ascending-k fused chain, so results are bit-identical, not
        // just close — the property the fault-delta forward relies on.
        for (m, k, n) in [(1, 1, 1), (3, 5, 7), (4, 8, 8), (5, 9, 17), (16, 16, 16)] {
            let a = random(m * k, 1 + (m * 100 + k * 10 + n) as u64);
            let b = random(k * n, 2 + (m * 100 + k * 10 + n) as u64);
            assert_eq!(
                run_gemm(&a, &b, m, k, n),
                naive(&a, &b, m, k, n),
                "{m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn matches_naive_across_tile_and_panel_boundaries() {
        // Shapes straddling every blocking constant of the *widest*
        // tier (mr/nr edges smaller than the tile, the KC panel split
        // where the C-tile reload must not reorder additions, and
        // mc/NC block edges), plus the scalar tier's narrow tile.
        let tier = active_tier();
        let (mr, nr, mc) = (tier.mr(), tier.nr(), tier.mc());
        let dims = [
            (mr - 1, KC - 1, nr - 1),
            (mr + 1, KC, nr + 1),
            (mc + 3, KC + 1, nr * 2 + 5),
            (2, 2 * KC + 3, 71),
            (3, 5, 33),
        ];
        for (m, k, n) in dims {
            let a = random(m * k, 77);
            let b = random(k * n, 78);
            assert_eq!(
                run_gemm(&a, &b, m, k, n),
                naive(&a, &b, m, k, n),
                "{m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn run_to_run_determinism() {
        let (m, k, n) = (37, 300, 53);
        let a = random(m * k, 5);
        let b = random(k * n, 6);
        let first = run_gemm(&a, &b, m, k, n);
        for _ in 0..3 {
            assert_eq!(run_gemm(&a, &b, m, k, n), first);
        }
        // A reused scratch (stale packing contents) must not leak.
        let mut scratch = GemmScratch::default();
        let mut junk = vec![0.0f32; 13 * 11];
        gemm_into(
            &mut junk,
            &random(13 * 7, 91),
            &random(7 * 11, 92),
            13,
            7,
            11,
            &mut scratch,
        );
        let mut c = vec![0.0f32; m * n];
        gemm_into(&mut c, &a, &b, m, k, n, &mut scratch);
        assert_eq!(c, first);
    }

    #[test]
    fn row_recompute_is_bit_identical_to_full_gemm() {
        let (m, k, n) = (9, KC + 5, 21);
        let a = random(m * k, 9);
        let b = random(k * n, 10);
        let full = run_gemm(&a, &b, m, k, n);
        let mut row = vec![0.0f32; n];
        for i in 0..m {
            gemm_row_into(&mut row, &a[i * k..(i + 1) * k], &b, k, n);
            assert_eq!(row, full[i * n..(i + 1) * n], "row {i}");
        }
    }

    #[test]
    fn fused_dot_matches_single_column_gemm() {
        let k = 2 * KC + 7;
        let a = random(k, 15);
        let b = random(k, 16);
        let mut c = [0.0f32];
        gemm_into(&mut c, &a, &b, 1, k, 1, &mut GemmScratch::default());
        assert_eq!(fused_dot(&a, &b).to_bits(), c[0].to_bits());
    }

    #[test]
    fn zero_dimensions_yield_zero_output() {
        // k = 0: the product is all zeros (and must not read the inputs).
        let mut c = vec![1.0f32; 6];
        gemm_into(&mut c, &[], &[], 2, 0, 3, &mut GemmScratch::default());
        assert_eq!(c, vec![0.0; 6]);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn scalar_fma_clone_matches_portable_body() {
        // The scalar tier's FMA-compiled clone is the same source as
        // the portable body; on a host with FMA both must produce the
        // same bits (hardware vfmadd vs libm fmaf — both one rounding).
        if !std::arch::is_x86_feature_detected!("fma") {
            return;
        }
        let kc = KC + 3;
        let pa = random(kc * 4, 61);
        let pb = random(kc * 8, 62);
        let init = random(4 * 8, 63);
        let mut hw = init.clone();
        let mut portable = init.clone();
        // SAFETY: FMA detected above; both buffers hold a full 4×8 tile
        // at stride 8, and pa/pb hold kc·4 / kc·8 floats.
        unsafe {
            kernel_x86::micro_4x8_fma(hw.as_mut_ptr(), 8, pa.as_ptr(), pb.as_ptr(), kc);
            micro_tile_mul_add::<4, 8>(portable.as_mut_ptr(), 8, pa.as_ptr(), pb.as_ptr(), kc);
        }
        for (h, p) in hw.iter().zip(&portable) {
            assert_eq!(h.to_bits(), p.to_bits());
        }
        let src = random(37, 64);
        let mut d_hw = random(37, 65);
        let mut d_po = d_hw.clone();
        // SAFETY: FMA detected above; equal slice lengths.
        unsafe { kernel_x86::axpy_fma(&mut d_hw, &src, 0.37) };
        axpy_portable(&mut d_po, &src, 0.37);
        for (h, p) in d_hw.iter().zip(&d_po) {
            assert_eq!(h.to_bits(), p.to_bits());
        }
    }

    /// A deterministic in-process stand-in for the engine pool: runs
    /// jobs sequentially (order irrelevant by fixed ownership).
    #[derive(Debug)]
    struct SeqParallel(usize);
    impl GemmParallel for SeqParallel {
        fn max_jobs(&self) -> usize {
            self.0
        }
        fn run(&self, jobs: usize, task: &(dyn Fn(usize) + Sync)) {
            // Reverse order on purpose: band ownership makes schedule
            // order irrelevant, and this exercises that.
            for j in (0..jobs).rev() {
                task(j);
            }
        }
    }

    #[test]
    fn parallel_bands_are_bit_identical_to_serial() {
        // Large enough to clear the fan-out gate on both axes.
        let (m, k, n) = (24, 170, 2 * PAR_MIN_COLS + 2 * active_tier().nr() + 3);
        assert!(m * k * n >= PAR_MIN_WORK);
        let a = random(m * k, 101);
        let b = random(k * n, 102);
        let serial = run_gemm(&a, &b, m, k, n);
        for jobs in [2, 3, 4, 7] {
            let mut scratch = GemmScratch::default();
            scratch.set_parallel(Some(Arc::new(SeqParallel(jobs))));
            let mut c = vec![0.0f32; m * n];
            gemm_into(&mut c, &a, &b, m, k, n, &mut scratch);
            assert_eq!(c, serial, "jobs={jobs}");
            // Sparse fan-out over the same bands (density below the
            // cutover so the genuinely sparse path runs).
            let sa = random_sparse(m * k, 103, 0.8);
            let sp = crate::sparse::SparseMatrix::from_dense(m, k, &sa);
            assert!(sp.density() <= SPARSE_DENSE_CUTOVER);
            let mut cs = vec![0.0f32; m * n];
            sparse_gemm_into(&mut cs, &sp, &b, n, &mut scratch);
            assert_bitwise_eq(
                &cs,
                &run_gemm(&sa, &b, m, k, n),
                &format!("sparse jobs={jobs}"),
            );
        }
    }

    #[test]
    fn band_edges_partition_and_align() {
        for (n, jobs, nr) in [(1024, 3, 32), (777, 2, 8), (4096, 7, 16), (513, 4, 8)] {
            let mut prev = 0;
            for j in 0..=jobs {
                let e = band_edge(n, jobs, nr, j);
                assert!(e >= prev, "monotone");
                assert!(j == jobs || e.is_multiple_of(nr), "aligned");
                prev = e;
            }
            assert_eq!(band_edge(n, jobs, nr, 0), 0);
            assert_eq!(band_edge(n, jobs, nr, jobs), n);
        }
    }

    /// Random matrix with an exact fraction of slots forced to zero.
    fn random_sparse(len: usize, seed: u64, sparsity: f64) -> Vec<f32> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut data = random(len, seed);
        let zeros = (len as f64 * sparsity).round() as usize;
        let mut slots: Vec<usize> = (0..len).collect();
        for i in (1..slots.len()).rev() {
            let j = rng.gen_range(0..=i);
            slots.swap(i, j);
        }
        for &s in slots.iter().take(zeros.min(len)) {
            data[s] = 0.0;
        }
        data
    }

    fn run_sparse(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let sp = crate::sparse::SparseMatrix::from_dense(m, k, a);
        let mut c = vec![0.0f32; m * n];
        sparse_gemm_into(&mut c, &sp, b, n, &mut GemmScratch::default());
        c
    }

    fn assert_bitwise_eq(got: &[f32], want: &[f32], ctx: &str) {
        assert_eq!(got.len(), want.len(), "{ctx}: length");
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "{ctx}: element {i} {g} vs {w}");
        }
    }

    #[test]
    fn sparse_matches_dense_bitwise_across_sparsities() {
        // 0% (fully dense — routed through the density cutover), the
        // Table-2 extremes (VGG12 0.409, LeNet5 0.899), and 100%
        // pruned, on shapes straddling the blocking constants (incl. a
        // k spanning multiple KC panels). 0.409 sparsity = 0.591
        // density sits *above* the cutover, 0.899 below — both routes
        // must agree with the dense kernel bitwise.
        let nr = active_tier().nr();
        let shapes = [(3, 5, 7), (5, KC + 3, nr * 2 + 5), (9, 2 * KC + 1, 33)];
        for sparsity in [0.0, 0.409, 0.899, 1.0] {
            for (m, k, n) in shapes {
                let a = random_sparse(m * k, 21 + (sparsity * 100.0) as u64, sparsity);
                let b = random(k * n, 22);
                assert_bitwise_eq(
                    &run_sparse(&a, &b, m, k, n),
                    &run_gemm(&a, &b, m, k, n),
                    &format!("{m}x{k}x{n} @ {sparsity}"),
                );
            }
        }
    }

    #[test]
    fn density_cutover_routes_both_ways_bitwise() {
        // Just-below and just-above the cutover around a fixed shape;
        // also exercises to_dense_into via the dense route.
        let (m, k, n) = (12, KC + 9, 29);
        for sparsity in [
            1.0 - SPARSE_DENSE_CUTOVER + 0.05,
            1.0 - SPARSE_DENSE_CUTOVER - 0.05,
        ] {
            let a = random_sparse(m * k, 333, sparsity);
            let b = random(k * n, 334);
            assert_bitwise_eq(
                &run_sparse(&a, &b, m, k, n),
                &run_gemm(&a, &b, m, k, n),
                &format!("cutover straddle @ {sparsity}"),
            );
        }
    }

    #[test]
    fn sparse_elides_zero_k_panels() {
        // Middle KC panel entirely zero: the sparse path skips packing
        // it; the result must still match the dense kernel bitwise.
        let (m, k, n) = (5, 3 * KC, 11);
        let mut a = random(m * k, 31);
        for row in 0..m {
            for kk in KC..2 * KC {
                a[row * k + kk] = 0.0;
            }
        }
        let b = random(k * n, 32);
        assert_bitwise_eq(
            &run_sparse(&a, &b, m, k, n),
            &run_gemm(&a, &b, m, k, n),
            "zero middle panel",
        );
    }

    #[test]
    fn all_zero_rows_and_columns_round_trip_both_paths() {
        // 100%-pruned regression: an all-zero layer, plus a mixed layer
        // with one all-zero row and one all-zero column, must produce
        // finite (all-zero / matching) outputs on both paths — no NaN,
        // no sign-of-zero divergence.
        let (m, k, n) = (6, 10, 9);
        let zeros = vec![0.0f32; m * k];
        let b = random(k * n, 41);
        let dense = run_gemm(&zeros, &b, m, k, n);
        assert!(dense.iter().all(|v| v.to_bits() == 0.0f32.to_bits()));
        assert_bitwise_eq(&run_sparse(&zeros, &b, m, k, n), &dense, "all-zero layer");

        let mut mixed = random(m * k, 42);
        for kk in 0..k {
            mixed[2 * k + kk] = 0.0; // all-zero output row
        }
        for row in 0..m {
            mixed[row * k + 4] = 0.0; // all-zero input column
        }
        let d = run_gemm(&mixed, &b, m, k, n);
        assert!(d.iter().all(|v| v.is_finite()));
        assert!(d[2 * n..3 * n]
            .iter()
            .all(|v| v.to_bits() == 0.0f32.to_bits()));
        assert_bitwise_eq(&run_sparse(&mixed, &b, m, k, n), &d, "zero row+col");
    }

    #[test]
    fn sparse_row_matches_dense_row_bitwise() {
        let (m, k, n) = (7, KC + 9, 13);
        let a = random_sparse(m * k, 51, 0.7);
        let b = random(k * n, 52);
        let sp = crate::sparse::SparseMatrix::from_dense(m, k, &a);
        let mut dense_row = vec![0.0f32; n];
        let mut sparse_row = vec![0.0f32; n];
        for i in 0..m {
            gemm_row_into(&mut dense_row, &a[i * k..(i + 1) * k], &b, k, n);
            let (cols, vals) = sp.row(i);
            sparse_row_into(&mut sparse_row, cols, vals, &b, k, n);
            assert_bitwise_eq(&sparse_row, &dense_row, &format!("row {i}"));
        }
    }

    #[test]
    fn sparse_zero_dimensions_yield_zero_output() {
        let sp = crate::sparse::SparseMatrix::from_dense(2, 0, &[]);
        let mut c = vec![1.0f32; 6];
        sparse_gemm_into(&mut c, &sp, &[], 3, &mut GemmScratch::default());
        assert_eq!(c, vec![0.0; 6]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// GEMM equals the naive reference on odd shapes around the
        /// tile sizes (1..34 covers every tier's mr±1 and nr±1; the
        /// explicit tests above cover KC±1).
        #[test]
        fn prop_matches_naive(
            m in 1usize..11, k in 1usize..17, n in 1usize..34, seed in any::<u64>()
        ) {
            let a = random(m * k, seed);
            let b = random(k * n, seed.wrapping_add(1));
            let got = run_gemm(&a, &b, m, k, n);
            let want = naive(&a, &b, m, k, n);
            prop_assert_eq!(got, want);
        }

        /// The sparse kernel equals the dense kernel bit for bit at any
        /// sparsity (both sides of the density cutover), including
        /// shapes with whole zero rows/columns.
        #[test]
        fn prop_sparse_matches_dense_bitwise(
            m in 1usize..10, k in 1usize..33, n in 1usize..34,
            sparsity in 0.0f64..1.0, seed in any::<u64>()
        ) {
            let a = random_sparse(m * k, seed, sparsity);
            let b = random(k * n, seed.wrapping_add(3));
            let got = run_sparse(&a, &b, m, k, n);
            let want = run_gemm(&a, &b, m, k, n);
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(g.to_bits(), w.to_bits());
            }
        }

        /// Every row of the blocked product is reproduced bit-exactly
        /// by the sequential row kernel.
        #[test]
        fn prop_row_kernel_matches(
            m in 1usize..9, k in 1usize..33, n in 1usize..34, seed in any::<u64>()
        ) {
            let a = random(m * k, seed);
            let b = random(k * n, seed.wrapping_add(2));
            let full = run_gemm(&a, &b, m, k, n);
            let mut row = vec![0.0f32; n];
            for i in 0..m {
                gemm_row_into(&mut row, &a[i * k..(i + 1) * k], &b, k, n);
                prop_assert_eq!(&row, &full[i * n..(i + 1) * n]);
            }
        }
    }
}
