//! DNN substrate for the MaxNVM reproduction.
//!
//! The paper evaluates four image-classification networks (Table 2):
//! LeNet5/MNIST, VGG12/CiFar10, VGG16/ImageNet and ResNet50/ImageNet. This
//! crate provides everything the co-design pipeline needs from the DNN
//! side, built from scratch:
//!
//! - [`tensor`]: a minimal row-major f32 tensor with matmul and im2col;
//! - [`layer`] / [`network`]: runnable networks (conv, linear, pooling,
//!   batch-norm, residual blocks) with forward inference and — for the
//!   architectures used in fault-injection experiments — SGD backprop;
//! - [`train`]: SGD with momentum and softmax cross-entropy;
//! - [`data`]: procedurally generated datasets standing in for
//!   MNIST/CiFar10/ImageNet (see `DESIGN.md` for the substitution
//!   argument);
//! - [`zoo`]: topology specifications of the paper's four models with
//!   parameter counts matching Table 2, plus small *trainable* stand-ins
//!   used for end-to-end accuracy-under-fault measurements.
//!
//! # Example
//!
//! ```
//! use maxnvm_dnn::data::SyntheticDigits;
//! use maxnvm_dnn::zoo;
//! use maxnvm_dnn::train::{sgd_train, TrainConfig};
//!
//! let data = SyntheticDigits::generate(200, 42);
//! let mut net = zoo::lenet_mini(7);
//! let cfg = TrainConfig { epochs: 1, ..TrainConfig::default() };
//! let report = sgd_train(&mut net, &data.train, &cfg).unwrap();
//! assert!(report.final_loss.is_finite());
//! ```

pub mod data;
pub mod gemm;
pub mod layer;
pub mod network;
pub mod prefix;
pub mod rnn;
pub mod sparse;
pub mod tensor;
pub mod train;
pub mod zoo;

pub use gemm::{
    active_tier, env_force_scalar, fused_dot, gemm_into, gemm_row_into, parse_force_scalar,
    sparse_gemm_into, sparse_row_into, supported_tiers, GemmParallel, GemmScratch,
    InvalidForceScalar, SimdTier, FORCE_SCALAR_ENV,
};
pub use layer::{ForwardScratch, Layer};
pub use network::{Network, WeightDelta};
pub use prefix::PrefixCache;
pub use sparse::SparseMatrix;
pub use tensor::{Tensor, TensorError};
pub use zoo::{LayerSpec, ModelSpec};
