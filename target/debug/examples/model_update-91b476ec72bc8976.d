/root/repo/target/debug/examples/model_update-91b476ec72bc8976.d: examples/model_update.rs

/root/repo/target/debug/examples/model_update-91b476ec72bc8976: examples/model_update.rs

examples/model_update.rs:
