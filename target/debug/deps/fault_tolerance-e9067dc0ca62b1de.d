/root/repo/target/debug/deps/fault_tolerance-e9067dc0ca62b1de.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-e9067dc0ca62b1de: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
