/root/repo/target/debug/deps/fault_injection-1fa0ad25a7b83ae4.d: crates/bench/benches/fault_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfault_injection-1fa0ad25a7b83ae4.rmeta: crates/bench/benches/fault_injection.rs Cargo.toml

crates/bench/benches/fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
