//! Criterion benchmarks for the fault-injection path: Monte-Carlo cell
//! sampling, full layer decode-under-faults, and the analytic damage
//! model that replaces injection at ImageNet scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use maxnvm_dnn::network::LayerMatrix;
use maxnvm_encoding::cluster::ClusteredLayer;
use maxnvm_encoding::estimate::LayerGeometry;
use maxnvm_encoding::storage::{StorageScheme, StoredLayer};
use maxnvm_encoding::EncodingKind;
use maxnvm_envm::{CellTechnology, FaultInjector, MlcConfig, SenseAmp};
use maxnvm_faultsim::analytic::layer_damage;
use maxnvm_faultsim::campaign::fault_maps;
use rand::{Rng, SeedableRng};

fn bench_cell_injection(c: &mut Criterion) {
    let mut group = c.benchmark_group("cell_injection");
    let cell = CellTechnology::MlcCtt.cell_model(MlcConfig::MLC3);
    let injector = FaultInjector::from_cell(&cell);
    for &n in &[10_000usize, 1_000_000] {
        let cells: Vec<u8> = (0..n).map(|i| (i % 8) as u8).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &cells, |b, base| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            b.iter(|| {
                let mut work = base.clone();
                injector.inject(&mut work, &mut rng)
            });
        });
    }
    group.finish();
}

fn bench_decode_with_faults(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let data: Vec<f32> = (0..128 * 1024)
        .map(|_| {
            if rng.gen::<f64>() < 0.7 {
                0.0
            } else {
                rng.gen::<f32>() + 0.1
            }
        })
        .collect();
    let m = LayerMatrix::new("l", 128, 1024, data);
    let clustered = ClusteredLayer::from_matrix(&m, 6, 3);
    let scheme = StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::MLC3).with_idx_sync();
    let stored = StoredLayer::store(&clustered, &scheme);
    let sa = SenseAmp::paper_default();
    let maps = fault_maps(CellTechnology::MlcCtt, &sa);
    let mut group = c.benchmark_group("trial");
    group.throughput(Throughput::Elements((128 * 1024) as u64));
    group.bench_function("decode_with_faults_128k", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        b.iter(|| stored.decode_with_faults(&maps, &mut rng));
    });
    group.finish();
}

fn bench_analytic_damage(c: &mut Criterion) {
    let sa = SenseAmp::paper_default();
    let geom = LayerGeometry::from_sparsity(4096, 25088, 0.811); // VGG16 fc6
    let scheme = StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::MLC3).with_idx_sync();
    c.bench_function("analytic_layer_damage_fc6", |b| {
        b.iter(|| layer_damage(geom, 6, &scheme, CellTechnology::MlcCtt, &sa))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cell_injection, bench_decode_with_faults, bench_analytic_damage
}
criterion_main!(benches);
