/root/repo/target/debug/deps/table4-7e60278718d1eafe.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-7e60278718d1eafe: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
