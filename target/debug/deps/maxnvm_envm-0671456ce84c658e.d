/root/repo/target/debug/deps/maxnvm_envm-0671456ce84c658e.d: crates/envm/src/lib.rs crates/envm/src/fault.rs crates/envm/src/gray.rs crates/envm/src/level.rs crates/envm/src/math.rs crates/envm/src/reference.rs crates/envm/src/retention.rs crates/envm/src/sense.rs crates/envm/src/tech.rs crates/envm/src/write.rs

/root/repo/target/debug/deps/libmaxnvm_envm-0671456ce84c658e.rlib: crates/envm/src/lib.rs crates/envm/src/fault.rs crates/envm/src/gray.rs crates/envm/src/level.rs crates/envm/src/math.rs crates/envm/src/reference.rs crates/envm/src/retention.rs crates/envm/src/sense.rs crates/envm/src/tech.rs crates/envm/src/write.rs

/root/repo/target/debug/deps/libmaxnvm_envm-0671456ce84c658e.rmeta: crates/envm/src/lib.rs crates/envm/src/fault.rs crates/envm/src/gray.rs crates/envm/src/level.rs crates/envm/src/math.rs crates/envm/src/reference.rs crates/envm/src/retention.rs crates/envm/src/sense.rs crates/envm/src/tech.rs crates/envm/src/write.rs

crates/envm/src/lib.rs:
crates/envm/src/fault.rs:
crates/envm/src/gray.rs:
crates/envm/src/level.rs:
crates/envm/src/math.rs:
crates/envm/src/reference.rs:
crates/envm/src/retention.rs:
crates/envm/src/sense.rs:
crates/envm/src/tech.rs:
crates/envm/src/write.rs:
