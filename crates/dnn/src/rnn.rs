//! A trainable Elman recurrent network — the runnable counterpart of the
//! `zoo::keyword_lstm` spec, so the recurrent low-reuse story (§5.2) can
//! be exercised end-to-end: train → prune/cluster → store in eNVM →
//! inject faults → measure sequence-classification accuracy.
//!
//! The cell is the classic `h_t = tanh(Wx·x_t + Wh·h_{t-1} + b)` with a
//! linear read-out from the final hidden state; training is truncated
//! back-propagation through time over the full (short) sequence.

use crate::gemm::{gemm_into, GemmScratch};
use crate::network::LayerMatrix;
use crate::tensor::Tensor;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A single-layer Elman RNN sequence classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElmanRnn {
    /// Model name.
    pub name: String,
    input: usize,
    hidden: usize,
    classes: usize,
    wx: Tensor, // [hidden, input]
    wh: Tensor, // [hidden, hidden]
    b: Vec<f32>,
    wo: Tensor, // [classes, hidden]
    bo: Vec<f32>,
}

/// A labelled sequence: `inputs[t]` is the `input`-dimensional frame at
/// step `t`.
pub type Sequence = (Vec<Vec<f32>>, usize);

impl ElmanRnn {
    /// Creates an RNN with He-style random initialization.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(input: usize, hidden: usize, classes: usize, seed: u64) -> Self {
        assert!(input > 0 && hidden > 0 && classes > 0, "degenerate shape");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut init = |rows: usize, cols: usize, scale: f32| -> Tensor {
            let std = scale / (cols as f32).sqrt();
            Tensor::from_vec(
                &[rows, cols],
                (0..rows * cols)
                    .map(|_| {
                        let u1: f32 = 1.0 - rng.gen::<f32>();
                        let u2: f32 = rng.gen();
                        std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
                    })
                    .collect(),
            )
        };
        Self {
            name: "elman-rnn".into(),
            input,
            hidden,
            classes,
            wx: init(hidden, input, 1.0),
            wh: init(hidden, hidden, 0.7),
            b: vec![0.0; hidden],
            wo: init(classes, hidden, 1.0),
            bo: vec![0.0; classes],
        }
    }

    /// Hidden state size.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Runs the recurrence, returning every hidden state (`T` entries).
    ///
    /// The input contribution `Wx·x_t` for *all* timesteps is computed as
    /// one blocked GEMM (frames stacked as the columns of `[input, T]`);
    /// only the sequential `Wh·h_{t-1}` part remains per-step.
    // maxnvm-lint: allow(R1/index-arith): x/wxx are allocated input*t_len and hidden*t_len in this fn; k, i and t come from enumerates over those same extents.
    fn run(&self, seq: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let t_len = seq.len();
        if t_len == 0 {
            return Vec::new();
        }
        let mut x = vec![0.0f32; self.input * t_len];
        for (t, frame) in seq.iter().enumerate() {
            assert_eq!(frame.len(), self.input, "frame size");
            for (k, &v) in frame.iter().enumerate() {
                x[k * t_len + t] = v;
            }
        }
        let mut wxx = vec![0.0f32; self.hidden * t_len];
        gemm_into(
            &mut wxx,
            self.wx.data(),
            &x,
            self.hidden,
            self.input,
            t_len,
            &mut GemmScratch::default(),
        );
        let mut h = vec![0.0f32; self.hidden];
        let mut states = Vec::with_capacity(t_len);
        for t in 0..t_len {
            let mut next = vec![0.0f32; self.hidden];
            for (i, n) in next.iter_mut().enumerate() {
                let wh_row = &self.wh.data()[i * self.hidden..(i + 1) * self.hidden];
                let mut acc = self.b[i] + wxx[i * t_len + t];
                for (w, v) in wh_row.iter().zip(&h) {
                    acc += w * v;
                }
                *n = acc.tanh();
            }
            h.copy_from_slice(&next);
            states.push(next);
        }
        states
    }

    /// Read-out logits for a hidden state: `wo · h + bo` via the blocked
    /// kernel (an `n = 1` GEMM).
    fn readout(&self, h: &[f32]) -> Vec<f32> {
        let mut logits = vec![0.0f32; self.classes];
        gemm_into(
            &mut logits,
            self.wo.data(),
            h,
            self.classes,
            self.hidden,
            1,
            &mut GemmScratch::default(),
        );
        for (l, &b) in logits.iter_mut().zip(&self.bo) {
            *l += b;
        }
        logits
    }

    /// Logits from the final hidden state.
    pub fn forward(&self, seq: &[Vec<f32>]) -> Vec<f32> {
        let states = self.run(seq);
        let h = states
            .last()
            .cloned()
            .unwrap_or_else(|| vec![0.0; self.hidden]);
        self.readout(&h)
    }

    /// Predicted class.
    pub fn predict(&self, seq: &[Vec<f32>]) -> usize {
        self.forward(seq)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map_or(0, |(i, _)| i)
    }

    /// Classification error rate over labelled sequences.
    pub fn error_rate(&self, samples: &[Sequence]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let wrong = samples
            .iter()
            .filter(|(s, y)| self.predict(s) != *y)
            .count();
        wrong as f64 / samples.len() as f64
    }

    /// One BPTT step on a single sequence; returns the loss.
    // maxnvm-lint: allow(R1/index-arith): every row slice is i*hidden or c*input with the index drawn from an enumerate over a vector of exactly the matching dimension.
    fn step(&mut self, seq: &[Vec<f32>], label: usize, lr: f32) -> f32 {
        let states = self.run(seq);
        let t_len = seq.len();
        let Some(h_last) = states.last() else {
            return 0.0; // empty sequence: nothing to learn from
        };

        // Softmax cross-entropy on the read-out.
        let logits: Vec<f32> = self.readout(h_last);
        let max = logits.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let exps: Vec<f32> = logits.iter().map(|&v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        let probs: Vec<f32> = exps.iter().map(|&e| e / sum).collect();
        let loss = -(probs[label].max(1e-12)).ln();
        let dlogits: Vec<f32> = probs
            .iter()
            .enumerate()
            .map(|(i, &p)| if i == label { p - 1.0 } else { p })
            .collect();

        // Read-out gradients + gradient into the last hidden state.
        let mut dh = vec![0.0f32; self.hidden];
        for (c, &g) in dlogits.iter().enumerate() {
            self.bo[c] -= lr * g;
            let row = &mut self.wo.data_mut()[c * self.hidden..(c + 1) * self.hidden];
            for (j, w) in row.iter_mut().enumerate() {
                dh[j] += g * *w;
                *w -= lr * g * h_last[j];
            }
        }

        // BPTT: walk backwards through time, applying updates immediately
        // (stochastic, no momentum — sufficient for the short sequences
        // the stand-in uses).
        for t in (0..t_len).rev() {
            let h_t = &states[t];
            let h_prev: Vec<f32> = if t == 0 {
                vec![0.0; self.hidden]
            } else {
                states[t - 1].clone()
            };
            // d(pre-activation) = dh * (1 - tanh^2)
            let dz: Vec<f32> = dh
                .iter()
                .zip(h_t)
                .map(|(&g, &h)| g * (1.0 - h * h))
                .collect();
            let mut dh_next = vec![0.0f32; self.hidden];
            for (i, &g) in dz.iter().enumerate() {
                self.b[i] -= lr * g;
                let wx_row = &mut self.wx.data_mut()[i * self.input..(i + 1) * self.input];
                for (w, &x) in wx_row.iter_mut().zip(&seq[t]) {
                    *w -= lr * g * x;
                }
                let wh_row = &mut self.wh.data_mut()[i * self.hidden..(i + 1) * self.hidden];
                for (j, w) in wh_row.iter_mut().enumerate() {
                    dh_next[j] += g * *w;
                    *w -= lr * g * h_prev[j];
                }
            }
            dh = dh_next;
        }
        loss
    }

    /// Trains with plain SGD over `epochs` shuffled passes.
    pub fn train(&mut self, samples: &[Sequence], epochs: usize, lr: f32, seed: u64) -> f32 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut last = 0.0;
        for _ in 0..epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0;
            for &i in &order {
                let (seq, y) = &samples[i];
                total += self.step(seq, *y, lr);
            }
            last = total / samples.len().max(1) as f32;
        }
        last
    }

    /// The three weight matrices in storage order (`wx`, `wh`, `wo`) —
    /// same contract as `Network::weight_matrices`.
    pub fn weight_matrices(&self) -> Vec<LayerMatrix> {
        vec![
            LayerMatrix::new("wx", self.hidden, self.input, self.wx.data().to_vec()),
            LayerMatrix::new("wh", self.hidden, self.hidden, self.wh.data().to_vec()),
            LayerMatrix::new("wo", self.classes, self.hidden, self.wo.data().to_vec()),
        ]
    }

    /// Writes weight matrices back (after an encode/decode round trip).
    ///
    /// # Panics
    ///
    /// Panics on count or shape mismatch.
    pub fn set_weight_matrices(&mut self, mats: &[LayerMatrix]) {
        assert_eq!(mats.len(), 3, "wx, wh, wo");
        assert_eq!((mats[0].rows, mats[0].cols), (self.hidden, self.input));
        assert_eq!((mats[1].rows, mats[1].cols), (self.hidden, self.hidden));
        assert_eq!((mats[2].rows, mats[2].cols), (self.classes, self.hidden));
        self.wx.data_mut().copy_from_slice(&mats[0].data);
        self.wh.data_mut().copy_from_slice(&mats[1].data);
        self.wo.data_mut().copy_from_slice(&mats[2].data);
    }
}

/// Synthetic sequence task: classify which of `classes` frequencies a
/// noisy multi-channel sinusoid carries — a keyword-spotting stand-in.
pub fn synthetic_sequences(
    n: usize,
    steps: usize,
    input: usize,
    classes: usize,
    seed: u64,
) -> Vec<Sequence> {
    assert!(classes >= 2 && steps >= 4 && input >= 1, "degenerate task");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let class = i % classes;
            let freq = 0.3 + class as f32 * (2.0 / classes as f32);
            let phase = rng.gen::<f32>() * std::f32::consts::TAU;
            let seq: Vec<Vec<f32>> = (0..steps)
                .map(|t| {
                    (0..input)
                        .map(|ch| {
                            (freq * t as f32 + phase + ch as f32 * 0.7).sin()
                                + (rng.gen::<f32>() - 0.5) * 0.3
                        })
                        .collect()
                })
                .collect();
            (seq, class)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rnn_learns_frequency_classification() {
        let train = synthetic_sequences(300, 12, 4, 3, 1);
        let test = synthetic_sequences(90, 12, 4, 3, 2);
        let mut rnn = ElmanRnn::new(4, 24, 3, 7);
        let before = rnn.error_rate(&test);
        let loss = rnn.train(&train, 12, 0.01, 3);
        let after = rnn.error_rate(&test);
        assert!(loss.is_finite());
        assert!(
            after < 0.15 && after < before,
            "test error {after} (before {before})"
        );
    }

    #[test]
    fn weight_matrix_round_trip() {
        let rnn = ElmanRnn::new(4, 8, 3, 1);
        let mut copy = rnn.clone();
        let mut mats = rnn.weight_matrices();
        assert_eq!(mats.len(), 3);
        mats[1].data[5] = 42.0;
        copy.set_weight_matrices(&mats);
        assert_eq!(copy.weight_matrices()[1].data[5], 42.0);
        assert_ne!(copy, rnn);
    }

    #[test]
    fn hidden_state_carries_information() {
        // The same final frame with different histories must be able to
        // produce different predictions (i.e., the recurrence matters).
        let mut rnn = ElmanRnn::new(2, 16, 2, 3);
        let train: Vec<Sequence> = (0..200)
            .map(|i| {
                // Class = whether the FIRST frame was positive; last frames
                // are identical noise.
                let class = i % 2;
                let first = if class == 0 {
                    vec![1.0, 1.0]
                } else {
                    vec![-1.0, -1.0]
                };
                let mut seq = vec![first];
                for t in 0..6 {
                    seq.push(vec![0.1 * (t as f32), 0.0]);
                }
                (seq, class)
            })
            .collect();
        rnn.train(&train, 30, 0.02, 4);
        assert!(rnn.error_rate(&train) < 0.1, "{}", rnn.error_rate(&train));
    }

    #[test]
    fn deterministic_construction() {
        let a = ElmanRnn::new(3, 5, 2, 9);
        let b = ElmanRnn::new(3, 5, 2, 9);
        assert_eq!(a, b);
        let c = ElmanRnn::new(3, 5, 2, 10);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "frame size")]
    fn rejects_wrong_frame_width() {
        let rnn = ElmanRnn::new(3, 5, 2, 1);
        rnn.forward(&[vec![1.0, 2.0]]);
    }
}
