//! The ablation binary's claims, held as invariants: each design knob's
//! direction of effect must not silently flip.

use maxnvm_encoding::estimate::LayerGeometry;
use maxnvm_encoding::storage::StorageScheme;
use maxnvm_encoding::EncodingKind;
use maxnvm_envm::level::{CellModel, LevelDistribution};
use maxnvm_envm::{CellTechnology, MlcConfig, SenseAmp};
use maxnvm_faultsim::analytic::layer_damage;

#[test]
fn guard_gap_is_load_bearing() {
    // Removing the CTT guard gap must blow up the unprogrammed pair's
    // misread rate by orders of magnitude.
    let with_gap = CellTechnology::MlcCtt.cell_model(MlcConfig::MLC3);
    let s0 = with_gap.levels()[0].sigma;
    let sp = with_gap.levels()[1].sigma;
    let no_gap = CellModel::new(
        (0..8)
            .map(|i| LevelDistribution::new(i as f64 / 7.0, if i == 0 { s0 } else { sp }))
            .collect(),
    );
    let ratio = no_gap.fault_map().p_up(0) / with_gap.fault_map().p_up(0);
    assert!(ratio > 100.0, "guard gap only buys {ratio}x");
}

#[test]
fn sense_amp_area_offset_tradeoff_is_monotone() {
    let cell = CellTechnology::MlcCtt.cell_model(MlcConfig::MLC3);
    let base = cell.fault_map().worst_adjacent_rate();
    let mut last_inflation = f64::INFINITY;
    for size in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let sa = SenseAmp::with_size_factor(size);
        let inflation = cell.with_sense_amp(&sa).fault_map().worst_adjacent_rate() / base;
        assert!(
            inflation < last_inflation,
            "bigger SA must reduce inflation: {inflation} at {size}x"
        );
        assert!((sa.relative_area() - size).abs() < 1e-9);
        last_inflation = inflation;
    }
}

#[test]
fn smaller_ecc_codewords_leave_less_residual_damage() {
    use maxnvm_ecc::SecDed;
    let geom = LayerGeometry::from_sparsity(4096, 25088, 0.811);
    let sa = SenseAmp::paper_default();
    let mut last = 0.0f64;
    for data_bits in [64usize * 8, 512 * 8, 4096 * 8] {
        let mut scheme = StorageScheme::uniform(EncodingKind::Csr, MlcConfig::MLC3).with_ecc();
        scheme.ecc_code = SecDed::new(data_bits);
        let d = layer_damage(geom, 6, &scheme, CellTechnology::MlcCtt, &sa);
        assert!(
            d.relative_mse > last,
            "bigger codewords must leave more residual: {} at {data_bits}",
            d.relative_mse
        );
        last = d.relative_mse;
    }
}

#[test]
fn smaller_idxsync_blocks_confine_more_damage() {
    let geom = LayerGeometry::from_sparsity(4096, 25088, 0.811);
    let sa = SenseAmp::paper_default();
    let mut last = 0.0f64;
    for block in [256usize, 1024, 4096, 16384] {
        let mut scheme = StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::MLC3)
            .with_idx_sync()
            .with_sync_block_bits(block);
        scheme.bpc.sync_counter = MlcConfig::SLC;
        let d = layer_damage(geom, 6, &scheme, CellTechnology::MlcCtt, &sa);
        assert!(
            d.relative_mse > last,
            "bigger blocks must hurt more: {} at {block}",
            d.relative_mse
        );
        last = d.relative_mse;
    }
}

#[test]
fn endurance_and_retention_rank_technologies_consistently() {
    use maxnvm_envm::retention::years_to_rate;
    use maxnvm_envm::EnduranceModel;
    // CTT: best retention, worst endurance+write; RRAM: the reverse.
    let ctt_ret = years_to_rate(
        CellTechnology::MlcCtt,
        &CellTechnology::MlcCtt.cell_model(MlcConfig::MLC3),
        1e-3,
    );
    let rram_ret = years_to_rate(
        CellTechnology::MlcRram,
        &CellTechnology::MlcRram.cell_model(MlcConfig::MLC3),
        1e-3,
    );
    assert!(ctt_ret > rram_ret);
    let ctt_end = EnduranceModel::for_tech(CellTechnology::MlcCtt).lifetime_years(3600.0);
    let rram_end = EnduranceModel::for_tech(CellTechnology::MlcRram).lifetime_years(3600.0);
    assert!(rram_end > ctt_end);
}
