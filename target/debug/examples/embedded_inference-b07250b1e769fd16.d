/root/repo/target/debug/examples/embedded_inference-b07250b1e769fd16.d: examples/embedded_inference.rs Cargo.toml

/root/repo/target/debug/examples/libembedded_inference-b07250b1e769fd16.rmeta: examples/embedded_inference.rs Cargo.toml

examples/embedded_inference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
