/root/repo/target/debug/deps/table1-402bf3d34946cb84.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-402bf3d34946cb84: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
