/root/repo/target/debug/deps/maxnvm_repro-89ccfa5a286d8e28.d: src/lib.rs

/root/repo/target/debug/deps/maxnvm_repro-89ccfa5a286d8e28: src/lib.rs

src/lib.rs:
