//! End-to-end fault-tolerance integration tests: a *real trained network*
//! through prune → cluster → encode → MLC cells → injected faults →
//! decode → inference, asserting the paper's §4 vulnerability findings.

use maxnvm_dnn::data::SyntheticDigits;
use maxnvm_dnn::train::{sgd_train, TrainConfig};
use maxnvm_dnn::zoo::{lenet_mini, prune_to_sparsity};
use maxnvm_encoding::cluster::ClusteredLayer;
use maxnvm_encoding::storage::{StorageScheme, StoredLayer, StructureBpc};
use maxnvm_encoding::{EncodingKind, StructureKind};
use maxnvm_envm::{CellTechnology, MlcConfig, SenseAmp};
use maxnvm_faultsim::campaign::Campaign;
use maxnvm_faultsim::evaluate::{AccuracyEval, NetworkEval};

/// Trains, prunes (with retraining) and clusters the stand-in model once.
fn trained_setup() -> (NetworkEval, Vec<ClusteredLayer>) {
    let data = SyntheticDigits::generate(1200, 42);
    let mut net = lenet_mini(17);
    let cfg = TrainConfig {
        epochs: 5,
        lr: 0.005,
        momentum: 0.9,
        seed: 5,
    };
    sgd_train(&mut net, &data.train, &cfg).expect("trainable");
    let mut mats = net.weight_matrices();
    for m in &mut mats {
        prune_to_sparsity(&mut m.data, 0.6);
    }
    net.set_weight_matrices(&mats);
    sgd_train(
        &mut net,
        &data.train,
        &TrainConfig {
            epochs: 2,
            lr: 0.002,
            momentum: 0.9,
            seed: 6,
        },
    )
    .expect("trainable");
    let mut mats = net.weight_matrices();
    for m in &mut mats {
        prune_to_sparsity(&mut m.data, 0.6);
    }
    net.set_weight_matrices(&mats);
    let clustered = mats
        .iter()
        .map(|m| ClusteredLayer::from_matrix(m, 4, 5))
        .collect();
    (NetworkEval::new(net, data.test), clustered)
}

fn campaign() -> Campaign {
    Campaign {
        trials: 20,
        seed: 9,
        // Stand-in scale: expected fault counts matched to a full-size
        // LeNet5 (~160x more cells).
        rate_scale: 160.0,
    }
}

fn isolated_error(
    eval: &NetworkEval,
    clustered: &[ClusteredLayer],
    encoding: EncodingKind,
    target: StructureKind,
    bpc: MlcConfig,
    idx_sync: bool,
    ecc: bool,
) -> f64 {
    let mut b = StructureBpc::uniform(MlcConfig::SLC);
    match target {
        StructureKind::Values => b.values = bpc,
        StructureKind::ColIndex => b.col_index = bpc,
        StructureKind::RowCounter => b.row_counter = bpc,
        StructureKind::Mask => b.mask = bpc,
        StructureKind::SyncCounter => b.sync_counter = bpc,
        StructureKind::Centroids => {}
    }
    let mut scheme = StorageScheme::uniform(encoding, MlcConfig::SLC).with_bpc(b);
    if idx_sync {
        scheme = scheme.with_idx_sync().with_sync_block_bits(64);
    }
    if ecc {
        scheme = scheme.with_ecc();
    }
    let stored: Vec<StoredLayer> = clustered
        .iter()
        .map(|c| StoredLayer::store(c, &scheme))
        .collect();
    campaign()
        .run_isolated(
            &stored,
            target,
            CellTechnology::MlcCtt,
            &SenseAmp::paper_default(),
            eval,
        )
        .expect("campaign")
        .mean_error
}

/// Error of the clustered (but fault-free) model — the reference every
/// fault campaign is compared against (clustering itself costs a little
/// accuracy, which is ITN-budgeted, not fault damage).
fn clustered_baseline(eval: &NetworkEval, clustered: &[ClusteredLayer]) -> f64 {
    eval.eval(
        &clustered
            .iter()
            .map(ClusteredLayer::reconstruct)
            .collect::<Vec<_>>(),
    )
}

#[test]
fn fig5_vulnerability_ordering_end_to_end() {
    let (eval, clustered) = trained_setup();
    assert!(eval.baseline_error() < 0.1, "stand-in failed to train");
    let base = clustered_baseline(&eval, &clustered);
    assert!(base < 0.15, "clustering destroyed the stand-in: {base}");

    // SLC storage is harmless for every structure.
    let slc_mask = isolated_error(
        &eval,
        &clustered,
        EncodingKind::BitMask,
        StructureKind::Mask,
        MlcConfig::SLC,
        false,
        false,
    );
    assert!(
        (slc_mask - base).abs() < 0.01,
        "SLC mask {slc_mask} vs {base}"
    );

    // MLC3: values are resilient, metadata is not, the mask is worst.
    let values = isolated_error(
        &eval,
        &clustered,
        EncodingKind::Csr,
        StructureKind::Values,
        MlcConfig::MLC3,
        false,
        false,
    );
    let counter = isolated_error(
        &eval,
        &clustered,
        EncodingKind::Csr,
        StructureKind::RowCounter,
        MlcConfig::MLC3,
        false,
        false,
    );
    let mask = isolated_error(
        &eval,
        &clustered,
        EncodingKind::BitMask,
        StructureKind::Mask,
        MlcConfig::MLC3,
        false,
        false,
    );
    assert!(
        values < counter && counter < mask,
        "vulnerability ordering: values {values}, counter {counter}, mask {mask}"
    );
    assert!(
        mask > base + 0.05,
        "unprotected MLC3 mask must visibly degrade: {mask} vs {base}"
    );
}

#[test]
fn fig5_protection_rescues_mlc3_end_to_end() {
    let (eval, clustered) = trained_setup();
    let base = clustered_baseline(&eval, &clustered);

    let mask_plain = isolated_error(
        &eval,
        &clustered,
        EncodingKind::BitMask,
        StructureKind::Mask,
        MlcConfig::MLC3,
        false,
        false,
    );
    let mask_sync = isolated_error(
        &eval,
        &clustered,
        EncodingKind::BitMask,
        StructureKind::Mask,
        MlcConfig::MLC3,
        true,
        false,
    );
    let mask_ecc = isolated_error(
        &eval,
        &clustered,
        EncodingKind::BitMask,
        StructureKind::Mask,
        MlcConfig::MLC3,
        false,
        true,
    );
    assert!(
        mask_sync < mask_plain && mask_ecc < mask_plain,
        "plain {mask_plain}, sync {mask_sync}, ecc {mask_ecc}"
    );
    assert!(
        mask_sync < base + 0.05,
        "IdxSync should bring MLC3 near baseline: {mask_sync} vs {base}"
    );

    let rc_plain = isolated_error(
        &eval,
        &clustered,
        EncodingKind::Csr,
        StructureKind::RowCounter,
        MlcConfig::MLC3,
        false,
        false,
    );
    let rc_ecc = isolated_error(
        &eval,
        &clustered,
        EncodingKind::Csr,
        StructureKind::RowCounter,
        MlcConfig::MLC3,
        false,
        true,
    );
    assert!(
        rc_ecc < rc_plain,
        "ECC must help row counters: {rc_ecc} vs {rc_plain}"
    );
    assert!(
        rc_ecc < base + 0.02,
        "ECC'd counters near baseline: {rc_ecc}"
    );
}

#[test]
fn full_storage_round_trip_is_lossless_without_faults() {
    let (eval, clustered) = trained_setup();
    for encoding in EncodingKind::ALL {
        let scheme = StorageScheme::uniform(encoding, MlcConfig::MLC3)
            .with_idx_sync()
            .with_ecc();
        let stored: Vec<StoredLayer> = clustered
            .iter()
            .map(|c| StoredLayer::store(c, &scheme))
            .collect();
        let mats: Vec<_> = stored.iter().map(|s| s.decode_clean().0).collect();
        let err = eval.eval(&mats);
        // Clustering itself costs a little accuracy; storage must add none.
        let clustered_err = eval.eval(
            &clustered
                .iter()
                .map(ClusteredLayer::reconstruct)
                .collect::<Vec<_>>(),
        );
        assert_eq!(err, clustered_err, "{encoding} round trip changed weights");
    }
}
