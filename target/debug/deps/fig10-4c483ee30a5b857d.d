/root/repo/target/debug/deps/fig10-4c483ee30a5b857d.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-4c483ee30a5b857d.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
