/root/repo/target/debug/deps/maxnvm_bits-636e0e1bc9229175.d: crates/bits/src/lib.rs

/root/repo/target/debug/deps/libmaxnvm_bits-636e0e1bc9229175.rlib: crates/bits/src/lib.rs

/root/repo/target/debug/deps/libmaxnvm_bits-636e0e1bc9229175.rmeta: crates/bits/src/lib.rs

crates/bits/src/lib.rs:
