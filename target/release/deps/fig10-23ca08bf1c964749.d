/root/repo/target/release/deps/fig10-23ca08bf1c964749.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-23ca08bf1c964749: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
