/root/repo/target/release/deps/table1-3f57263976189d01.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-3f57263976189d01: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
