/root/repo/target/debug/deps/fig8-69206c5208323ab5.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-69206c5208323ab5: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
