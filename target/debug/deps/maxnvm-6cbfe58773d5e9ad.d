/root/repo/target/debug/deps/maxnvm-6cbfe58773d5e9ad.d: crates/core/src/bin/maxnvm.rs

/root/repo/target/debug/deps/maxnvm-6cbfe58773d5e9ad: crates/core/src/bin/maxnvm.rs

crates/core/src/bin/maxnvm.rs:
