/root/repo/target/release/deps/table2-471c56ab3619f0fb.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-471c56ab3619f0fb: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
