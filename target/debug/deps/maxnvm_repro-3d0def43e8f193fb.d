/root/repo/target/debug/deps/maxnvm_repro-3d0def43e8f193fb.d: src/lib.rs

/root/repo/target/debug/deps/libmaxnvm_repro-3d0def43e8f193fb.rlib: src/lib.rs

/root/repo/target/debug/deps/libmaxnvm_repro-3d0def43e8f193fb.rmeta: src/lib.rs

src/lib.rs:
