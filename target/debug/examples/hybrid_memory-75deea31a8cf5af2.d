/root/repo/target/debug/examples/hybrid_memory-75deea31a8cf5af2.d: examples/hybrid_memory.rs Cargo.toml

/root/repo/target/debug/examples/libhybrid_memory-75deea31a8cf5af2.rmeta: examples/hybrid_memory.rs Cargo.toml

examples/hybrid_memory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
