/root/repo/target/debug/deps/maxnvm_dnn-d773b0d2d49efb3d.d: crates/dnn/src/lib.rs crates/dnn/src/data.rs crates/dnn/src/layer.rs crates/dnn/src/network.rs crates/dnn/src/rnn.rs crates/dnn/src/tensor.rs crates/dnn/src/train.rs crates/dnn/src/zoo.rs

/root/repo/target/debug/deps/libmaxnvm_dnn-d773b0d2d49efb3d.rlib: crates/dnn/src/lib.rs crates/dnn/src/data.rs crates/dnn/src/layer.rs crates/dnn/src/network.rs crates/dnn/src/rnn.rs crates/dnn/src/tensor.rs crates/dnn/src/train.rs crates/dnn/src/zoo.rs

/root/repo/target/debug/deps/libmaxnvm_dnn-d773b0d2d49efb3d.rmeta: crates/dnn/src/lib.rs crates/dnn/src/data.rs crates/dnn/src/layer.rs crates/dnn/src/network.rs crates/dnn/src/rnn.rs crates/dnn/src/tensor.rs crates/dnn/src/train.rs crates/dnn/src/zoo.rs

crates/dnn/src/lib.rs:
crates/dnn/src/data.rs:
crates/dnn/src/layer.rs:
crates/dnn/src/network.rs:
crates/dnn/src/rnn.rs:
crates/dnn/src/tensor.rs:
crates/dnn/src/train.rs:
crates/dnn/src/zoo.rs:
