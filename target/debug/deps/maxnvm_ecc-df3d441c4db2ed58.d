/root/repo/target/debug/deps/maxnvm_ecc-df3d441c4db2ed58.d: crates/ecc/src/lib.rs

/root/repo/target/debug/deps/maxnvm_ecc-df3d441c4db2ed58: crates/ecc/src/lib.rs

crates/ecc/src/lib.rs:
