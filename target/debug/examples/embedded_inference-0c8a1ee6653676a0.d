/root/repo/target/debug/examples/embedded_inference-0c8a1ee6653676a0.d: examples/embedded_inference.rs

/root/repo/target/debug/examples/embedded_inference-0c8a1ee6653676a0: examples/embedded_inference.rs

examples/embedded_inference.rs:
