/root/repo/target/debug/examples/design_space_exploration-bb42694eb3cc9754.d: examples/design_space_exploration.rs

/root/repo/target/debug/examples/design_space_exploration-bb42694eb3cc9754: examples/design_space_exploration.rs

examples/design_space_exploration.rs:
