//! The faultsim resilience layer, end to end: checkpoint/resume
//! (including a real SIGKILL mid-campaign), cooperative cancellation,
//! per-trial panic isolation, and adaptive early stopping — all while
//! preserving the engine's byte-identical determinism at any worker
//! count.

use maxnvm_dnn::network::LayerMatrix;
use maxnvm_dnn::zoo;
use maxnvm_encoding::cluster::ClusteredLayer;
use maxnvm_encoding::storage::{StorageScheme, StoredLayer};
use maxnvm_encoding::EncodingKind;
use maxnvm_envm::{CellTechnology, MlcConfig, SenseAmp};
use maxnvm_faultsim::evaluate::{AccuracyEval, EvalScratch};
use maxnvm_faultsim::{
    Campaign, CancelToken, CheckpointConfig, EarlyStop, EngineError, EvalContext, ProxyEval,
    RunControl,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

const TECH: CellTechnology = CellTechnology::MlcCtt;
const RATE_SCALE: f64 = 120.0;

/// A deterministic stand-in campaign: one sparse layer, exaggerated
/// rates so faults land, proxy evaluation. Identical in every process
/// (all stages seeded), which the cross-process resume test relies on.
fn fixture() -> (StoredLayer, ProxyEval) {
    let spec = zoo::vgg12();
    let m = spec.layers[4].sample_matrix(spec.paper.sparsity, 17, 48, 160);
    let c = ClusteredLayer::from_matrix(&m, 4, 5);
    let stored = StoredLayer::store(
        &c,
        &StorageScheme::uniform(EncodingKind::Csr, MlcConfig::MLC3),
    );
    let eval = ProxyEval::new(vec![c.reconstruct()], 0.1, 0.9);
    (stored, eval)
}

fn campaign() -> Campaign {
    Campaign {
        trials: 24,
        seed: 7,
        rate_scale: RATE_SCALE,
    }
}

fn sa() -> SenseAmp {
    SenseAmp::paper_default()
}

/// A unique path under the target-relative temp dir; avoids collisions
/// when the suite runs multi-threaded.
fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("maxnvm-resilience-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{name}-{}.ckpt", std::process::id()))
}

/// Wraps an evaluator with side effects per evaluation — a sleep (to
/// keep a child process killable mid-campaign) and/or firing a cancel
/// token after a fixed number of evals — without changing any value.
struct InstrumentedEval<'a> {
    inner: &'a ProxyEval,
    delay: Duration,
    cancel_after: Option<(usize, CancelToken)>,
    evals: AtomicUsize,
}

impl<'a> InstrumentedEval<'a> {
    fn slow(inner: &'a ProxyEval, delay: Duration) -> Self {
        Self {
            inner,
            delay,
            cancel_after: None,
            evals: AtomicUsize::new(0),
        }
    }

    fn cancelling(inner: &'a ProxyEval, after: usize, token: CancelToken) -> Self {
        Self {
            inner,
            delay: Duration::ZERO,
            cancel_after: Some((after, token)),
            evals: AtomicUsize::new(0),
        }
    }

    fn tick(&self) {
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        let n = self.evals.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some((after, token)) = &self.cancel_after {
            if n >= *after {
                token.cancel();
            }
        }
    }
}

impl AccuracyEval for InstrumentedEval<'_> {
    fn baseline_error(&self) -> f64 {
        self.inner.baseline_error()
    }

    fn eval(&self, mats: &[LayerMatrix]) -> f64 {
        self.tick();
        self.inner.eval(mats)
    }

    fn eval_scratch(&self, mats: &[LayerMatrix], scratch: &mut EvalScratch) -> f64 {
        self.tick();
        self.inner.eval_scratch(mats, scratch)
    }
}

#[test]
fn default_control_matches_plain_run() {
    let (stored, eval) = fixture();
    let plain = campaign()
        .run(std::slice::from_ref(&stored), TECH, &sa(), &eval)
        .expect("plain");
    let controlled = campaign()
        .run_controlled(
            std::slice::from_ref(&stored),
            TECH,
            &sa(),
            &eval,
            &RunControl::default(),
        )
        .expect("controlled");
    assert_eq!(plain, controlled);
    assert!(!controlled.cancelled);
    assert!(!controlled.stopped_early);
    assert_eq!(controlled.completed_trials, controlled.requested_trials);
}

#[test]
fn panicking_trial_is_isolated_and_reported() {
    let (stored, eval) = fixture();
    let plain = campaign()
        .run(std::slice::from_ref(&stored), TECH, &sa(), &eval)
        .expect("plain");
    let control = RunControl {
        panic_trials: vec![2],
        ..RunControl::default()
    };
    let result = campaign()
        .run_controlled(std::slice::from_ref(&stored), TECH, &sa(), &eval, &control)
        .expect("campaign must survive a panicking trial");
    assert_eq!(result.requested_trials, campaign().trials);
    assert_eq!(result.completed_trials, campaign().trials - 1);
    assert_eq!(result.failed_trials.len(), 1);
    let failure = &result.failed_trials[0];
    assert_eq!(failure.trial, 2);
    assert_eq!(failure.seed, campaign().seed.wrapping_add(2));
    assert!(
        failure.message.contains("injected panic"),
        "payload lost: {}",
        failure.message
    );
    // Every other trial is untouched: the surviving errors are exactly
    // the plain run's with trial 2 removed (per-trial seeding isolates
    // RNG streams).
    let mut expected = plain.errors.clone();
    expected.remove(2);
    assert_eq!(result.errors, expected);
    // The confidence interval reflects the reduced sample.
    assert_eq!(
        result.error_ci,
        maxnvm_faultsim::wilson_interval(result.mean_error, campaign().trials - 1, 1.96)
    );
}

#[test]
fn pre_cancelled_token_yields_empty_result() {
    let (stored, eval) = fixture();
    let token = CancelToken::new();
    token.cancel();
    let result = campaign()
        .run_controlled(
            std::slice::from_ref(&stored),
            TECH,
            &sa(),
            &eval,
            &RunControl::with_cancel(token),
        )
        .expect("cancelled run still returns cleanly");
    assert!(result.cancelled);
    assert_eq!(result.completed_trials, 0);
    assert_eq!(result.requested_trials, campaign().trials);
}

#[test]
fn expired_deadline_cancels_like_a_fired_token() {
    let (stored, eval) = fixture();
    let token = CancelToken::with_timeout(Duration::ZERO);
    let result = campaign()
        .run_controlled(
            std::slice::from_ref(&stored),
            TECH,
            &sa(),
            &eval,
            &RunControl::with_cancel(token),
        )
        .expect("deadline run still returns cleanly");
    assert!(result.cancelled);
    assert_eq!(result.completed_trials, 0);
}

#[test]
fn mid_run_cancellation_yields_clean_partial_result() {
    let (stored, eval) = fixture();
    let c = campaign();
    let token = CancelToken::new();
    let cancelling = InstrumentedEval::cancelling(&eval, 5, token.clone());
    // The token fires during the fifth evaluation, so at least five
    // trials complete; the scope caller helps the single pool worker run
    // jobs, so one more trial may already be in flight when the token
    // lands — the completed set is a contiguous trial prefix either way.
    let ctx = EvalContext::with_workers(TECH, &sa(), RATE_SCALE, 1).expect("ctx");
    let result = ctx
        .run_campaign_controlled(
            c.trials,
            c.seed,
            std::slice::from_ref(&stored),
            &cancelling,
            &RunControl::with_cancel(token),
        )
        .expect("cancelled run returns partial result");
    assert!(result.cancelled);
    assert!(
        result.completed_trials >= 5 && result.completed_trials < c.trials,
        "cut landed at {} of {}",
        result.completed_trials,
        c.trials
    );
    assert_eq!(result.requested_trials, c.trials);
    // The completed prefix keeps its per-trial streams: it matches the
    // uninterrupted run's leading trials exactly.
    let plain = c
        .run(std::slice::from_ref(&stored), TECH, &sa(), &eval)
        .expect("plain");
    assert_eq!(result.errors, plain.errors[..result.completed_trials]);
}

#[test]
fn interrupted_run_resumes_byte_identical_across_worker_counts() {
    let (stored, eval) = fixture();
    let c = campaign();
    let ckpt = temp_path("in-process-resume");
    let _ = std::fs::remove_file(&ckpt);
    // Uninterrupted truth, single worker.
    let ctx1 = EvalContext::with_workers(TECH, &sa(), RATE_SCALE, 1).expect("ctx");
    let uninterrupted = ctx1
        .run_campaign(c.trials, c.seed, std::slice::from_ref(&stored), &eval)
        .expect("uninterrupted run");
    // Interrupt a checkpointed run partway (cancel after 6 evals).
    let token = CancelToken::new();
    let cancelling = InstrumentedEval::cancelling(&eval, 6, token.clone());
    let max_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let ctx_many = EvalContext::with_workers(TECH, &sa(), RATE_SCALE, max_workers).expect("ctx");
    let control = RunControl {
        cancel: token,
        checkpoint: Some(CheckpointConfig::new(&ckpt).every(1)),
        ..RunControl::default()
    };
    let partial = ctx_many
        .run_campaign_controlled(
            c.trials,
            c.seed,
            std::slice::from_ref(&stored),
            &cancelling,
            &control,
        )
        .expect("partial run");
    assert!(partial.cancelled);
    assert!(partial.completed_trials < c.trials);
    assert!(ckpt.exists(), "cancelled run must leave its checkpoint");
    // Resume at a different worker count; the final result must be
    // byte-identical to the uninterrupted single-worker run.
    let resume_control = RunControl {
        checkpoint: Some(CheckpointConfig::new(&ckpt).every(4)),
        ..RunControl::default()
    };
    let resumed = ctx_many
        .run_campaign_controlled(
            c.trials,
            c.seed,
            std::slice::from_ref(&stored),
            &eval,
            &resume_control,
        )
        .expect("resumed run");
    assert_eq!(resumed, uninterrupted);
    assert!(
        !ckpt.exists(),
        "completed run must remove its checkpoint (keep_on_success off)"
    );
}

#[test]
fn checkpoint_from_a_different_configuration_is_rejected() {
    let (stored, eval) = fixture();
    let ckpt = temp_path("mismatch");
    let _ = std::fs::remove_file(&ckpt);
    let mut c = campaign();
    let keep = RunControl {
        checkpoint: Some(CheckpointConfig::new(&ckpt).every(8).keep_on_success()),
        ..RunControl::default()
    };
    c.run_controlled(std::slice::from_ref(&stored), TECH, &sa(), &eval, &keep)
        .expect("first run");
    assert!(ckpt.exists());
    // Same path, different seed: the fingerprint must not match.
    c.seed += 1;
    let err = c
        .resume_from(
            &ckpt,
            std::slice::from_ref(&stored),
            TECH,
            &sa(),
            &eval,
            &RunControl::default(),
        )
        .expect_err("a foreign checkpoint must be rejected");
    assert!(
        matches!(err, EngineError::CheckpointMismatch { .. }),
        "{err}"
    );
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn resume_without_a_checkpoint_is_a_typed_error() {
    let (stored, eval) = fixture();
    let err = campaign()
        .resume_from(
            temp_path("never-written"),
            std::slice::from_ref(&stored),
            TECH,
            &sa(),
            &eval,
            &RunControl::default(),
        )
        .expect_err("nothing to resume");
    assert!(matches!(err, EngineError::CheckpointIo { .. }), "{err}");
}

#[test]
fn garbage_checkpoint_is_a_typed_parse_error() {
    // Regression: a corrupted snapshot (disk damage, partial write by a
    // foreign tool) must surface as a typed error through
    // `Campaign::resume_from`, never a panic in the parser.
    let (stored, eval) = fixture();
    let ckpt = temp_path("garbage");
    std::fs::write(&ckpt, "maxnvm-checkpoint/v1\nfingerprint zzzz\n").expect("write garbage");
    let err = campaign()
        .resume_from(
            &ckpt,
            std::slice::from_ref(&stored),
            TECH,
            &sa(),
            &eval,
            &RunControl::default(),
        )
        .expect_err("garbage checkpoint must be rejected");
    assert!(matches!(err, EngineError::CheckpointParse { .. }), "{err}");

    // Bytes that are not even the right format at all.
    std::fs::write(&ckpt, "\u{0}\u{1}not a checkpoint").expect("write noise");
    let err = campaign()
        .resume_from(
            &ckpt,
            std::slice::from_ref(&stored),
            TECH,
            &sa(),
            &eval,
            &RunControl::default(),
        )
        .expect_err("noise must be rejected");
    assert!(matches!(err, EngineError::CheckpointParse { .. }), "{err}");
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn truncated_checkpoint_is_a_typed_parse_error() {
    // A checkpoint cut off mid-file (simulating a crash that beat the
    // atomic rename) must be rejected with a parse error, not resumed
    // from a silently shortened trial set.
    let (stored, eval) = fixture();
    let ckpt = temp_path("truncate");
    let _ = std::fs::remove_file(&ckpt);
    let c = campaign();
    let keep = RunControl {
        checkpoint: Some(CheckpointConfig::new(&ckpt).every(8).keep_on_success()),
        ..RunControl::default()
    };
    c.run_controlled(std::slice::from_ref(&stored), TECH, &sa(), &eval, &keep)
        .expect("first run");
    let text = std::fs::read_to_string(&ckpt).expect("read checkpoint");
    assert!(text.ends_with('\n') && text.contains("\nend "));
    // Cut the file in half: lands mid-entry, and the `end <count>`
    // trailer is gone either way.
    std::fs::write(&ckpt, &text[..text.len() / 2]).expect("truncate");
    let err = c
        .resume_from(
            &ckpt,
            std::slice::from_ref(&stored),
            TECH,
            &sa(),
            &eval,
            &RunControl::default(),
        )
        .expect_err("truncated checkpoint must be rejected");
    assert!(matches!(err, EngineError::CheckpointParse { .. }), "{err}");
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn deadline_expiring_between_trials_yields_well_formed_partial_result() {
    // An armed deadline that expires while trials run (not before the
    // campaign starts): wherever the cut lands, the partial result must
    // stay internally consistent — cancelled flagged, statistics over
    // exactly the completed prefix, and that prefix byte-identical to
    // the uninterrupted run's.
    let (stored, eval) = fixture();
    let c = campaign();
    // 24 trials at >=10 ms each against a 40 ms budget: the deadline is
    // guaranteed to fire mid-campaign, at a timing-dependent trial.
    let token = CancelToken::with_timeout(Duration::from_millis(40));
    let slow = InstrumentedEval::slow(&eval, Duration::from_millis(10));
    let ctx = EvalContext::with_workers(TECH, &sa(), RATE_SCALE, 1).expect("ctx");
    let result = ctx
        .run_campaign_controlled(
            c.trials,
            c.seed,
            std::slice::from_ref(&stored),
            &slow,
            &RunControl::with_cancel(token),
        )
        .expect("deadline run returns a partial result");
    assert!(result.cancelled);
    assert!(result.completed_trials < c.trials);
    assert_eq!(result.requested_trials, c.trials);
    assert_eq!(result.errors.len(), result.completed_trials);
    if result.completed_trials > 0 {
        assert!(result.mean_error.is_finite());
        assert!(result.max_error.is_finite());
        // The completed prefix keeps its per-trial seed streams.
        let plain = c
            .run(std::slice::from_ref(&stored), TECH, &sa(), &eval)
            .expect("plain");
        assert_eq!(result.errors, plain.errors[..result.completed_trials]);
    }
}

#[test]
fn early_stopping_halts_a_decisive_campaign_deterministically() {
    let (stored, eval) = fixture();
    let c = Campaign {
        trials: 200,
        seed: 7,
        // Saturating rates push every trial's error toward the proxy
        // ceiling (0.9), far above baseline + bound — the Wilson
        // interval decides "fail" at the first batch boundary.
        rate_scale: 5000.0,
    };
    let control = RunControl {
        early_stop: Some(EarlyStop::new(eval.baseline_error(), 0.05)),
        ..RunControl::default()
    };
    let run = |workers: usize| {
        EvalContext::with_workers(TECH, &sa(), c.rate_scale, workers)
            .expect("ctx")
            .run_campaign_controlled(
                c.trials,
                c.seed,
                std::slice::from_ref(&stored),
                &eval,
                &control,
            )
            .expect("early-stopped run")
    };
    let result = run(1);
    assert!(
        result.mean_error > eval.baseline_error() + 0.05,
        "fixture not decisive: mean {}",
        result.mean_error
    );
    assert!(result.stopped_early);
    assert!(
        result.completed_trials < c.trials,
        "stopped early but ran the full {} budget",
        c.trials
    );
    // The stopping decision is part of the deterministic contract.
    let max_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    assert_eq!(result, run(max_workers));
    // Early stopping stays opt-in: the same campaign without the rule
    // runs its full budget.
    let full = EvalContext::with_workers(TECH, &sa(), c.rate_scale, 2)
        .expect("ctx")
        .run_campaign(c.trials, c.seed, std::slice::from_ref(&stored), &eval)
        .expect("full run");
    assert_eq!(full.completed_trials, c.trials);
    assert!(!full.stopped_early);
}

// ---------------------------------------------------------------------
// Kill-and-resume: a real SIGKILL mid-campaign, then a byte-identical
// resume in a fresh process (this one).
// ---------------------------------------------------------------------

const CHILD_ENV: &str = "MAXNVM_RESILIENCE_CHILD_CHECKPOINT";

fn kill_resume_campaign() -> Campaign {
    Campaign {
        trials: 40,
        seed: 11,
        rate_scale: RATE_SCALE,
    }
}

/// Child half of the kill-and-resume test: runs a checkpointed campaign
/// slowly enough for the parent to SIGKILL it mid-run. Ignored unless
/// re-executed by `sigkilled_campaign_resumes_byte_identical` with the
/// checkpoint path in the environment.
#[test]
#[ignore = "child process entry point for the kill-and-resume test"]
fn child_campaign_runner() {
    let Ok(ckpt) = std::env::var(CHILD_ENV) else {
        return;
    };
    let (stored, eval) = fixture();
    let slow = InstrumentedEval::slow(&eval, Duration::from_millis(25));
    let c = kill_resume_campaign();
    let control = RunControl {
        // Flush after every trial and keep the file even if the child
        // outruns the parent's kill — resume must work either way.
        checkpoint: Some(CheckpointConfig::new(&ckpt).every(1).keep_on_success()),
        ..RunControl::default()
    };
    c.run_controlled(std::slice::from_ref(&stored), TECH, &sa(), &slow, &control)
        .expect("child campaign");
}

#[test]
fn sigkilled_campaign_resumes_byte_identical() {
    let (stored, eval) = fixture();
    let c = kill_resume_campaign();
    let uninterrupted = c
        .run(std::slice::from_ref(&stored), TECH, &sa(), &eval)
        .expect("uninterrupted run");
    let ckpt = temp_path("sigkill");
    let _ = std::fs::remove_file(&ckpt);
    let exe = std::env::current_exe().expect("test binary path");
    let mut child = std::process::Command::new(exe)
        .args([
            "child_campaign_runner",
            "--exact",
            "--ignored",
            "--nocapture",
        ])
        .env(CHILD_ENV, &ckpt)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child");
    // Wait until the child has durably completed at least one trial,
    // then kill it without warning (SIGKILL on unix).
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while !ckpt.exists() {
        assert!(
            std::time::Instant::now() < deadline,
            "child never wrote a checkpoint"
        );
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("child exited before writing a checkpoint: {status}");
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("kill child");
    let _ = child.wait();
    // Resume in this process and compare against the uninterrupted run.
    let resumed = c
        .resume_from(
            &ckpt,
            std::slice::from_ref(&stored),
            TECH,
            &sa(),
            &eval,
            &RunControl::default(),
        )
        .expect("resume after SIGKILL");
    assert_eq!(resumed, uninterrupted);
    let _ = std::fs::remove_file(&ckpt);
}
