/root/repo/target/debug/deps/maxnvm-5b19c174c28d7a23.d: crates/core/src/lib.rs

/root/repo/target/debug/deps/libmaxnvm-5b19c174c28d7a23.rlib: crates/core/src/lib.rs

/root/repo/target/debug/deps/libmaxnvm-5b19c174c28d7a23.rmeta: crates/core/src/lib.rs

crates/core/src/lib.rs:
