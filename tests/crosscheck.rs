//! Cross-crate consistency checks: the analytic estimators used for
//! ImageNet-scale models must agree with the concrete encoders and the
//! Monte-Carlo injection path they stand in for.

use maxnvm_dnn::network::LayerMatrix;
use maxnvm_dnn::zoo::{self, ModelSpec};
use maxnvm_encoding::cluster::ClusteredLayer;
use maxnvm_encoding::estimate::{encoded_bits, estimate_cells, LayerGeometry};
use maxnvm_encoding::storage::{StorageScheme, StoredLayer};
use maxnvm_encoding::EncodingKind;
use maxnvm_envm::{CellTechnology, MlcConfig, SenseAmp};
use maxnvm_faultsim::analytic::layer_damage;
use maxnvm_faultsim::campaign::fault_maps;
use maxnvm_faultsim::evaluate::ProxyEval;
use rand::{Rng, SeedableRng};

fn random_layer(rows: usize, cols: usize, sparsity: f64, seed: u64) -> ClusteredLayer {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| {
            if rng.gen::<f64>() < sparsity {
                0.0
            } else {
                rng.gen::<f32>() + 0.05
            }
        })
        .collect();
    ClusteredLayer::from_matrix(&LayerMatrix::new("x", rows, cols, data), 4, seed)
}

#[test]
fn cell_estimates_track_concrete_storage_across_shapes() {
    for (rows, cols, sparsity) in [(16, 64, 0.3), (64, 256, 0.8), (8, 1000, 0.95)] {
        let c = random_layer(rows, cols, sparsity, 7);
        let geom = LayerGeometry {
            rows: rows as u64,
            cols: cols as u64,
            nnz: c.nonzeros() as u64,
        };
        for enc in EncodingKind::ALL {
            let scheme = StorageScheme::uniform(enc, MlcConfig::MLC3).with_idx_sync();
            let concrete = StoredLayer::store(&c, &scheme).total_cells();
            let est = estimate_cells(geom, 4, &scheme);
            let rel = (est as f64 - concrete as f64).abs() / concrete as f64;
            // Centroid-table occupancy and CSR padding are estimated;
            // everything else is exact.
            assert!(
                rel < 0.02,
                "{enc} {rows}x{cols}@{sparsity}: est {est} vs concrete {concrete}"
            );
        }
    }
}

#[test]
fn nvdla_weight_bytes_agree_with_encoding_estimates() {
    // The NVDLA perf model sizes encoded weights through the same
    // estimator the storage DSE uses.
    for spec in ModelSpec::paper_models() {
        for (enc, idx_sync) in [
            (EncodingKind::DenseClustered, false),
            (EncodingKind::Csr, false),
            (EncodingKind::BitMask, true),
        ] {
            let from_nvdla: u64 = maxnvm_nvdla::perf::encoded_weight_bytes(&spec, enc, idx_sync)
                .iter()
                .sum();
            let from_encoding: u64 = spec
                .layers
                .iter()
                .map(|l| {
                    let g = LayerGeometry::from_sparsity(
                        l.rows as u64,
                        l.cols as u64,
                        spec.paper.sparsity,
                    );
                    encoded_bits(g, spec.paper.cluster_index_bits, enc, idx_sync)
                        .total_bits()
                        .div_ceil(8)
                })
                .sum();
            assert_eq!(from_nvdla, from_encoding, "{} {enc}", spec.name);
        }
    }
}

/// Zero-mean weights, as real DNN layers have — the analytic damage model
/// assumes `E[(w'-w)^2] = 2 E[w^2]` for decorrelated replacements, which
/// only holds for (near-)zero-mean weight distributions.
fn symmetric_layer(rows: usize, cols: usize, sparsity: f64, seed: u64) -> ClusteredLayer {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| {
            if rng.gen::<f64>() < sparsity {
                0.0
            } else {
                (rng.gen::<f32>() - 0.5) * 2.0
            }
        })
        .collect();
    ClusteredLayer::from_matrix(&LayerMatrix::new("x", rows, cols, data), 4, seed)
}

#[test]
fn analytic_damage_tracks_monte_carlo_at_layer_scale() {
    // The analytic model must predict the Monte-Carlo relative MSE within
    // a small factor for a BitMask layer with exaggerated rates.
    let c = symmetric_layer(96, 512, 0.6, 21);
    let scheme = StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::MLC3).with_idx_sync();
    let stored = StoredLayer::store(&c, &scheme);
    let tech = CellTechnology::MlcRram;
    let sa = SenseAmp::new(0.0);
    // Modest exaggeration: keeps expected faults per IdxSync block well
    // below one, where the analytic model's linear-in-rate regime (the
    // regime real deployments live in) is valid.
    let scale = 40.0;
    let base = fault_maps(tech, &sa);
    let fault_for = move |cfg: MlcConfig| std::sync::Arc::new(base(cfg).scaled(scale));
    let proxy = ProxyEval::new(vec![c.reconstruct()], 0.0, 1.0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let trials = 150;
    let mc: f64 = (0..trials)
        .map(|_| {
            let (m, _) = stored.decode_with_faults(&fault_for, &mut rng);
            proxy.relative_mse(std::slice::from_ref(&m))
        })
        .sum::<f64>()
        / trials as f64;

    // Analytic with the same scaling: recompute via a scaled closed form.
    let geom = LayerGeometry {
        rows: 96,
        cols: 512,
        nnz: c.nonzeros() as u64,
    };
    // layer_damage uses unscaled rates; multiply its (linear-regime)
    // output by the same factor for comparison.
    let d = layer_damage(geom, 4, &scheme, tech, &sa);
    let analytic = d.relative_mse * scale;
    let ratio = mc / analytic;
    assert!(
        (0.25..4.0).contains(&ratio),
        "Monte-Carlo {mc} vs analytic {analytic} (ratio {ratio})"
    );
}

#[test]
fn spec_sample_matrices_reproduce_declared_sparsity() {
    // The spec-level synthesis path must deliver the Table 2 sparsity the
    // analytic pipeline assumes.
    for spec in [zoo::vgg16(), zoo::resnet50()] {
        for layer in spec.layers.iter().step_by(7) {
            let m = layer.sample_matrix(spec.paper.sparsity, 11, 128, 512);
            assert!(
                (m.sparsity() - spec.paper.sparsity).abs() < 0.03,
                "{}/{}: sparsity {}",
                spec.name,
                layer.name,
                m.sparsity()
            );
        }
    }
}

#[test]
fn concrete_and_spec_dse_agree_on_protection_necessity() {
    // Both exploration paths must agree that an unprotected MLC3 bitmask
    // fails while the IdxSync+SLC-counter variant passes, at VGG16 scale.
    let spec = zoo::vgg16();
    let sa = SenseAmp::paper_default();
    let points = maxnvm_faultsim::dse::explore_spec(
        &spec,
        CellTechnology::MlcCtt,
        &sa,
        spec.paper.itn_bound,
    );
    let plain = points
        .iter()
        .find(|p| {
            p.scheme.encoding == EncodingKind::BitMask
                && !p.scheme.idx_sync
                && p.scheme.bpc.mask == MlcConfig::MLC3
                && p.scheme.bpc.values == MlcConfig::MLC3
                && p.scheme.ecc == maxnvm_encoding::storage::EccScope::None
        })
        .expect("plain point");
    assert!(!plain.passes);
    let protected = points
        .iter()
        .filter(|p| {
            p.scheme.encoding == EncodingKind::BitMask
                && p.scheme.idx_sync
                && p.scheme.bpc.mask == MlcConfig::MLC3
                && p.passes
        })
        .count();
    assert!(
        protected > 0,
        "no protected MLC3 bitmask configuration passes"
    );
}
