/root/repo/target/debug/deps/maxnvm_nvdla-29cc8318d06043a8.d: crates/nvdla/src/lib.rs crates/nvdla/src/config.rs crates/nvdla/src/hybrid.rs crates/nvdla/src/nonvolatility.rs crates/nvdla/src/perf.rs crates/nvdla/src/source.rs

/root/repo/target/debug/deps/libmaxnvm_nvdla-29cc8318d06043a8.rlib: crates/nvdla/src/lib.rs crates/nvdla/src/config.rs crates/nvdla/src/hybrid.rs crates/nvdla/src/nonvolatility.rs crates/nvdla/src/perf.rs crates/nvdla/src/source.rs

/root/repo/target/debug/deps/libmaxnvm_nvdla-29cc8318d06043a8.rmeta: crates/nvdla/src/lib.rs crates/nvdla/src/config.rs crates/nvdla/src/hybrid.rs crates/nvdla/src/nonvolatility.rs crates/nvdla/src/perf.rs crates/nvdla/src/source.rs

crates/nvdla/src/lib.rs:
crates/nvdla/src/config.rs:
crates/nvdla/src/hybrid.rs:
crates/nvdla/src/nonvolatility.rs:
crates/nvdla/src/perf.rs:
crates/nvdla/src/source.rs:
