//! Clean-prefix activation cache for fault-delta inference.
//!
//! A Monte-Carlo fault trial perturbs a handful of weight slots and asks
//! for the network's predictions. Layers *before* the earliest perturbed
//! layer see exactly the clean inputs, so their activations can be
//! computed once and reused by every trial. This cache stores, for one
//! fixed evaluation batch:
//!
//! - the clean batch activations entering every layer (and the final
//!   logits), and
//! - for each weight layer, the packed `[k, n·p]` right-hand matrix its
//!   GEMM consumes (a pure function of the clean activations).
//!
//! A trial then only (1) recomputes the *dirty rows* of the first
//! perturbed layer's output — one [`gemm_row_into`] per touched weight
//! row, O(rows·k·batch) instead of a full GEMM — starting from a clone of
//! that layer's cached clean output, and (2) runs the remaining suffix
//! layers normally. The result is bit-identical to a full faulty forward
//! pass: [`gemm_row_into`] reproduces any row of the blocked kernel bit
//! for bit (see [`crate::gemm`]), untouched rows are byte-copies of the
//! clean output, and the suffix runs the very same code either way.
//! This holds on every SIMD dispatch tier: the row kernels route through
//! the same tier table as the blocked GEMM, and all tiers compute the
//! identical fused-multiply-add chains (DESIGN.md §14), so a cache built
//! while one tier is active replays bit-identically under any other —
//! including under the within-trial GEMM fan-out, whose fixed N-panel
//! ownership never changes per-element operation order.
//!
//! Only "flat" networks (no [`Layer::Residual`]) are supported —
//! [`PrefixCache::build`] returns `None` otherwise and callers fall back
//! to a full forward pass.

use crate::gemm::{gemm_row_into, sparse_row_into};
use crate::layer::{ForwardScratch, Layer, RhsMeta};
use crate::network::Network;
use crate::sparse::SparseMatrix;
use crate::tensor::Tensor;

/// One weight layer's cached geometry: where it sits in the network and
/// the packed right-hand matrix its GEMM consumes.
#[derive(Debug, Clone)]
struct Site {
    /// Index of the weight layer in `Network::layers`.
    layer_pos: usize,
    /// Packed `[k, n·per_cols]` input matrix (im2col patches / stacked
    /// vectors) built from the clean activations entering the layer.
    rhs: Vec<f32>,
    /// Geometry of `rhs` and the layer's output.
    meta: RhsMeta,
}

/// Cached clean forward pass of one fixed batch — see the module docs.
/// Sites are indexed like [`Network::weight_matrices`] (valid because
/// residual networks are rejected at build time, so every weight layer is
/// top-level and in execution order).
#[derive(Debug, Clone)]
pub struct PrefixCache {
    /// `acts[i]` = batch activations entering layer `i`; `acts[layers]` =
    /// final logits.
    acts: Vec<Vec<Tensor>>,
    sites: Vec<Site>,
}

impl PrefixCache {
    /// Runs one clean batched forward pass, recording every intermediate
    /// activation and each weight layer's packed right-hand matrix.
    /// Returns `None` for networks containing residual blocks (their
    /// weight layers are nested, which the row-patching path does not
    /// model) — callers fall back to full forward passes.
    pub fn build(net: &Network, inputs: &[Tensor], scratch: &mut ForwardScratch) -> Option<Self> {
        Self::build_sparse(net, inputs, &[], scratch)
    }

    /// [`PrefixCache::build`] with clean activations computed from
    /// sparse-encoded weights: weight layer `i` (in site order, ==
    /// [`Network::weight_matrices`] order) multiplies from `weights[i]`
    /// when present, reusing the site's already-packed right-hand matrix
    /// — so the clean build runs O(nnz) per weight layer. Missing /
    /// `None` entries fall back to the dense tensor. Bit-identical to
    /// the dense build when each present entry materializes to the
    /// layer's dense weights (see [`crate::gemm`]).
    pub fn build_sparse(
        net: &Network,
        inputs: &[Tensor],
        weights: &[Option<&SparseMatrix>],
        scratch: &mut ForwardScratch,
    ) -> Option<Self> {
        let layers = net.layers();
        let mut acts: Vec<Vec<Tensor>> = Vec::with_capacity(layers.len() + 1);
        acts.push(inputs.to_vec());
        let mut sites: Vec<Site> = Vec::new();
        for (pos, l) in layers.iter().enumerate() {
            if matches!(l, Layer::Residual { .. }) {
                return None;
            }
            let cur = &acts[pos];
            let mut rhs = Vec::new();
            let next = if let Some(meta) = l.weight_rhs_into(cur, &mut rhs) {
                let next = match weights.get(sites.len()).copied().flatten() {
                    Some(sp) if !cur.is_empty() => l.forward_from_rhs_sparse(
                        sp,
                        &rhs,
                        &meta,
                        cur.len(),
                        &mut scratch.out,
                        &mut scratch.gemm,
                    ),
                    _ => l.forward_batch_scratch(cur, scratch),
                };
                sites.push(Site {
                    layer_pos: pos,
                    rhs,
                    meta,
                });
                next
            } else {
                l.forward_batch_scratch(cur, scratch)
            };
            acts.push(next);
        }
        Some(Self { acts, sites })
    }

    /// Number of weight layers (== the network's weight-matrix count).
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// The network-layer index of weight layer `site`.
    pub fn site_layer(&self, site: usize) -> usize {
        self.sites[site].layer_pos
    }

    /// The cached clean logits (output of the final layer).
    // maxnvm-lint: allow(R1/index-arith): the constructor always records at least the input activation, so acts.len()-1 cannot wrap.
    pub fn clean_logits(&self) -> &[Tensor] {
        &self.acts[self.acts.len() - 1]
    }

    /// The input batch the cache was built from.
    pub fn input_batch(&self) -> &[Tensor] {
        &self.acts[0]
    }

    /// Batch size the cache was built for.
    pub fn batch_len(&self) -> usize {
        self.acts[0].len()
    }

    /// Recomputes weight layer `site`'s batch outputs under a faulty
    /// `weight`/`bias` for the given `dirty_rows` (ascending, deduped),
    /// starting from a clone of the cached clean outputs. Each dirty row
    /// is one sequential dot against the cached right-hand matrix —
    /// bit-identical to the same row of a full batched forward. `row_buf`
    /// is reusable staging for one output row across the batch.
    ///
    /// # Panics
    ///
    /// Panics if `weight` does not match the site's geometry or a row is
    /// out of range.
    // maxnvm-lint: allow(R1/index-arith): row_buf is resized to n*p here and dirty rows are < rows per the weight-shape assert above, so o*p and sx*p slices are in range.
    pub fn patched_outputs(
        &self,
        site: usize,
        weight: &Tensor,
        bias: &[f32],
        dirty_rows: &[usize],
        row_buf: &mut Vec<f32>,
    ) -> Vec<Tensor> {
        let s = &self.sites[site];
        assert_eq!(
            weight.shape(),
            &[s.meta.rows, s.meta.k],
            "weight shape vs site geometry"
        );
        let mut outs = self.acts[s.layer_pos + 1].clone();
        let n = outs.len();
        let p = s.meta.per_cols;
        let total = n * p;
        row_buf.clear();
        row_buf.resize(total, 0.0);
        for &o in dirty_rows {
            gemm_row_into(
                row_buf,
                &weight.data()[o * s.meta.k..(o + 1) * s.meta.k],
                &s.rhs,
                s.meta.k,
                total,
            );
            for v in row_buf.iter_mut() {
                *v += bias[o];
            }
            for (sx, t) in outs.iter_mut().enumerate() {
                t.data_mut()[o * p..(o + 1) * p].copy_from_slice(&row_buf[sx * p..(sx + 1) * p]);
            }
        }
        outs
    }

    /// [`PrefixCache::patched_outputs`] from a sparse-encoded (already
    /// fault-patched) weight matrix: each dirty row is one
    /// [`sparse_row_into`] over its stored entries — O(row nnz · batch)
    /// — and bit-identical to the dense row recompute of `w`'s
    /// materialization (see [`crate::gemm`]).
    ///
    /// # Panics
    ///
    /// Panics if `w` does not match the site's geometry or a row is out
    /// of range.
    // maxnvm-lint: allow(R1/index-arith): row_buf is resized to n*p here and dirty rows are < rows per the weight-shape assert above, so o*p and sx*p slices are in range.
    pub fn patched_outputs_sparse(
        &self,
        site: usize,
        w: &SparseMatrix,
        bias: &[f32],
        dirty_rows: &[usize],
        row_buf: &mut Vec<f32>,
    ) -> Vec<Tensor> {
        let s = &self.sites[site];
        assert_eq!(
            (w.rows(), w.cols()),
            (s.meta.rows, s.meta.k),
            "sparse weight shape vs site geometry"
        );
        let mut outs = self.acts[s.layer_pos + 1].clone();
        let n = outs.len();
        let p = s.meta.per_cols;
        let total = n * p;
        row_buf.clear();
        row_buf.resize(total, 0.0);
        for &o in dirty_rows {
            let (cols, vals) = w.row(o);
            sparse_row_into(row_buf, cols, vals, &s.rhs, s.meta.k, total);
            for v in row_buf.iter_mut() {
                *v += bias[o];
            }
            for (sx, t) in outs.iter_mut().enumerate() {
                t.data_mut()[o * p..(o + 1) * p].copy_from_slice(&row_buf[sx * p..(sx + 1) * p]);
            }
        }
        outs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::WeightDelta;
    use crate::zoo::lenet_mini;
    use rand::{Rng, SeedableRng};

    fn batch(seed: u64, n: usize) -> Vec<Tensor> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Tensor::from_vec(&[1, 16, 16], (0..256).map(|_| rng.gen::<f32>()).collect()))
            .collect()
    }

    /// Full faulty forward vs the prefix-patched path must agree bit for
    /// bit, for faults in the first, middle, last, and multiple layers.
    #[test]
    fn patched_forward_is_bit_exact_with_full_faulty_forward() {
        let net = lenet_mini(7);
        let xs = batch(3, 6);
        let mut scratch = ForwardScratch::default();
        let cache = PrefixCache::build(&net, &xs, &mut scratch).expect("flat network");
        assert_eq!(cache.num_sites(), net.weight_matrices().len());

        let mats = net.weight_matrices();
        // Delta sets keyed by weight-matrix index: first conv, middle
        // conv, last fc, and a multi-layer combination.
        let cases: Vec<Vec<(usize, Vec<WeightDelta>)>> = vec![
            vec![(
                0,
                vec![WeightDelta {
                    slot: 3,
                    value: 2.5,
                }],
            )],
            vec![(
                1,
                vec![
                    WeightDelta {
                        slot: 11,
                        value: -1.75,
                    },
                    WeightDelta {
                        slot: 95,
                        value: 0.5,
                    },
                ],
            )],
            vec![(
                mats.len() - 1,
                vec![WeightDelta {
                    slot: 1,
                    value: 9.0,
                }],
            )],
            vec![
                (
                    1,
                    vec![WeightDelta {
                        slot: 40,
                        value: -3.0,
                    }],
                ),
                (
                    2,
                    vec![WeightDelta {
                        slot: 7,
                        value: 1.25,
                    }],
                ),
                (
                    mats.len() - 1,
                    vec![WeightDelta {
                        slot: 0,
                        value: -0.5,
                    }],
                ),
            ],
        ];
        let mut row_buf = Vec::new();
        for case in &cases {
            let mut deltas: Vec<Vec<WeightDelta>> = vec![Vec::new(); mats.len()];
            for (i, ds) in case {
                deltas[*i] = ds.clone();
            }
            let mut faulty = net.clone();
            let mut undo = Vec::new();
            faulty.apply_weight_deltas(&deltas, &mut undo);

            let full: Vec<Tensor> = faulty.forward_batch_scratch(&xs, &mut scratch);

            let first = deltas
                .iter()
                .position(|d| !d.is_empty())
                .expect("has deltas");
            let pos = cache.site_layer(first);
            let (w, b) = faulty.layers()[pos].weight_bias().expect("weight layer");
            let mut rows: Vec<usize> = deltas[first]
                .iter()
                .map(|d| d.slot as usize / mats[first].cols)
                .collect();
            rows.sort_unstable();
            rows.dedup();
            let patched = cache.patched_outputs(first, w, b, &rows, &mut row_buf);
            let logits = faulty.forward_suffix(pos + 1, patched, &mut scratch);

            assert_eq!(full.len(), logits.len());
            for (a, b) in full.iter().zip(&logits) {
                assert_eq!(a.data(), b.data(), "prefix path must be bit-exact");
            }
        }
    }

    /// Prunes ~the given fraction of each weight matrix to exact zero
    /// (smallest magnitudes first) and returns the net plus its sparse
    /// clean weights.
    fn pruned_net(seed: u64, sparsity: f64) -> (Network, Vec<SparseMatrix>) {
        let mut net = lenet_mini(seed);
        let mut mats = net.weight_matrices();
        for m in &mut mats {
            let mut mags: Vec<f32> = m.data.iter().map(|v| v.abs()).collect();
            mags.sort_by(f32::total_cmp);
            let cut = mags[((mags.len() - 1) as f64 * sparsity) as usize];
            for v in &mut m.data {
                if v.abs() <= cut {
                    *v = 0.0;
                }
            }
        }
        net.set_weight_matrices(&mats);
        let sparse = mats
            .iter()
            .map(|m| SparseMatrix::from_dense(m.rows, m.cols, &m.data))
            .collect();
        (net, sparse)
    }

    /// The whole sparse trial path — sparse clean build, sparse dirty-row
    /// patching of the first faulty site, sparse suffix — must reproduce
    /// the dense full faulty forward bit for bit.
    #[test]
    fn sparse_prefix_path_is_bit_exact_with_dense() {
        let (net, sparse) = pruned_net(7, 0.7);
        let xs = batch(3, 5);
        let mut scratch = ForwardScratch::default();
        let overlay: Vec<Option<&SparseMatrix>> = sparse.iter().map(Some).collect();
        let dense_cache = PrefixCache::build(&net, &xs, &mut scratch).expect("flat network");
        let cache =
            PrefixCache::build_sparse(&net, &xs, &overlay, &mut scratch).expect("flat network");
        for (a, b) in cache.clean_logits().iter().zip(dense_cache.clean_logits()) {
            assert_eq!(a.data(), b.data(), "sparse clean build must be bit-exact");
        }

        let mats = net.weight_matrices();
        let nmats = mats.len();
        for (first, slots) in [
            (0usize, vec![3u32, 9]),
            (1, vec![11, 95]),
            (nmats - 1, vec![1]),
        ] {
            let mut deltas: Vec<Vec<WeightDelta>> = vec![Vec::new(); nmats];
            deltas[first] = slots
                .iter()
                .map(|&slot| WeightDelta {
                    slot,
                    value: 0.75 + slot as f32 * 0.1,
                })
                .collect();
            let mut faulty = net.clone();
            let mut undo = Vec::new();
            faulty.apply_weight_deltas(&deltas, &mut undo);
            let full = faulty.forward_batch_scratch(&xs, &mut scratch);

            // Patch only the faulty layer's sparse stream.
            let patched_sparse = sparse[first].with_deltas(&deltas[first]);
            let mut trial_overlay = overlay.clone();
            trial_overlay[first] = Some(&patched_sparse);
            let pos = cache.site_layer(first);
            let (_, b) = faulty.layers()[pos].weight_bias().expect("weight layer");
            let mut rows: Vec<usize> = deltas[first]
                .iter()
                .map(|d| d.slot as usize / mats[first].cols)
                .collect();
            rows.sort_unstable();
            rows.dedup();
            let mut row_buf = Vec::new();
            let patched =
                cache.patched_outputs_sparse(first, &patched_sparse, b, &rows, &mut row_buf);
            let logits =
                faulty.forward_suffix_sparse(pos + 1, patched, &trial_overlay, &mut scratch);
            assert_eq!(full.len(), logits.len());
            for (a, b) in full.iter().zip(&logits) {
                assert_eq!(a.data(), b.data(), "sparse prefix path must be bit-exact");
            }
        }
    }

    #[test]
    fn clean_logits_match_forward_batch() {
        let net = lenet_mini(9);
        let xs = batch(5, 4);
        let mut scratch = ForwardScratch::default();
        let cache = PrefixCache::build(&net, &xs, &mut scratch).expect("flat network");
        let direct = net.forward_batch(&xs);
        for (a, b) in cache.clean_logits().iter().zip(&direct) {
            assert_eq!(a.data(), b.data());
        }
        assert_eq!(cache.batch_len(), 4);
    }

    #[test]
    fn residual_networks_are_rejected() {
        let net = Network::new(
            "res",
            vec![Layer::Residual {
                body: vec![Layer::ReLU],
                shortcut: vec![],
            }],
        );
        let xs = vec![Tensor::from_vec(&[3], vec![1.0, -2.0, 3.0])];
        assert!(PrefixCache::build(&net, &xs, &mut ForwardScratch::default()).is_none());
    }

    #[test]
    fn apply_and_revert_deltas_round_trip() {
        let mut net = lenet_mini(4);
        let before = net.weight_matrices();
        let deltas = vec![
            vec![WeightDelta {
                slot: 2,
                value: 7.0,
            }],
            vec![],
            vec![
                WeightDelta {
                    slot: 5,
                    value: -7.0,
                },
                WeightDelta {
                    slot: 5,
                    value: 1.0,
                },
            ],
        ];
        let mut undo = Vec::new();
        net.apply_weight_deltas(&deltas, &mut undo);
        let mid = net.weight_matrices();
        assert_eq!(mid[0].data[2], 7.0);
        assert_eq!(mid[2].data[5], 1.0, "later delta wins");
        net.revert_weight_deltas(&undo);
        assert_eq!(net.weight_matrices(), before);
    }
}
