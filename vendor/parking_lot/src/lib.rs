//! Offline polyfill of the slice of `parking_lot` this workspace uses:
//! `Mutex`, `RwLock`, and `Condvar` with parking_lot's poison-free,
//! guard-based API, backed by `std::sync`. Poisoning is erased the way
//! parking_lot erases it — a poisoned std lock is simply re-entered —
//! which matches parking_lot's semantics of leaving data accessible
//! after a panicking critical section.

use std::sync::{self, PoisonError};
use std::time::Duration;

/// Mutual exclusion lock with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Result of a [`Condvar::wait_for`] call.
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable with parking_lot's `&mut MutexGuard` API.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Block until notified, releasing the guard's lock while waiting.
    ///
    /// std's API consumes and returns the guard; parking_lot mutates it
    /// in place. Bridge via a guard swap: read the guard out, run the
    /// wait, write the returned guard back. The `ptr::read`/`write`
    /// pair is sound because the moved-out slot is overwritten before
    /// `guard` is next used or dropped, and `sync::Condvar::wait` never
    /// unwinds (a poisoned result still carries the reacquired guard).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        unsafe {
            let taken = std::ptr::read(guard);
            let reacquired = self
                .inner
                .wait(taken)
                .unwrap_or_else(PoisonError::into_inner);
            std::ptr::write(guard, reacquired);
        }
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        unsafe {
            let taken = std::ptr::read(guard);
            let (reacquired, result) = match self.inner.wait_timeout(taken, timeout) {
                Ok((g, r)) => (g, r),
                Err(poisoned) => poisoned.into_inner(),
            };
            std::ptr::write(guard, reacquired);
            WaitTimeoutResult {
                timed_out: result.timed_out(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            *lock.lock() = true;
            cvar.notify_one();
        });
        let (lock, cvar) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cvar.wait(&mut started);
        }
        assert!(*started);
        handle.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = m.lock();
        let res = cv.wait_for(&mut guard, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn lock_survives_panicking_critical_section() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
