/root/repo/target/debug/deps/fig1-c3ee5b9656460b1f.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-c3ee5b9656460b1f: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
