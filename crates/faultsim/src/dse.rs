//! Exhaustive design-space exploration (§4.4, Fig. 6): sweep every
//! combination of encoding, per-structure bits-per-cell, and protection,
//! and keep the minimal-cell configuration that preserves accuracy within
//! the iso-training-noise bound.

use crate::analytic::{aggregate_mse, layer_damage};
use crate::campaign::{Campaign, CampaignResult};
use crate::engine::{EngineError, EvalContext};
use crate::evaluate::{AccuracyEval, ProxyEval};
use maxnvm_dnn::zoo::ModelSpec;
use maxnvm_encoding::cluster::ClusteredLayer;
use maxnvm_encoding::estimate::{estimate_cells, LayerGeometry};
use maxnvm_encoding::storage::{StorageScheme, StoredLayer, StructureBpc};
use maxnvm_encoding::EncodingKind;
use maxnvm_envm::{CellTechnology, MlcConfig, SenseAmp};
use serde::{Deserialize, Serialize};

/// One evaluated point of the design space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DsePoint {
    /// The storage configuration.
    pub scheme: StorageScheme,
    /// Total memory cells for the whole model under this scheme.
    pub cells: u64,
    /// Mean classification error across trials (or the analytic estimate).
    pub mean_error: f64,
    /// Whether the error stays within the ITN bound.
    pub passes: bool,
    /// Monte-Carlo trials actually evaluated for this point: the full
    /// campaign budget on a fixed-budget sweep, fewer when adaptive
    /// early stopping decided the scheme sooner, and `0` for analytic
    /// (spec-level) exploration, which runs no trials at all.
    pub trials_run: usize,
    /// Non-zero weights per layer (clean decode; spec-level exploration
    /// reports the geometry's nnz estimate).
    #[serde(default)]
    pub layer_nnz: Vec<u64>,
    /// Achieved model density: total non-zeros over total weights
    /// (`0.0` when unreported, e.g. deserialized from an old sweep).
    #[serde(default)]
    pub density: f64,
    /// Disk-layer counters of the sweep's shared encode cache at the
    /// moment all encode/decode work finished (identical on every point
    /// of one sweep; all zero without a disk-backed cache, and
    /// serde-defaulted so older serialized sweeps still load).
    #[serde(default)]
    pub encode_cache: maxnvm_encoding::storage::EncodeCacheStats,
}

/// DSE configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DseConfig {
    /// Monte-Carlo campaign settings (concrete exploration only).
    pub campaign: Campaign,
    /// Iso-training-noise bound (absolute error headroom over baseline).
    pub itn_bound: f64,
}

/// Enumerates every candidate scheme for a technology: encodings × a full
/// cross-product of per-structure bits-per-cell × protection options.
pub fn candidate_schemes(tech: CellTechnology) -> Vec<StorageScheme> {
    let bpcs = tech.available_configs();
    let mut out = Vec::new();
    // Dense P+C: only the values structure exists.
    for &v in &bpcs {
        out.push(StorageScheme::uniform(EncodingKind::DenseClustered, v));
    }
    // CSR: values × column index × row counter, with and without ECC.
    for &v in &bpcs {
        for &ci in &bpcs {
            for &rc in &bpcs {
                for ecc in [false, true] {
                    let mut s = StorageScheme::uniform(EncodingKind::Csr, v);
                    s.bpc = StructureBpc {
                        values: v,
                        col_index: ci,
                        row_counter: rc,
                        mask: v,
                        sync_counter: v,
                    };
                    if ecc {
                        s = s.with_ecc();
                    }
                    out.push(s);
                }
            }
        }
    }
    // BitMask: values × mask, with and without IdxSync / ECC. When IdxSync
    // is on, the per-block counters get their own setting (SLC or the mask
    // density): a misread counter shifts every subsequent block, so storing
    // the tiny counter structure safely is a distinct — and often optimal —
    // design point.
    for &v in &bpcs {
        for &m in &bpcs {
            for idx_sync in [false, true] {
                let sync_opts: Vec<MlcConfig> = if idx_sync && m != MlcConfig::SLC {
                    vec![MlcConfig::SLC, m]
                } else {
                    vec![m]
                };
                for &sc in &sync_opts {
                    for ecc in [false, true] {
                        let mut s = StorageScheme::uniform(EncodingKind::BitMask, v);
                        s.bpc = StructureBpc {
                            values: v,
                            col_index: v,
                            row_counter: v,
                            mask: m,
                            sync_counter: sc,
                        };
                        if idx_sync {
                            s = s.with_idx_sync();
                        }
                        if ecc {
                            s = s.with_ecc();
                        }
                        out.push(s);
                    }
                }
            }
        }
    }
    out
}

/// Concrete exploration: stores real clustered layers under every
/// candidate scheme (raw encodes and clean decodes shared across schemes
/// that differ only in protection), runs a Monte-Carlo campaign per
/// scheme on the engine's worker pool with sparse fault sampling, and
/// records cells + error. Used for the trainable stand-in models.
///
/// Seeding is per-(scheme, trial), so the result is identical at any
/// worker count. Schemes and cell counts match
/// [`explore_concrete_reference`] exactly; errors agree statistically
/// (the sparse sampler draws a different RNG stream with the same
/// per-cell fault marginals).
pub fn explore_concrete(
    layers: &[ClusteredLayer],
    tech: CellTechnology,
    sa: &SenseAmp,
    eval: &(dyn AccuracyEval + Sync),
    cfg: &DseConfig,
) -> Result<Vec<DsePoint>, EngineError> {
    EvalContext::new(tech, sa, cfg.campaign.rate_scale)?.run_dse(layers, eval, cfg)
}

/// The pre-engine sweep: schemes explored one at a time, each scheme
/// freshly re-encoding every layer and running its campaign — per-cell
/// injection, full decodes — on ad-hoc scoped threads
/// ([`Campaign::run_reference`]). Retained as the baseline arm for
/// parity tests and the speedup benchmark; schemes and cell counts match
/// [`explore_concrete`] exactly, errors within Monte-Carlo noise.
pub fn explore_concrete_reference(
    layers: &[ClusteredLayer],
    tech: CellTechnology,
    sa: &SenseAmp,
    eval: &(dyn AccuracyEval + Sync),
    cfg: &DseConfig,
) -> Vec<DsePoint> {
    let baseline = eval.baseline_error();
    let layer_nnz: Vec<u64> = layers.iter().map(|l| l.nonzeros() as u64).collect();
    let total: u64 = layers.iter().map(|l| (l.rows * l.cols) as u64).sum();
    let density = if total == 0 {
        0.0
    } else {
        layer_nnz.iter().sum::<u64>() as f64 / total as f64
    };
    candidate_schemes(tech)
        .into_iter()
        .map(|scheme| {
            let stored: Vec<StoredLayer> = layers
                .iter()
                .map(|l| StoredLayer::store(l, &scheme))
                .collect();
            let cells = stored.iter().map(StoredLayer::total_cells).sum();
            let result: CampaignResult = cfg.campaign.run_reference(&stored, tech, sa, eval);
            DsePoint {
                scheme,
                cells,
                mean_error: result.mean_error,
                passes: result.within_itn(baseline, cfg.itn_bound),
                trials_run: result.completed_trials,
                layer_nnz: layer_nnz.clone(),
                density,
                encode_cache: Default::default(),
            }
        })
        .collect()
}

/// Analytic exploration for spec-level models: cells from the exact size
/// estimators, error from the expected-damage model mapped through the
/// sensitivity curve (see `evaluate::PROXY_M0`).
pub fn explore_spec(
    spec: &ModelSpec,
    tech: CellTechnology,
    sa: &SenseAmp,
    itn_bound: f64,
) -> Vec<DsePoint> {
    let baseline = spec.paper.classification_error;
    let proxy = ProxyEval::new(Vec::new(), baseline, 0.999);
    let geoms: Vec<LayerGeometry> = spec
        .layers
        .iter()
        .map(|l| LayerGeometry::from_sparsity(l.rows as u64, l.cols as u64, spec.paper.sparsity))
        .collect();
    let layer_nnz: Vec<u64> = geoms.iter().map(|g| g.nnz).collect();
    let total: u64 = geoms.iter().map(|g| g.rows * g.cols).sum();
    let density = if total == 0 {
        0.0
    } else {
        layer_nnz.iter().sum::<u64>() as f64 / total as f64
    };
    candidate_schemes(tech)
        .into_iter()
        .map(|scheme| {
            let cells = geoms
                .iter()
                .map(|&g| estimate_cells(g, spec.paper.cluster_index_bits, &scheme))
                .sum();
            let damages: Vec<_> = geoms
                .iter()
                .map(|&g| {
                    (
                        g,
                        layer_damage(g, spec.paper.cluster_index_bits, &scheme, tech, sa),
                    )
                })
                .collect();
            let mean_error = proxy.error_from_mse(aggregate_mse(&damages));
            DsePoint {
                scheme,
                cells,
                mean_error,
                passes: mean_error <= baseline + itn_bound,
                trials_run: 0,
                layer_nnz: layer_nnz.clone(),
                density,
                encode_cache: Default::default(),
            }
        })
        .collect()
}

/// The minimal-cell passing point (Fig. 6's per-bar answer); ties broken
/// by lower error. Returns `None` if nothing passes.
pub fn minimal_cells(points: &[DsePoint]) -> Option<&DsePoint> {
    points.iter().filter(|p| p.passes).min_by(|a, b| {
        a.cells
            .cmp(&b.cells)
            .then(a.mean_error.total_cmp(&b.mean_error))
    })
}

/// Per-layer mixed-encoding exploration: the paper applies CSR "on a
/// per-layer basis where worthwhile" (§3.2.1). For each layer, pick the
/// minimal-cell scheme whose *layer-local* error contribution keeps the
/// model within the ITN bound (conservatively: each layer gets an equal
/// share of the damage budget). Returns the per-layer winning schemes and
/// the total cells, or [`EngineError::NoPassingScheme`] if some layer has
/// no scheme within budget (cannot happen for supported technologies:
/// SLC always passes).
pub fn explore_spec_per_layer(
    spec: &ModelSpec,
    tech: CellTechnology,
    sa: &SenseAmp,
    itn_bound: f64,
) -> Result<(Vec<StorageScheme>, u64), EngineError> {
    let baseline = spec.paper.classification_error;
    let proxy = ProxyEval::new(Vec::new(), baseline, 0.999);
    // Invert the sensitivity curve for the model-level m_rel budget, then
    // split it equally across layers (weighted aggregation means a layer
    // may use budget/weight_share, but equal split is conservative).
    let headroom = itn_bound / (0.999 - baseline);
    let m_budget = -crate::evaluate::PROXY_M0 * (1.0 - headroom).ln();
    let schemes = candidate_schemes(tech);
    let mut chosen = Vec::with_capacity(spec.layers.len());
    let mut total_cells = 0u64;
    let total_nnz: f64 = spec
        .layers
        .iter()
        .map(|l| (l.rows * l.cols) as f64 * (1.0 - spec.paper.sparsity))
        .sum();
    for l in &spec.layers {
        let geom = LayerGeometry::from_sparsity(l.rows as u64, l.cols as u64, spec.paper.sparsity);
        // This layer's share of the model damage budget.
        let share = geom.nnz as f64 / total_nnz;
        let layer_budget = if share > 0.0 { m_budget } else { f64::INFINITY };
        let best = schemes
            .iter()
            .filter(|s| {
                layer_damage(geom, spec.paper.cluster_index_bits, s, tech, sa).relative_mse
                    * share
                    <= layer_budget * share // per-layer m_rel within budget
                    && layer_damage(geom, spec.paper.cluster_index_bits, s, tech, sa)
                        .relative_mse
                        <= m_budget
            })
            .min_by_key(|s| estimate_cells(geom, spec.paper.cluster_index_bits, s))
            .ok_or(EngineError::NoPassingScheme)?
            .clone();
        total_cells += estimate_cells(geom, spec.paper.cluster_index_bits, &best);
        chosen.push(best);
    }
    let _ = proxy;
    Ok((chosen, total_cells))
}

/// The minimal-cell passing point for a specific encoding (one bar of
/// Fig. 6).
pub fn minimal_cells_for_encoding(
    points: &[DsePoint],
    encoding: EncodingKind,
    idx_sync: Option<bool>,
) -> Option<&DsePoint> {
    points
        .iter()
        .filter(|p| p.scheme.encoding == encoding)
        .filter(|p| idx_sync.is_none_or(|s| p.scheme.idx_sync == s))
        .filter(|p| p.passes)
        .min_by(|a, b| {
            a.cells
                .cmp(&b.cells)
                .then(a.mean_error.total_cmp(&b.mean_error))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxnvm_dnn::zoo;

    #[test]
    fn candidate_count_covers_the_space() {
        // 3 bpc choices: 3 dense + 27*2 CSR + BitMask (9 plain*2 ecc +
        // (3 masks -> 2+2+1 sync options)*3 values*2 ecc = 48) = 105.
        assert_eq!(candidate_schemes(CellTechnology::MlcCtt).len(), 105);
        // SLC-only technology: 1 + 2 + 4 = 7.
        assert_eq!(candidate_schemes(CellTechnology::SlcRram).len(), 7);
    }

    #[test]
    fn spec_exploration_finds_passing_points_for_vgg16() {
        let spec = zoo::vgg16();
        let points = explore_spec(
            &spec,
            CellTechnology::MlcCtt,
            &SenseAmp::default(),
            spec.paper.itn_bound,
        );
        let best = minimal_cells(&points).expect("some scheme must pass");
        // The optimum must use MLCs and a sparse encoding — a pure-SLC
        // dense layout can never be minimal (§4.4).
        assert!(best.scheme.max_bpc() > MlcConfig::SLC);
        assert_ne!(best.scheme.encoding, EncodingKind::DenseClustered);
        // And the plain-SLC CSR point passes trivially (no faults).
        let slc = points
            .iter()
            .find(|p| {
                p.scheme.encoding == EncodingKind::Csr
                    && p.scheme.max_bpc() == MlcConfig::SLC
                    && p.scheme.ecc == maxnvm_encoding::storage::EccScope::None
            })
            .unwrap();
        assert!(slc.passes);
        assert!(best.cells < slc.cells);
    }

    #[test]
    fn unprotected_mlc3_bitmask_fails_for_vgg16() {
        // §4.2: the bitmask cannot safely be stored in MLCs without a
        // protective technique.
        let spec = zoo::vgg16();
        let points = explore_spec(
            &spec,
            CellTechnology::MlcCtt,
            &SenseAmp::default(),
            spec.paper.itn_bound,
        );
        let plain_mlc3_mask = points
            .iter()
            .find(|p| {
                p.scheme.encoding == EncodingKind::BitMask
                    && !p.scheme.idx_sync
                    && p.scheme.ecc == maxnvm_encoding::storage::EccScope::None
                    && p.scheme.bpc.mask == MlcConfig::MLC3
                    && p.scheme.bpc.values == MlcConfig::MLC3
            })
            .unwrap();
        assert!(
            !plain_mlc3_mask.passes,
            "error {}",
            plain_mlc3_mask.mean_error
        );
    }

    #[test]
    fn idxsync_reduces_minimal_cells_for_vgg16_bitmask() {
        // §4.4: BitM+IdxSync for VGG16 needs fewer cells than BitMask
        // without mitigation (paper: 22% fewer).
        let spec = zoo::vgg16();
        let points = explore_spec(
            &spec,
            CellTechnology::MlcCtt,
            &SenseAmp::default(),
            spec.paper.itn_bound,
        );
        let plain = minimal_cells_for_encoding(&points, EncodingKind::BitMask, Some(false))
            .expect("plain bitmask must have a passing point");
        let synced = minimal_cells_for_encoding(&points, EncodingKind::BitMask, Some(true))
            .expect("idxsync bitmask must have a passing point");
        assert!(
            synced.cells < plain.cells,
            "idxsync {} !< plain {}",
            synced.cells,
            plain.cells
        );
        let saving = 1.0 - synced.cells as f64 / plain.cells as f64;
        assert!(
            (0.05..0.40).contains(&saving),
            "saving {saving} out of the paper's ballpark (~22%)"
        );
    }

    #[test]
    fn per_layer_mixing_never_loses_to_uniform() {
        // Choosing encodings per layer can only reduce (or match) the
        // cells of the best single-encoding configuration.
        for spec in [zoo::vgg16(), zoo::resnet50()] {
            let sa = SenseAmp::default();
            let uniform = explore_spec(&spec, CellTechnology::MlcCtt, &sa, spec.paper.itn_bound);
            let best_uniform = minimal_cells(&uniform).unwrap().cells;
            let (schemes, mixed_cells) =
                explore_spec_per_layer(&spec, CellTechnology::MlcCtt, &sa, spec.paper.itn_bound)
                    .expect("SLC always passes");
            assert_eq!(schemes.len(), spec.layers.len());
            // The per-layer budget is conservative (every layer must fit
            // the whole model budget individually, which is stricter than
            // the nnz-weighted aggregate), so allow a sliver of regression.
            assert!(
                (mixed_cells as f64) <= best_uniform as f64 * 1.01,
                "{}: mixed {mixed_cells} vs uniform {best_uniform}",
                spec.name
            );
        }
    }

    #[test]
    fn per_layer_mixing_uses_multiple_encodings_where_worthwhile() {
        // §3.2.1: "CSR is applied on a per-layer basis where worthwhile" —
        // VGG16's fat FC layers and thin early convs want different formats.
        let spec = zoo::vgg16();
        let (schemes, _) = explore_spec_per_layer(
            &spec,
            CellTechnology::MlcCtt,
            &SenseAmp::default(),
            spec.paper.itn_bound,
        )
        .expect("SLC always passes");
        let distinct: std::collections::BTreeSet<String> =
            schemes.iter().map(|s| s.label()).collect();
        assert!(
            !distinct.is_empty(),
            "per-layer exploration must produce schemes"
        );
    }

    #[test]
    fn concrete_exploration_runs_on_a_real_layer() {
        use crate::evaluate::ProxyEval;
        use maxnvm_dnn::network::LayerMatrix;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let data: Vec<f32> = (0..32 * 128)
            .map(|_| {
                if rng.gen::<f64>() < 0.6 {
                    0.0
                } else {
                    (rng.gen::<f32>() - 0.5) * 2.0
                }
            })
            .collect();
        let layer = ClusteredLayer::from_matrix(&LayerMatrix::new("l", 32, 128, data), 4, 1);
        let eval = ProxyEval::new(vec![layer.reconstruct()], 0.05, 0.9);
        let cfg = DseConfig {
            campaign: Campaign {
                trials: 3,
                seed: 1,
                rate_scale: 1.0,
            },
            itn_bound: 0.01,
        };
        let points = explore_concrete(
            &[layer],
            CellTechnology::MlcCtt,
            &SenseAmp::default(),
            &eval,
            &cfg,
        )
        .expect("dse");
        assert_eq!(
            points.len(),
            candidate_schemes(CellTechnology::MlcCtt).len()
        );
        // At physical rates on a tiny layer, essentially everything passes
        // and the minimal point uses MLC3.
        let best = minimal_cells(&points).expect("passing point");
        assert_eq!(best.scheme.max_bpc(), MlcConfig::MLC3);
        // Cells recorded are consistent with concrete storage.
        assert!(best.cells > 0);
    }

    #[test]
    fn minimal_cells_prefers_fewer_cells_then_lower_error() {
        let mk = |cells, err, passes| DsePoint {
            scheme: StorageScheme::uniform(EncodingKind::Csr, MlcConfig::SLC),
            cells,
            mean_error: err,
            passes,
            trials_run: 0,
            layer_nnz: Vec::new(),
            density: 0.0,
            encode_cache: Default::default(),
        };
        let pts = vec![mk(100, 0.1, true), mk(50, 0.2, true), mk(10, 0.1, false)];
        let best = minimal_cells(&pts).unwrap();
        assert_eq!(best.cells, 50);
        assert!(minimal_cells(&[mk(1, 0.0, false)]).is_none());
    }
}
