//! The §6 hybrid memory case study: a fixed 1mm² on-chip memory budget
//! split between activation SRAM and weight eNVM, with DRAM catching the
//! overflow of both (Fig. 7c / Fig. 11).
//!
//! ```sh
//! cargo run --example hybrid_memory
//! ```

use maxnvm_dnn::zoo;
use maxnvm_encoding::EncodingKind;
use maxnvm_envm::CellTechnology;
use maxnvm_nvdla::hybrid::sweep_hybrid;
use maxnvm_nvdla::perf::encoded_weight_bytes;
use maxnvm_nvdla::NvdlaConfig;

fn main() {
    let model = zoo::vgg16();
    let bytes = encoded_weight_bytes(&model, EncodingKind::Csr, false);
    let total_mb: f64 = bytes.iter().sum::<u64>() as f64 / 1024.0 / 1024.0;
    println!(
        "{}: {:.1}MB of CSR-encoded weights vs a 1mm2 on-chip budget\n",
        model.name, total_mb
    );
    let fractions: Vec<f64> = (0..=9).map(|i| i as f64 * 0.1).collect();
    let points = sweep_hybrid(
        &model,
        &NvdlaConfig::nvdla_1024(),
        CellTechnology::MlcCtt,
        3,
        1.0,
        &bytes,
        &fractions,
    )
    .expect("feasible hybrid sweep");
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12}",
        "eNVM%", "eNVM(MB)", "SRAM(KB)", "rel. perf", "rel. energy"
    );
    for p in &points {
        let sram_kb = (1.0 - p.envm_fraction) * 1024.0;
        let bar = "#".repeat((p.relative_performance * 30.0) as usize);
        println!(
            "{:>5.0}% {:>10.1} {:>10.0} {:>12.3} {:>12.3}  {bar}",
            p.envm_fraction * 100.0,
            p.envm_capacity_bits as f64 / 8.0 / 1024.0 / 1024.0,
            sram_kb,
            p.relative_performance,
            p.relative_energy
        );
    }
    let best = points
        .iter()
        .min_by(|a, b| a.relative_energy.partial_cmp(&b.relative_energy).unwrap())
        .unwrap();
    println!(
        "\nLowest energy per inference at {:.0}% eNVM (paper: ~45%); giving the",
        best.envm_fraction * 100.0
    );
    println!("eNVM (almost) everything starves the activation SRAM and performance");
    println!("falls off — the eNVM is a weight store, not an activation buffer,");
    println!("because MLC write latency cannot keep up with intermediate values (§7.1).");
}
