//! Stream identities, job definitions, and the public state machine.

use crate::error::Rejected;
use maxnvm_encoding::storage::StoredLayer;
use maxnvm_envm::{CellTechnology, SenseAmp};
use maxnvm_faultsim::evaluate::AccuracyEval;
use maxnvm_faultsim::{Campaign, CampaignResult, EngineError};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A validated stream identifier: 1–64 characters from
/// `[A-Za-z0-9._-]`, not starting with `.`. The id doubles as the
/// spool-file stem (`<spool_dir>/<id>.ckpt`), so validation is what
/// keeps one stream from ever touching another's snapshot (or escaping
/// the spool directory).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId(String);

impl StreamId {
    /// Validates and wraps a stream id.
    pub fn new(id: impl Into<String>) -> Result<Self, Rejected> {
        let id = id.into();
        let ok = !id.is_empty()
            && id.len() <= 64
            && !id.starts_with('.')
            && id
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
        if ok {
            Ok(Self(id))
        } else {
            Err(Rejected::InvalidStreamId { id })
        }
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// This stream's spool file under `dir`.
    pub fn spool_path(&self, dir: &Path) -> PathBuf {
        dir.join(format!("{}.ckpt", self.0))
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// One campaign stream: the full recipe for a controlled engine run.
/// Everything is owned (or `Arc`-shared) so the job can travel to a
/// runner thread; the evaluator must be `Send + Sync` because trials
/// fan out over the engine's worker pool.
#[derive(Clone)]
pub struct CampaignJob {
    /// Trial budget, base seed, and rate scale.
    pub campaign: Campaign,
    /// The encoded layers the campaign injects into.
    pub stored: Vec<StoredLayer>,
    /// Cell technology the fault maps are built for.
    pub tech: CellTechnology,
    /// Sense-amp model (offset folded into the fault maps).
    pub sa: SenseAmp,
    /// The accuracy evaluator (shared across resubmissions).
    pub eval: Arc<dyn AccuracyEval + Send + Sync>,
}

impl fmt::Debug for CampaignJob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CampaignJob")
            .field("campaign", &self.campaign)
            .field("layers", &self.stored.len())
            .field("tech", &self.tech)
            .finish()
    }
}

/// Where a stream is in its lifecycle (DESIGN.md §15):
/// `Submitted → Running → {Done, Cancelled, Quarantined, Evicted,
/// Failed}`. Every non-`Submitted`/`Running` state is terminal; a
/// terminal stream id may be resubmitted (that is how eviction resume
/// works — the fresh run picks up the spool checkpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamState {
    /// Accepted and queued; not yet running.
    Submitted,
    /// Executing on a runner thread.
    Running,
    /// Ran its full budget (or early-stopped) successfully.
    Done,
    /// Cancelled by the caller; partial result, spool file retained.
    Cancelled,
    /// The watchdog saw no evaluator progress within the deadline and
    /// fired the stream's cancel token. Partial result once the stalled
    /// thread drains; the slot was reclaimed immediately.
    Quarantined,
    /// Removed to protect the service (disk-full during checkpointing,
    /// or supervisor shutdown). The spool snapshot — if any — survives;
    /// resubmitting the stream resumes it byte-identically.
    Evicted,
    /// The engine returned a typed error (bad configuration, exhausted
    /// checkpoint retries, …).
    Failed,
}

impl StreamState {
    /// Whether the stream still occupies admission capacity.
    pub fn is_active(self) -> bool {
        matches!(self, Self::Submitted | Self::Running)
    }

    /// Whether the stream reached a final state ([`crate::Supervisor`]'s
    /// `wait` returns once this is true).
    pub fn is_terminal(self) -> bool {
        !self.is_active()
    }
}

impl fmt::Display for StreamState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Submitted => "submitted",
            Self::Running => "running",
            Self::Done => "done",
            Self::Cancelled => "cancelled",
            Self::Quarantined => "quarantined",
            Self::Evicted => "evicted",
            Self::Failed => "failed",
        };
        f.write_str(s)
    }
}

/// A stream's publicly visible condition: its state plus whatever the
/// engine produced. `result` is present for `Done` and for the partial
/// outcomes of `Cancelled`/`Quarantined` (once the job drained) and
/// may accompany `Evicted`; `error` carries the typed engine error for
/// `Failed` and the disk-full detail for `Evicted`.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStatus {
    /// Lifecycle state.
    pub state: StreamState,
    /// The campaign result, when one exists (full or partial).
    pub result: Option<CampaignResult>,
    /// The typed engine error that ended the stream, if any.
    pub error: Option<EngineError>,
}

impl StreamStatus {
    pub(crate) fn submitted() -> Self {
        Self {
            state: StreamState::Submitted,
            result: None,
            error: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_ids_validate_as_spool_stems() {
        let long_ok = "x".repeat(64);
        let long_bad = "x".repeat(65);
        for ok in ["s1", "vgg12-sweep.3", "A_b-c.d", long_ok.as_str()] {
            assert!(StreamId::new(ok).is_ok(), "{ok:?}");
        }
        for bad in [
            "",
            ".hidden",
            "a/b",
            "a\\b",
            "sp ace",
            "nul\0",
            "../escape",
            long_bad.as_str(),
        ] {
            let err = StreamId::new(bad).expect_err("invalid id must be rejected");
            assert!(matches!(err, Rejected::InvalidStreamId { .. }), "{bad:?}");
        }
    }

    #[test]
    fn spool_path_is_id_dot_ckpt() {
        let id = StreamId::new("job-7").expect("valid id");
        assert_eq!(
            id.spool_path(Path::new("/spool")),
            PathBuf::from("/spool/job-7.ckpt")
        );
    }

    #[test]
    fn state_machine_classifies_terminal_states() {
        use StreamState::*;
        for s in [Submitted, Running] {
            assert!(s.is_active());
            assert!(!s.is_terminal());
        }
        for s in [Done, Cancelled, Quarantined, Evicted, Failed] {
            assert!(s.is_terminal());
            assert!(!s.is_active());
        }
    }
}
