/root/repo/target/release/deps/maxnvm_bits-cd80c5777eca32d9.d: crates/bits/src/lib.rs

/root/repo/target/release/deps/libmaxnvm_bits-cd80c5777eca32d9.rlib: crates/bits/src/lib.rs

/root/repo/target/release/deps/libmaxnvm_bits-cd80c5777eca32d9.rmeta: crates/bits/src/lib.rs

crates/bits/src/lib.rs:
