/root/repo/target/debug/deps/fig2-eb4583cb86ff2415.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-eb4583cb86ff2415: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
