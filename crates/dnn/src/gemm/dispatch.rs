//! SIMD tier selection for the GEMM kernels.
//!
//! The tier is chosen **once per process** from CPU feature detection
//! (and the `MAXNVM_FORCE_SCALAR` escape hatch) — never from the data
//! being multiplied — so kernel routing is input-independent per the D1
//! determinism contract. Because every tier computes the identical
//! per-element fused-multiply-add chain (see the `gemm` module docs),
//! the tier only ever changes *speed*, not bits; the dispatch cache
//! exists so the choice is still made exactly once and is observable
//! (benchmarks record it, tests can pin it).

use core::sync::atomic::{AtomicU8, Ordering};

/// Environment variable that pins the kernel dispatch to the scalar
/// tier (`1`/`true`; `0`/`false`/unset leave detection alone). Any
/// other value is a configuration error: [`env_force_scalar`] returns a
/// typed error, and the engine surfaces it before running a campaign.
pub const FORCE_SCALAR_ENV: &str = "MAXNVM_FORCE_SCALAR";

/// Instruction-set tier the GEMM kernels run on. Selected once at
/// startup by [`active_tier`]; all tiers produce bit-identical results
/// (each output element is the same ascending-k chain of
/// single-rounding fused multiply-adds), so the tier is a pure
/// performance knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimdTier {
    /// Portable fallback: `f32::mul_add` loops, no intrinsics. Slow —
    /// it exists as the escape hatch (`MAXNVM_FORCE_SCALAR=1`) and for
    /// hosts with none of the detected feature sets.
    Scalar,
    /// AVX2 + FMA 6×16 micro-kernel (256-bit lanes).
    Avx2,
    /// AVX-512F 8×32 micro-kernel (512-bit lanes).
    Avx512,
    /// AArch64 NEON 8×8 micro-kernel (128-bit lanes).
    Neon,
}

impl SimdTier {
    /// Micro-kernel tile rows for this tier.
    pub const fn mr(self) -> usize {
        match self {
            SimdTier::Scalar => 4,
            SimdTier::Avx2 => 6,
            SimdTier::Avx512 => 8,
            SimdTier::Neon => 8,
        }
    }

    /// Micro-kernel tile columns (packed right-panel strip width).
    pub const fn nr(self) -> usize {
        match self {
            SimdTier::Scalar => 8,
            SimdTier::Avx2 => 16,
            SimdTier::Avx512 => 32,
            SimdTier::Neon => 8,
        }
    }

    /// Row-block height (L2-resident slab of the packed left operand);
    /// always a multiple of [`SimdTier::mr`].
    pub const fn mc(self) -> usize {
        match self {
            SimdTier::Scalar => 64,
            SimdTier::Avx2 => 72,
            SimdTier::Avx512 => 64,
            SimdTier::Neon => 64,
        }
    }

    /// Stable lowercase name, recorded in benchmark output.
    pub const fn name(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Avx2 => "avx2",
            SimdTier::Avx512 => "avx512",
            SimdTier::Neon => "neon",
        }
    }
}

/// Invalid `MAXNVM_FORCE_SCALAR` value (anything other than `1`,
/// `true`, `0`, `false`, case-insensitively, after trimming).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidForceScalar {
    /// The offending value, verbatim.
    pub value: String,
}

impl core::fmt::Display for InvalidForceScalar {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "invalid {FORCE_SCALAR_ENV}={:?}: expected 1/true or 0/false",
            self.value
        )
    }
}

impl std::error::Error for InvalidForceScalar {}

/// Parses a `MAXNVM_FORCE_SCALAR` value: `Ok(true)` pins the scalar
/// tier, `Ok(false)` leaves detection alone.
pub fn parse_force_scalar(raw: &str) -> Result<bool, InvalidForceScalar> {
    let v = raw.trim();
    if v.eq_ignore_ascii_case("1") || v.eq_ignore_ascii_case("true") {
        Ok(true)
    } else if v.eq_ignore_ascii_case("0") || v.eq_ignore_ascii_case("false") {
        Ok(false)
    } else {
        Err(InvalidForceScalar {
            value: raw.to_string(),
        })
    }
}

/// Reads `MAXNVM_FORCE_SCALAR` from the environment. `Ok(None)` when
/// unset. Callers that can surface errors (the engine context
/// constructor) should do so; [`active_tier`] itself falls back to
/// normal detection on garbage after a one-time warning, mirroring how
/// `MAXNVM_THREADS` degrades.
pub fn env_force_scalar() -> Result<Option<bool>, InvalidForceScalar> {
    match std::env::var(FORCE_SCALAR_ENV) {
        Ok(v) => parse_force_scalar(&v).map(Some),
        Err(_) => Ok(None),
    }
}

/// Cached tier: 0 = not yet detected, otherwise `tier_to_cache`.
static ACTIVE: AtomicU8 = AtomicU8::new(0);
/// Test override: 0 = none, otherwise `tier_to_cache`. `#[doc(hidden)]`
/// — differential tests pin tiers in their own process; production code
/// never writes it.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

const fn tier_to_cache(t: SimdTier) -> u8 {
    match t {
        SimdTier::Scalar => 1,
        SimdTier::Avx2 => 2,
        SimdTier::Avx512 => 3,
        SimdTier::Neon => 4,
    }
}

fn tier_from_cache(v: u8) -> Option<SimdTier> {
    match v {
        1 => Some(SimdTier::Scalar),
        2 => Some(SimdTier::Avx2),
        3 => Some(SimdTier::Avx512),
        4 => Some(SimdTier::Neon),
        _ => None,
    }
}

/// Feature-detected tiers this host can run, lowest first (always
/// starts with [`SimdTier::Scalar`]). Benchmarks and differential
/// tests iterate this to measure/compare every runnable tier.
pub fn supported_tiers() -> Vec<SimdTier> {
    let mut tiers = vec![SimdTier::Scalar];
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            tiers.push(SimdTier::Avx2);
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            tiers.push(SimdTier::Avx512);
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON is architecturally guaranteed on AArch64.
        tiers.push(SimdTier::Neon);
    }
    tiers
}

fn detect_tier() -> SimdTier {
    match env_force_scalar() {
        Ok(Some(true)) => return SimdTier::Scalar,
        Ok(_) => {}
        Err(err) => {
            // Same degradation contract as MAXNVM_THREADS: warn once on
            // stderr and continue with detection. Contexts that can
            // return errors validate the variable up front instead.
            static WARN: std::sync::Once = std::sync::Once::new();
            WARN.call_once(|| {
                eprintln!("maxnvm: {err}; using feature detection");
            });
        }
    }
    // Highest supported tier wins; `supported_tiers` is ascending.
    supported_tiers().pop().unwrap_or(SimdTier::Scalar)
}

/// The SIMD tier every kernel in this module routes through. Detected
/// once per process (CPU features + `MAXNVM_FORCE_SCALAR`) and cached;
/// pure of the matrices being multiplied, so kernel routing never
/// depends on data (D1).
pub fn active_tier() -> SimdTier {
    if let Some(t) = tier_from_cache(OVERRIDE.load(Ordering::Relaxed)) {
        return t;
    }
    if let Some(t) = tier_from_cache(ACTIVE.load(Ordering::Relaxed)) {
        return t;
    }
    let t = detect_tier();
    ACTIVE.store(tier_to_cache(t), Ordering::Relaxed);
    t
}

/// Whether the scalar tier may run its FMA-compiled clones
/// (`micro_4x8_fma`/`axpy_fma`): identical source and identical fused
/// per-element semantics as the portable loops, so this is purely a
/// "hardware fma vs libm fmaf" speed choice — detected once, never
/// data-dependent.
#[cfg(target_arch = "x86_64")]
pub(super) fn scalar_fma_available() -> bool {
    // 0 = unknown, 1 = no, 2 = yes.
    static FMA: AtomicU8 = AtomicU8::new(0);
    match FMA.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let has = std::arch::is_x86_feature_detected!("fma");
            FMA.store(if has { 2 } else { 1 }, Ordering::Relaxed);
            has
        }
    }
}

/// Pins [`active_tier`] to `tier` (or clears the pin with `None`) for
/// differential tests and per-tier benchmarks. Not part of the public
/// API contract; production code must never call it.
#[doc(hidden)]
pub fn force_tier_for_tests(tier: Option<SimdTier>) {
    OVERRIDE.store(tier.map_or(0, tier_to_cache), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_canonical_values() {
        for v in ["1", "true", "TRUE", " 1 ", "True"] {
            assert_eq!(parse_force_scalar(v), Ok(true), "{v:?}");
        }
        for v in ["0", "false", "FALSE", " 0 "] {
            assert_eq!(parse_force_scalar(v), Ok(false), "{v:?}");
        }
    }

    #[test]
    fn parse_rejects_garbage_with_typed_error() {
        for v in ["", "yes", "2", "scalar", "on"] {
            let err = parse_force_scalar(v).unwrap_err();
            assert_eq!(err.value, v);
            let msg = err.to_string();
            assert!(msg.contains(FORCE_SCALAR_ENV), "{msg}");
        }
    }

    #[test]
    fn supported_tiers_start_scalar_and_ascend() {
        let tiers = supported_tiers();
        assert_eq!(tiers[0], SimdTier::Scalar);
        assert!(tiers.windows(2).all(|w| w[0] < w[1]));
        assert!(tiers.contains(&active_tier()) || active_tier() == SimdTier::Scalar);
    }

    #[test]
    fn tier_params_are_consistent() {
        for t in [
            SimdTier::Scalar,
            SimdTier::Avx2,
            SimdTier::Avx512,
            SimdTier::Neon,
        ] {
            assert!(t.mr() > 0 && t.nr() > 0);
            assert_eq!(t.mc() % t.mr(), 0, "{:?}: mc must be a multiple of mr", t);
            assert!(t.mr() * t.nr() <= super::super::MAX_TILE, "{:?}", t);
            assert!(!t.name().is_empty());
        }
    }

    #[test]
    fn override_roundtrip() {
        let detected = active_tier();
        force_tier_for_tests(Some(SimdTier::Scalar));
        assert_eq!(active_tier(), SimdTier::Scalar);
        force_tier_for_tests(None);
        assert_eq!(active_tier(), detected);
    }
}
