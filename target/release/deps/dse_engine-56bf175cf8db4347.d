/root/repo/target/release/deps/dse_engine-56bf175cf8db4347.d: crates/bench/benches/dse_engine.rs

/root/repo/target/release/deps/dse_engine-56bf175cf8db4347: crates/bench/benches/dse_engine.rs

crates/bench/benches/dse_engine.rs:
