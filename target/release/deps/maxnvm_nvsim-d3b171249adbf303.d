/root/repo/target/release/deps/maxnvm_nvsim-d3b171249adbf303.d: crates/nvsim/src/lib.rs crates/nvsim/src/extrapolate.rs crates/nvsim/src/sram.rs

/root/repo/target/release/deps/libmaxnvm_nvsim-d3b171249adbf303.rlib: crates/nvsim/src/lib.rs crates/nvsim/src/extrapolate.rs crates/nvsim/src/sram.rs

/root/repo/target/release/deps/libmaxnvm_nvsim-d3b171249adbf303.rmeta: crates/nvsim/src/lib.rs crates/nvsim/src/extrapolate.rs crates/nvsim/src/sram.rs

crates/nvsim/src/lib.rs:
crates/nvsim/src/extrapolate.rs:
crates/nvsim/src/sram.rs:
