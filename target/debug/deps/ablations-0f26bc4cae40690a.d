/root/repo/target/debug/deps/ablations-0f26bc4cae40690a.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-0f26bc4cae40690a: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
