/root/repo/target/debug/deps/crosscheck-8f54feb28b841d59.d: tests/crosscheck.rs

/root/repo/target/debug/deps/crosscheck-8f54feb28b841d59: tests/crosscheck.rs

tests/crosscheck.rs:
