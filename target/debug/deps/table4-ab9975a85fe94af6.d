/root/repo/target/debug/deps/table4-ab9975a85fe94af6.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-ab9975a85fe94af6: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
