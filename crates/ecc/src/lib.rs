//! Hamming-style, parity-based SEC-DED error correction for MLC eNVM
//! storage (paper §3.3).
//!
//! The paper protects the vulnerable CSR structures (row counters, column
//! indices) with the lightest-weight ECC considered for NAND flash:
//! single-error-correct, double-error-detect (SEC-DED) Hamming codes.
//! Values are stored **Gray-coded** in the MLCs (see
//! `maxnvm_envm::gray`) so that an adjacent-level fault is exactly one bit
//! flip — i.e., a correctable error.
//!
//! Two block configurations are provided:
//!
//! - [`SecDed::paper_4kb`] — one codeword per 4KB of data, matching the
//!   paper's "24 parity bits for each 4KB" budget (a SEC-DED code over
//!   32768 data bits needs 17 parity bits; the paper rounds to 24);
//! - [`SecDed::default_512b`] — one codeword per 512B. This is the
//!   configuration the reproduction's pipeline uses: with our calibrated
//!   MLC3 fault rates the expected faults per 4KB can exceed one, so
//!   smaller codewords are needed for the paper's qualitative conclusion
//!   ("ECC makes MLC3 safe for CSR") to hold. The overhead is still
//!   ≤0.4%, comfortably inside the paper's <1% bound. The deviation is
//!   recorded in `EXPERIMENTS.md`.
//!
//! # Example
//!
//! ```
//! use maxnvm_bits::BitBuffer;
//! use maxnvm_ecc::{Correction, SecDed};
//!
//! let code = SecDed::new(64);
//! let mut data = BitBuffer::new();
//! data.push_bits(0xdead_beef_0000_1234, 64);
//! let mut cw = code.encode(&data);
//! cw.toggle(13); // a single-level MLC fault = one bit flip (Gray code)
//! let decoded = code.decode(&mut cw);
//! assert_eq!(decoded.correction, Correction::CorrectedSingle(13));
//! assert_eq!(decoded.data, data);
//! ```

use maxnvm_bits::BitBuffer;
use serde::{Deserialize, Serialize};

/// Outcome of decoding one SEC-DED codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Correction {
    /// No error detected.
    Clean,
    /// A single-bit error was corrected at the given codeword position.
    CorrectedSingle(usize),
    /// A double-bit error was detected but cannot be corrected. The paper
    /// accepts this risk (§4.3): DED probability for the largest model is
    /// far below mass-production memory standards.
    DetectedDouble,
}

impl Correction {
    /// Whether decoding recovered (or never lost) the original data.
    pub fn is_recovered(self) -> bool {
        !matches!(self, Correction::DetectedDouble)
    }
}

/// Result of decoding a codeword: the (possibly corrected) data payload and
/// what the decoder observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decoded {
    /// The extracted data bits.
    pub data: BitBuffer,
    /// What the decoder observed and did.
    pub correction: Correction,
}

/// A SEC-DED (extended Hamming) code over a fixed number of data bits.
///
/// Codeword layout: positions `1..=m` hold data and Hamming parity bits
/// (parity at power-of-two positions), position `0` holds the overall
/// parity bit that upgrades SEC to SEC-DED.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SecDed {
    data_bits: usize,
    hamming_parity: usize,
}

impl SecDed {
    /// Creates a SEC-DED code over `data_bits` data bits.
    ///
    /// # Panics
    ///
    /// Panics if `data_bits == 0`.
    pub fn new(data_bits: usize) -> Self {
        assert!(data_bits > 0, "data_bits must be positive");
        // Smallest r with 2^r >= data + r + 1.
        let mut r = 1;
        while (1usize << r) < data_bits + r + 1 {
            r += 1;
        }
        Self {
            data_bits,
            hamming_parity: r,
        }
    }

    /// The paper's configuration: one codeword per 4KB of protected data.
    pub fn paper_4kb() -> Self {
        Self::new(4096 * 8)
    }

    /// The reproduction's default: one codeword per 512B of protected data.
    pub fn default_512b() -> Self {
        Self::new(512 * 8)
    }

    /// Data bits per codeword.
    pub fn data_bits(&self) -> usize {
        self.data_bits
    }

    /// Total parity bits per codeword (Hamming parity + overall parity).
    pub fn parity_bits(&self) -> usize {
        self.hamming_parity + 1
    }

    /// Codeword length in bits.
    pub fn codeword_bits(&self) -> usize {
        self.data_bits + self.parity_bits()
    }

    /// Relative storage overhead, `parity / data`.
    pub fn overhead(&self) -> f64 {
        self.parity_bits() as f64 / self.data_bits as f64
    }

    /// Encodes `data` into a codeword.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.data_bits()`.
    pub fn encode(&self, data: &BitBuffer) -> BitBuffer {
        assert_eq!(data.len(), self.data_bits, "data length mismatch");
        let m = self.data_bits + self.hamming_parity;
        let mut cw = BitBuffer::zeros(m + 1);
        // Place data bits at non-power-of-two positions 3,5,6,7,9,...
        let mut di = 0;
        for pos in 1..=m {
            if !pos.is_power_of_two() {
                cw.set(pos, data.get(di) == Some(true));
                di += 1;
            }
        }
        debug_assert_eq!(di, self.data_bits);
        // Hamming parity bits: parity at 2^i covers positions with bit i.
        for i in 0..self.hamming_parity {
            let p = 1usize << i;
            let mut parity = false;
            for pos in 1..=m {
                if pos & p != 0 && !pos.is_power_of_two() && cw.get(pos) == Some(true) {
                    parity = !parity;
                }
            }
            cw.set(p, parity);
        }
        // Overall parity over positions 1..=m.
        let mut overall = false;
        for pos in 1..=m {
            if cw.get(pos) == Some(true) {
                overall = !overall;
            }
        }
        cw.set(0, overall);
        cw
    }

    /// Decodes (and corrects in place) a codeword.
    ///
    /// Single-bit errors anywhere in the codeword — data, Hamming parity,
    /// or overall parity — are corrected; double-bit errors are detected
    /// and reported, with the (corrupt) data returned as stored.
    ///
    /// # Panics
    ///
    /// Panics if `cw.len() != self.codeword_bits()`.
    pub fn decode(&self, cw: &mut BitBuffer) -> Decoded {
        assert_eq!(cw.len(), self.codeword_bits(), "codeword length mismatch");
        let m = self.data_bits + self.hamming_parity;
        // Syndrome: recomputed Hamming parities; a nonzero syndrome is the
        // position of a single flipped bit.
        let mut syndrome = 0usize;
        for i in 0..self.hamming_parity {
            let p = 1usize << i;
            let mut parity = false;
            for pos in 1..=m {
                if pos & p != 0 && cw.get(pos) == Some(true) {
                    parity = !parity;
                }
            }
            if parity {
                syndrome |= p;
            }
        }
        let mut overall = false;
        for pos in 0..=m {
            if cw.get(pos) == Some(true) {
                overall = !overall;
            }
        }
        let correction = match (syndrome, overall) {
            (0, false) => Correction::Clean,
            (0, true) => {
                // Error in the overall parity bit itself.
                cw.toggle(0);
                Correction::CorrectedSingle(0)
            }
            (s, true) => {
                if s <= m {
                    cw.toggle(s);
                    Correction::CorrectedSingle(s)
                } else {
                    // Syndrome points outside the codeword: miscorrection
                    // risk; treat as detected-uncorrectable.
                    Correction::DetectedDouble
                }
            }
            (_, false) => Correction::DetectedDouble,
        };
        // Extract data bits.
        let mut data = BitBuffer::with_capacity(self.data_bits);
        for pos in 1..=m {
            if !pos.is_power_of_two() {
                data.push_bit(cw.get(pos) == Some(true));
            }
        }
        Decoded { data, correction }
    }
}

/// Splits an arbitrary-length bit stream into fixed-size SEC-DED codewords,
/// as the storage pipeline does for protected structures. The final block,
/// if shorter than the configured size, uses a right-sized SEC-DED code so
/// small structures (e.g. a layer's row counters) do not pay a full
/// codeword of padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockCodec {
    code: SecDed,
}

/// Decode report for a full protected stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockDecode {
    /// The reassembled data stream (trimmed to the original length).
    pub data: BitBuffer,
    /// Number of codewords with a corrected single error.
    pub corrected: usize,
    /// Number of codewords with a detected-uncorrectable double error.
    pub uncorrectable: usize,
}

impl BlockCodec {
    /// Creates a block codec from a SEC-DED configuration.
    pub fn new(code: SecDed) -> Self {
        Self { code }
    }

    /// The per-codeword code.
    pub fn code(&self) -> &SecDed {
        &self.code
    }

    /// Number of codewords needed for `data_len` bits (full blocks plus an
    /// optional right-sized final block).
    pub fn num_blocks(&self, data_len: usize) -> usize {
        data_len.div_ceil(self.code.data_bits()).max(1)
    }

    /// The code used for the final block of a `data_len`-bit stream.
    fn tail_code(&self, data_len: usize) -> SecDed {
        let rem = data_len % self.code.data_bits();
        if data_len == 0 || rem == 0 {
            self.code
        } else {
            SecDed::new(rem)
        }
    }

    /// Total encoded length in bits for `data_len` bits of data.
    pub fn encoded_len(&self, data_len: usize) -> usize {
        if data_len == 0 {
            return 0;
        }
        let full = data_len / self.code.data_bits();
        let tail = if data_len.is_multiple_of(self.code.data_bits()) {
            0
        } else {
            self.tail_code(data_len).codeword_bits()
        };
        full * self.code.codeword_bits() + tail
    }

    /// Total parity overhead in bits for `data_len` bits of data.
    pub fn overhead_bits(&self, data_len: usize) -> usize {
        self.encoded_len(data_len) - data_len
    }

    /// Encodes a stream into concatenated codewords.
    pub fn encode(&self, data: &BitBuffer) -> BitBuffer {
        if data.is_empty() {
            return BitBuffer::new();
        }
        let db = self.code.data_bits();
        let mut out = BitBuffer::with_capacity(self.encoded_len(data.len()));
        let mut pos = 0usize;
        while pos < data.len() {
            let take = (data.len() - pos).min(db);
            let code = if take == db {
                self.code
            } else {
                SecDed::new(take)
            };
            let mut block = BitBuffer::with_capacity(take);
            for i in 0..take {
                block.push_bit(data.get(pos + i) == Some(true));
            }
            out.extend(code.encode(&block).iter());
            pos += take;
        }
        out
    }

    /// The per-codeword code used for block `word` of a `data_len`-bit
    /// stream: the configured code for full blocks, a right-sized code
    /// for a shorter final block.
    ///
    /// # Panics
    ///
    /// Panics if `word >= num_blocks(data_len)` or `data_len == 0`.
    pub fn word_code(&self, word: usize, data_len: usize) -> SecDed {
        assert!(data_len > 0, "empty stream has no codewords");
        assert!(word < self.num_blocks(data_len), "word index out of range");
        if word + 1 == self.num_blocks(data_len) {
            self.tail_code(data_len)
        } else {
            self.code
        }
    }

    /// Data bit range `start..end` covered by block `word` of a
    /// `data_len`-bit stream.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range for the stream.
    pub fn word_data_range(&self, word: usize, data_len: usize) -> (usize, usize) {
        let db = self.code.data_bits();
        let start = word * db;
        let end = (start + self.word_code(word, data_len).data_bits()).min(data_len);
        (start, end)
    }

    /// Encoded bit range `start..end` occupied by block `word`'s codeword.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range for the stream.
    pub fn word_encoded_range(&self, word: usize, data_len: usize) -> (usize, usize) {
        let start = word * self.code.codeword_bits();
        (
            start,
            start + self.word_code(word, data_len).codeword_bits(),
        )
    }

    /// Index of the codeword containing encoded bit `bit` of a
    /// `data_len`-bit stream.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= encoded_len(data_len)`.
    pub fn word_of_encoded_bit(&self, bit: usize, data_len: usize) -> usize {
        assert!(bit < self.encoded_len(data_len), "encoded bit out of range");
        // Full codewords precede the (possibly shorter) tail, so integer
        // division is exact for full words and any position past the last
        // full-word boundary belongs to the tail.
        (bit / self.code.codeword_bits()).min(self.num_blocks(data_len) - 1)
    }

    /// Decodes a single codeword of a concatenated stream, correcting a
    /// single error within it.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range or `encoded` is shorter than the
    /// word's codeword range.
    pub fn decode_word(&self, encoded: &BitBuffer, word: usize, data_len: usize) -> Decoded {
        let (start, end) = self.word_encoded_range(word, data_len);
        let code = self.word_code(word, data_len);
        let mut cw = BitBuffer::with_capacity(end - start);
        for i in start..end {
            cw.push_bit(encoded.get(i) == Some(true));
        }
        code.decode(&mut cw)
    }

    /// Decodes concatenated codewords back into a stream of `data_len`
    /// bits, correcting single errors per codeword.
    ///
    /// # Panics
    ///
    /// Panics if `encoded.len()` does not match `encoded_len(data_len)`.
    pub fn decode(&self, encoded: &BitBuffer, data_len: usize) -> BlockDecode {
        assert_eq!(
            encoded.len(),
            self.encoded_len(data_len),
            "encoded length mismatch"
        );
        let db = self.code.data_bits();
        let mut data = BitBuffer::with_capacity(data_len);
        let mut corrected = 0;
        let mut uncorrectable = 0;
        let mut pos = 0usize; // bit cursor into `encoded`
        let mut produced = 0usize;
        while produced < data_len {
            let take = (data_len - produced).min(db);
            let code = if take == db {
                self.code
            } else {
                SecDed::new(take)
            };
            let cb = code.codeword_bits();
            let mut cw = BitBuffer::with_capacity(cb);
            for i in 0..cb {
                cw.push_bit(encoded.get(pos + i) == Some(true));
            }
            let dec = code.decode(&mut cw);
            match dec.correction {
                Correction::Clean => {}
                Correction::CorrectedSingle(_) => corrected += 1,
                Correction::DetectedDouble => uncorrectable += 1,
            }
            data.extend(dec.data.iter());
            pos += cb;
            produced += take;
        }
        BlockDecode {
            data,
            corrected,
            uncorrectable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn random_data(bits: usize, seed: u64) -> BitBuffer {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..bits).map(|_| rng.gen::<bool>()).collect()
    }

    #[test]
    fn parity_counts_match_hamming_bounds() {
        // (data, hamming parity r): 2^r >= data + r + 1.
        assert_eq!(SecDed::new(4).parity_bits(), 3 + 1);
        assert_eq!(SecDed::new(11).parity_bits(), 4 + 1);
        assert_eq!(SecDed::new(64).parity_bits(), 7 + 1);
        assert_eq!(SecDed::new(512 * 8).parity_bits(), 13 + 1);
        // The paper's "24 parity bits per 4KB" budget: 17 strictly required.
        assert_eq!(SecDed::paper_4kb().parity_bits(), 16 + 1);
    }

    #[test]
    fn overhead_stays_below_one_percent_for_block_configs() {
        assert!(SecDed::paper_4kb().overhead() < 0.001);
        assert!(SecDed::default_512b().overhead() < 0.004);
    }

    #[test]
    fn clean_round_trip() {
        let code = SecDed::new(64);
        let data = random_data(64, 1);
        let mut cw = code.encode(&data);
        let dec = code.decode(&mut cw);
        assert_eq!(dec.correction, Correction::Clean);
        assert_eq!(dec.data, data);
    }

    #[test]
    fn corrects_every_single_bit_error_exhaustively() {
        let code = SecDed::new(26);
        let data = random_data(26, 2);
        let clean = code.encode(&data);
        for pos in 0..code.codeword_bits() {
            let mut cw = clean.clone();
            cw.toggle(pos);
            let dec = code.decode(&mut cw);
            assert_eq!(
                dec.correction,
                Correction::CorrectedSingle(pos),
                "flip at {pos}"
            );
            assert_eq!(dec.data, data, "data corrupted after flip at {pos}");
        }
    }

    #[test]
    fn detects_every_double_bit_error_exhaustively() {
        let code = SecDed::new(11);
        let data = random_data(11, 3);
        let clean = code.encode(&data);
        let n = code.codeword_bits();
        for a in 0..n {
            for b in (a + 1)..n {
                let mut cw = clean.clone();
                cw.toggle(a);
                cw.toggle(b);
                let dec = code.decode(&mut cw);
                assert_eq!(
                    dec.correction,
                    Correction::DetectedDouble,
                    "double flip at {a},{b} not detected"
                );
            }
        }
    }

    #[test]
    fn large_codeword_round_trip() {
        let code = SecDed::default_512b();
        let data = random_data(code.data_bits(), 4);
        let mut cw = code.encode(&data);
        cw.toggle(1234);
        let dec = code.decode(&mut cw);
        assert!(matches!(dec.correction, Correction::CorrectedSingle(1234)));
        assert_eq!(dec.data, data);
    }

    #[test]
    fn block_codec_round_trip_with_scattered_errors() {
        let codec = BlockCodec::new(SecDed::new(64));
        let data = random_data(1000, 5); // 16 blocks, last padded
        let mut enc = codec.encode(&data);
        // One error in each of three different codewords.
        let cb = codec.code().codeword_bits();
        enc.toggle(3);
        enc.toggle(cb + 10);
        enc.toggle(5 * cb + 60);
        let dec = codec.decode(&enc, 1000);
        assert_eq!(dec.corrected, 3);
        assert_eq!(dec.uncorrectable, 0);
        assert_eq!(dec.data, data);
    }

    #[test]
    fn block_codec_reports_uncorrectable_blocks() {
        let codec = BlockCodec::new(SecDed::new(64));
        let data = random_data(128, 6);
        let mut enc = codec.encode(&data);
        enc.toggle(4);
        enc.toggle(9); // two errors in the same codeword
        let dec = codec.decode(&enc, 128);
        assert_eq!(dec.uncorrectable, 1);
        assert_eq!(dec.corrected, 0);
    }

    #[test]
    fn block_codec_sizes() {
        let codec = BlockCodec::new(SecDed::new(64));
        assert_eq!(codec.num_blocks(1), 1);
        assert_eq!(codec.num_blocks(64), 1);
        assert_eq!(codec.num_blocks(65), 2);
        assert_eq!(codec.encoded_len(64), codec.code().codeword_bits());
        assert_eq!(codec.overhead_bits(128), 2 * codec.code().parity_bits());
    }

    #[test]
    fn word_ranges_tile_the_stream() {
        let codec = BlockCodec::new(SecDed::new(64));
        for data_len in [1usize, 63, 64, 65, 128, 1000] {
            let blocks = codec.num_blocks(data_len);
            let mut data_cursor = 0;
            let mut enc_cursor = 0;
            for w in 0..blocks {
                let (ds, de) = codec.word_data_range(w, data_len);
                let (es, ee) = codec.word_encoded_range(w, data_len);
                assert_eq!(ds, data_cursor, "data gap at word {w}, len {data_len}");
                assert_eq!(es, enc_cursor, "encoded gap at word {w}, len {data_len}");
                assert_eq!(de - ds, codec.word_code(w, data_len).data_bits());
                assert_eq!(ee - es, codec.word_code(w, data_len).codeword_bits());
                for bit in es..ee {
                    assert_eq!(codec.word_of_encoded_bit(bit, data_len), w);
                }
                data_cursor = de;
                enc_cursor = ee;
            }
            assert_eq!(data_cursor, data_len);
            assert_eq!(enc_cursor, codec.encoded_len(data_len));
        }
    }

    #[test]
    fn decode_word_matches_full_decode() {
        let codec = BlockCodec::new(SecDed::new(64));
        let data = random_data(1000, 7);
        let mut enc = codec.encode(&data);
        let cb = codec.code().codeword_bits();
        enc.toggle(2 * cb + 17); // single error in word 2
        for w in 0..codec.num_blocks(1000) {
            let dec = codec.decode_word(&enc, w, 1000);
            let (ds, de) = codec.word_data_range(w, 1000);
            let expect: BitBuffer = (ds..de).map(|i| data.get(i).unwrap()).collect();
            assert_eq!(dec.data, expect, "word {w} data");
            if w == 2 {
                assert!(matches!(dec.correction, Correction::CorrectedSingle(_)));
            } else {
                assert_eq!(dec.correction, Correction::Clean, "word {w}");
            }
        }
    }

    #[test]
    fn correction_is_recovered_semantics() {
        assert!(Correction::Clean.is_recovered());
        assert!(Correction::CorrectedSingle(5).is_recovered());
        assert!(!Correction::DetectedDouble.is_recovered());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_single_error_always_corrected(
            seed in any::<u64>(),
            data_bits in 1usize..200,
            flip in any::<prop::sample::Index>(),
        ) {
            let code = SecDed::new(data_bits);
            let data = random_data(data_bits, seed);
            let clean = code.encode(&data);
            let pos = flip.index(code.codeword_bits());
            let mut cw = clean.clone();
            cw.toggle(pos);
            let dec = code.decode(&mut cw);
            prop_assert_eq!(dec.correction, Correction::CorrectedSingle(pos));
            prop_assert_eq!(dec.data, data);
        }

        #[test]
        fn prop_block_codec_round_trip(
            seed in any::<u64>(),
            len in 1usize..600,
        ) {
            let codec = BlockCodec::new(SecDed::new(64));
            let data = random_data(len, seed);
            let enc = codec.encode(&data);
            let dec = codec.decode(&enc, len);
            prop_assert_eq!(dec.data, data);
            prop_assert_eq!(dec.corrected, 0);
            prop_assert_eq!(dec.uncorrectable, 0);
        }
    }
}
