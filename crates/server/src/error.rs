//! Typed admission-control rejections.

use std::fmt;

/// Why the supervisor refused a request. Admission control is bounded
/// end to end, so overload is a typed, immediate `QueueFull` — never
/// unbounded queue growth, never a silent drop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejected {
    /// The supervisor is at its in-flight capacity (queued + running);
    /// resubmit after a stream finishes.
    QueueFull {
        /// The configured in-flight bound that was hit.
        capacity: usize,
    },
    /// A stream with this id is already queued or running. Terminal
    /// streams (done/cancelled/quarantined/evicted/failed) *can* be
    /// resubmitted — that is how eviction resume works.
    DuplicateStream {
        /// The offending id.
        id: String,
    },
    /// The supervisor is shutting down and accepts no new streams.
    ShuttingDown,
    /// The stream id is not a safe spool-file stem (empty, too long, or
    /// containing characters outside `[A-Za-z0-9._-]`).
    InvalidStreamId {
        /// The rejected id, verbatim.
        id: String,
    },
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::QueueFull { capacity } => {
                write!(f, "supervisor at capacity ({capacity} streams in flight)")
            }
            Self::DuplicateStream { id } => {
                write!(f, "stream {id:?} is already queued or running")
            }
            Self::ShuttingDown => write!(f, "supervisor is shutting down"),
            Self::InvalidStreamId { id } => write!(
                f,
                "stream id {id:?} is not a safe spool-file stem \
                 (need 1-64 chars from [A-Za-z0-9._-], not starting with '.')"
            ),
        }
    }
}

impl std::error::Error for Rejected {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let full = Rejected::QueueFull { capacity: 8 };
        assert!(full.to_string().contains('8'));
        let dup = Rejected::DuplicateStream { id: "s1".into() };
        assert!(dup.to_string().contains("s1"));
        let bad = Rejected::InvalidStreamId { id: "../x".into() };
        assert!(bad.to_string().contains("../x"));
        let e: Box<dyn std::error::Error> = Box::new(Rejected::ShuttingDown);
        assert!(e.to_string().contains("shutting down"));
    }
}
