//! Structured errors for the evaluation engine.
//!
//! Public entry points of the campaign/DSE pipeline report invalid
//! configurations as typed [`EngineError`]s instead of panicking, so
//! callers (CLI binaries, benchmark harnesses) can surface the problem
//! without unwinding through worker threads.

use std::fmt;

/// Everything that can go wrong when configuring or running an
/// evaluation: invalid rate scaling, chip campaigns asked to scale
/// physical rates, mismatched context/campaign settings, or a design
/// sweep where no candidate preserves accuracy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineError {
    /// `rate_scale` must be a positive, finite multiplier.
    InvalidRateScale(f64),
    /// Chip-instance campaigns draw analog programming outcomes, which
    /// cannot be rate-scaled; only `rate_scale == 1.0` is meaningful.
    ChipRateScale(f64),
    /// A campaign configuration's `rate_scale` disagrees with the
    /// evaluation context whose fault maps it would run against.
    RateScaleMismatch {
        /// The campaign's requested multiplier.
        campaign: f64,
        /// The multiplier the context precomputed its fault maps with.
        context: f64,
    },
    /// An evaluation context was requested with zero workers.
    NoWorkers,
    /// A design sweep found no scheme within the iso-training-noise
    /// bound (cannot happen for supported technologies: SLC always
    /// passes).
    NoPassingScheme,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidRateScale(s) => {
                write!(f, "rate_scale must be positive and finite, got {s}")
            }
            Self::ChipRateScale(s) => write!(
                f,
                "chip-instance campaigns use physical rates; rate_scale must be 1.0, got {s}"
            ),
            Self::RateScaleMismatch { campaign, context } => write!(
                f,
                "campaign rate_scale {campaign} does not match the evaluation \
                 context's precomputed {context}"
            ),
            Self::NoWorkers => {
                write!(f, "an evaluation context requires at least one worker")
            }
            Self::NoPassingScheme => write!(
                f,
                "no storage configuration stays within the iso-training-noise bound"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = EngineError::ChipRateScale(2.0);
        assert!(e.to_string().contains("rate_scale must be 1.0"));
        assert!(e.to_string().contains('2'));
        let m = EngineError::RateScaleMismatch {
            campaign: 2.0,
            context: 1.0,
        };
        assert!(m.to_string().contains("does not match"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(EngineError::NoPassingScheme);
        assert!(e.to_string().contains("iso-training-noise"));
    }
}
