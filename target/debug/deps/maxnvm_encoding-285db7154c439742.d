/root/repo/target/debug/deps/maxnvm_encoding-285db7154c439742.d: crates/encoding/src/lib.rs crates/encoding/src/bitmask.rs crates/encoding/src/cluster.rs crates/encoding/src/csr.rs crates/encoding/src/dense.rs crates/encoding/src/estimate.rs crates/encoding/src/quantize.rs crates/encoding/src/storage.rs

/root/repo/target/debug/deps/maxnvm_encoding-285db7154c439742: crates/encoding/src/lib.rs crates/encoding/src/bitmask.rs crates/encoding/src/cluster.rs crates/encoding/src/csr.rs crates/encoding/src/dense.rs crates/encoding/src/estimate.rs crates/encoding/src/quantize.rs crates/encoding/src/storage.rs

crates/encoding/src/lib.rs:
crates/encoding/src/bitmask.rs:
crates/encoding/src/cluster.rs:
crates/encoding/src/csr.rs:
crates/encoding/src/dense.rs:
crates/encoding/src/estimate.rs:
crates/encoding/src/quantize.rs:
crates/encoding/src/storage.rs:
