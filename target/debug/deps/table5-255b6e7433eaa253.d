/root/repo/target/debug/deps/table5-255b6e7433eaa253.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-255b6e7433eaa253: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
