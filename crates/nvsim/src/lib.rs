//! NVSim-style analytical characterization of eNVM memory arrays
//! (paper §3.4).
//!
//! The paper feeds its measured cell definitions into NVSim \[20\] to obtain
//! area, read latency, read energy and bandwidth for every candidate bank
//! organization, then picks Pareto-optimal points per optimization target.
//! This crate reimplements that flow with a calibrated analytical model:
//!
//! - an array is a grid of identical subarrays (`rows × cols` cells each)
//!   with per-subarray row decoders/drivers, column mux, and a flash-ADC
//!   sensing stage of `levels - 1` sense amps per active bitline (§2.3);
//! - [`sweep`] enumerates subarray geometries and mux factors;
//!   [`characterize`] picks the best feasible design for an
//!   [`OptTarget`];
//! - [`sram`] provides the SRAM macro model used for NVDLA's buffers and
//!   the hybrid-memory study (§6).
//!
//! Peripheral constants are calibrated against the paper's Table 4 /
//! Fig. 8 design points; `EXPERIMENTS.md` records measured-vs-paper for
//! every point. Absolute numbers are approximate, orderings and ratios are
//! the contract (see the calibration tests).
//!
//! # Example
//!
//! ```
//! use maxnvm_envm::CellTechnology;
//! use maxnvm_nvsim::{characterize, ArrayRequest, OptTarget};
//!
//! // VGG16's sparse-encoded weights in MLC3 CTT: ~90M cells.
//! let req = ArrayRequest::new(CellTechnology::MlcCtt, 90_000_000, 3);
//! let design = characterize(&req, OptTarget::ReadEdp).expect("feasible organization");
//! assert!(design.area_mm2 > 0.5 && design.area_mm2 < 8.0);
//! ```

pub mod extrapolate;
pub mod sram;

use maxnvm_envm::{CellTechnology, DeviceParams};
use serde::{Deserialize, Serialize};

/// What to build: a number of cells of one technology at a bits-per-cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrayRequest {
    /// Storage technology.
    pub tech: CellTechnology,
    /// Total memory cells.
    pub cells: u64,
    /// Bits per cell (1–3).
    pub bits_per_cell: u8,
}

impl ArrayRequest {
    /// Creates a request.
    ///
    /// # Panics
    ///
    /// Panics if `cells == 0` or `bits_per_cell` is out of range for the
    /// technology.
    pub fn new(tech: CellTechnology, cells: u64, bits_per_cell: u8) -> Self {
        assert!(cells > 0, "empty array");
        assert!(
            bits_per_cell >= 1 && bits_per_cell <= tech.max_bits_per_cell(),
            "{} supports 1..={} bits per cell",
            tech.name(),
            tech.max_bits_per_cell()
        );
        Self {
            tech,
            cells,
            bits_per_cell,
        }
    }

    /// Request sized by capacity in bits.
    pub fn with_capacity_bits(tech: CellTechnology, bits: u64, bits_per_cell: u8) -> Self {
        Self::new(tech, bits.div_ceil(bits_per_cell as u64), bits_per_cell)
    }

    /// Usable capacity in bits.
    pub fn capacity_bits(&self) -> u64 {
        self.cells * self.bits_per_cell as u64
    }
}

/// NVSim optimization targets (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OptTarget {
    /// Minimize total area.
    Area,
    /// Minimize read latency.
    ReadLatency,
    /// Minimize read energy × delay.
    ReadEdp,
    /// Minimize read energy per access.
    ReadEnergy,
    /// Minimize leakage power.
    Leakage,
}

impl OptTarget {
    /// All targets, as the paper's Table 3 lists them.
    pub const ALL: [OptTarget; 5] = [
        OptTarget::Area,
        OptTarget::ReadLatency,
        OptTarget::ReadEdp,
        OptTarget::ReadEnergy,
        OptTarget::Leakage,
    ];
}

/// One subarray organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArrayConfig {
    /// Rows per subarray.
    pub rows: u32,
    /// Columns (bitlines) per subarray.
    pub cols: u32,
    /// Column multiplexing factor (bitlines per sense amp group).
    pub mux: u32,
    /// Number of subarrays.
    pub subarrays: u32,
}

/// A fully characterized array design.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrayDesign {
    /// The request this design satisfies.
    pub request: ArrayRequest,
    /// Chosen organization.
    pub config: ArrayConfig,
    /// Total macro area (mm²).
    pub area_mm2: f64,
    /// Random read access latency (ns).
    pub read_latency_ns: f64,
    /// Dynamic energy per read access (pJ).
    pub read_energy_pj: f64,
    /// Useful data bits delivered per access.
    pub access_bits: u32,
    /// Leakage power (mW).
    pub leakage_mw: f64,
    /// Sequential read bandwidth (GB/s).
    pub read_bandwidth_gbps: f64,
    /// Energy to program one cell (pJ) — program current × voltage ×
    /// pulse time (iterative verify folded into the pulse duration).
    pub write_energy_per_cell_pj: f64,
}

impl ArrayDesign {
    /// Read energy-delay product (pJ·ns), the paper's default target.
    pub fn read_edp(&self) -> f64 {
        self.read_energy_pj * self.read_latency_ns
    }

    /// Energy to stream `bytes` of data out of the array (pJ).
    pub fn read_energy_for_bytes(&self, bytes: u64) -> f64 {
        let accesses = (bytes * 8).div_ceil(self.access_bits as u64);
        accesses as f64 * self.read_energy_pj
    }
}

// ---------------------------------------------------------------------------
// Calibrated peripheral constants (in F² and ns), shared across technologies;
// per-technology behaviour enters through DeviceParams (cell size, node,
// currents) and the sensing base times below.
// ---------------------------------------------------------------------------

/// Sense-amp footprint (F²) per technology: the CTT's current-mode latch
/// with per-level references is larger than the RRAM resistive-divider
/// sensing stage.
fn sa_area_f2(tech: CellTechnology) -> f64 {
    match tech {
        CellTechnology::MlcCtt => 1360.0,
        CellTechnology::MlcRram | CellTechnology::SlcRram => 960.0,
        CellTechnology::OptMlcRram => 560.0,
    }
}
/// Row driver + decoder slice per row (F²).
const ROW_PERIPH_F2: f64 = 70.0;
/// Per-column precharge/mux area (F²).
const COL_PERIPH_F2: f64 = 35.0;
/// Fixed control logic per subarray (F²).
const SUBARRAY_FIXED_F2: f64 = 150_000.0;
/// Global routing/bank overhead factor.
const GLOBAL_FACTOR: f64 = 1.12;

fn sense_base_ns(tech: CellTechnology) -> f64 {
    match tech {
        // High on-current transistor cell senses fast.
        CellTechnology::MlcCtt => 0.18,
        CellTechnology::MlcRram | CellTechnology::SlcRram => 0.55,
        // The aggressively scaled 10F² cell trades read current for
        // density: slowest sensing of the four (Table 4: 4.2–5.1ns).
        CellTechnology::OptMlcRram => 1.25,
    }
}

/// Peripheral devices (drivers, sense amps) stop scaling with the cell at
/// advanced nodes; penalize periphery area below 28nm.
fn periphery_scaling(node_nm: f64) -> f64 {
    (28.0 / node_nm).max(1.0).powf(0.75)
}

fn sa_energy_fj(tech: CellTechnology) -> f64 {
    match tech {
        CellTechnology::MlcCtt => 1.0,
        CellTechnology::MlcRram | CellTechnology::SlcRram => 8.0,
        CellTechnology::OptMlcRram => 14.0,
    }
}

/// Characterizes one specific organization. Returns `None` for infeasible
/// combinations (output width out of the 8–128-bit NVSim range, Table 3).
pub fn characterize_config(
    req: &ArrayRequest,
    rows: u32,
    cols: u32,
    mux: u32,
) -> Option<ArrayDesign> {
    let params: DeviceParams = req.tech.device_params();
    let levels = (1u32 << req.bits_per_cell) as f64;
    let access_bits = (cols / mux) * req.bits_per_cell as u32;
    if !(8..=128).contains(&access_bits) {
        return None;
    }
    let per_sub = rows as u64 * cols as u64;
    let subarrays = req.cells.div_ceil(per_sub).max(1);
    if subarrays > 1 << 20 {
        return None; // absurd organization
    }

    let f2_mm2 = (params.node_nm * 1e-6) * (params.node_nm * 1e-6);
    let cell_mm2 = params.cell_area_f2 * f2_mm2;
    let sa_per_sub = (cols / mux) as f64 * (levels - 1.0);
    let periph_f2 = (sa_per_sub * sa_area_f2(req.tech)
        + rows as f64 * ROW_PERIPH_F2
        + cols as f64 * COL_PERIPH_F2
        + SUBARRAY_FIXED_F2)
        * periphery_scaling(params.node_nm);
    let area_sub = per_sub as f64 * cell_mm2 + periph_f2 * f2_mm2;
    let area_mm2 = area_sub * subarrays as f64 * GLOBAL_FACTOR;

    // Latency: global decode + wordline RC + bitline RC + MLC sensing.
    // Wire RC grows quadratically with line length, which is what bounds
    // eNVM mats to modest sizes in latency-optimized NVSim solutions.
    let t_dec = 0.2 + 0.04 * (subarrays as f64).log2().max(0.0);
    let t_wl = 0.0011 * cols as f64 * (cols as f64 / 32.0);
    let bl_factor = match req.tech {
        CellTechnology::MlcCtt => 0.0008,
        CellTechnology::MlcRram | CellTechnology::SlcRram => 0.0016,
        CellTechnology::OptMlcRram => 0.0017,
    };
    let t_bl = bl_factor * rows as f64 * (rows as f64 / 16.0);
    let t_sense = sense_base_ns(req.tech) * (1.0 + 0.45 * (req.bits_per_cell as f64 - 1.0));
    let read_latency_ns = t_dec + t_wl + t_bl + t_sense;

    // Energy per access (pJ): bitline charging of one row's active columns,
    // flash-ADC sensing, wordline + decode.
    let e_bl =
        (cols / mux) as f64 * params.cell_read_current_ua * params.read_voltage * t_sense * 1e-3; // µA·V·ns = fJ -> pJ via 1e-3
    let e_sa = sa_per_sub * sa_energy_fj(req.tech) * 1e-3;
    let e_wl = cols as f64 * 0.05 * 1e-3;
    let e_dec = 0.08 + 0.01 * (subarrays as f64).log2().max(0.0);
    let read_energy_pj = e_bl + e_sa + e_wl + e_dec;

    // Leakage: sense amps and decoders idle (nW each), scaled by count.
    let leakage_mw = subarrays as f64 * (sa_per_sub * 2.0 + rows as f64 * 0.1) * 1e-6;

    // Write energy per cell: program current (~10x read) x write voltage
    // (~2x read) x pulse time. CTT's long HCI pulse makes each of its
    // cell-writes energetically expensive — another reason weights are
    // written rarely (§7.1).
    let write_energy_per_cell_pj = params.cell_read_current_ua
        * 10.0
        * params.read_voltage
        * 2.0
        * (params.program_pulse_s * 1e9)
        * 1e-3; // µA·V·ns = fJ -> pJ

    // Bandwidth: one access in flight (the NVDLA interface streams from a
    // single bank at a time).
    let read_bandwidth_gbps = access_bits as f64 / 8.0 / read_latency_ns;

    Some(ArrayDesign {
        request: *req,
        config: ArrayConfig {
            rows,
            cols,
            mux,
            subarrays: subarrays as u32,
        },
        area_mm2,
        read_latency_ns,
        read_energy_pj,
        access_bits,
        leakage_mw,
        read_bandwidth_gbps,
        write_energy_per_cell_pj,
    })
}

/// Energy (mJ) to program an entire weight set of `cells` cells into a
/// characterized design.
pub fn write_energy_mj(design: &ArrayDesign, cells: u64) -> f64 {
    design.write_energy_per_cell_pj * cells as f64 * 1e-9
}

/// Derives a write-time model from the characterized organization: one
/// program operation covers a wordline group per subarray, and program
/// current limits how many subarrays write simultaneously. This is why
/// the paper's Table 5 per-model write times do not scale linearly with
/// cell count — each model's array organization sets its own
/// parallelism.
pub fn write_model_for_design(design: &ArrayDesign) -> maxnvm_envm::WriteModel {
    let params = design.request.tech.device_params();
    // Cells programmed per operation: one wordline (cols) per subarray,
    // with simultaneously-active subarrays bounded by program power.
    let active_subarrays = (design.config.subarrays as usize).min(64);
    let parallelism = (design.config.cols as usize * active_subarrays).max(1);
    maxnvm_envm::WriteModel::new(design.request.tech, params.program_pulse_s, parallelism)
}

/// Enumerates all feasible organizations for a request (the NVSim sweep of
/// Table 3: data widths 8–128, bank/mat grids).
pub fn sweep(req: &ArrayRequest) -> Vec<ArrayDesign> {
    let mut out = Vec::new();
    for rows in [64u32, 128, 256, 512, 1024, 2048] {
        for cols in [64u32, 128, 256, 512, 1024] {
            for mux in [1u32, 2, 4, 8, 16, 32] {
                if mux > cols {
                    continue;
                }
                if let Some(d) = characterize_config(req, rows, cols, mux) {
                    out.push(d);
                }
            }
        }
    }
    out
}

/// Everything that can go wrong when characterizing an array: the sweep
/// found no feasible organization, or none meets a width requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NvsimError {
    /// The organization sweep produced no feasible design for the request
    /// (cannot happen for the supported request range).
    NoFeasibleOrganization,
    /// No feasible organization delivers the requested access width.
    NoWideOrganization {
        /// The unmet minimum access width, in bits.
        min_access_bits: u32,
    },
}

impl std::fmt::Display for NvsimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoFeasibleOrganization => {
                write!(f, "no feasible array organization for this request")
            }
            Self::NoWideOrganization { min_access_bits } => write!(
                f,
                "no feasible organization delivers {min_access_bits}-bit accesses"
            ),
        }
    }
}

impl std::error::Error for NvsimError {}

/// Picks the best design for an optimization target from the full sweep.
///
/// # Errors
///
/// Returns [`NvsimError::NoFeasibleOrganization`] if the sweep is empty
/// (cannot happen for the supported request range).
pub fn characterize(req: &ArrayRequest, target: OptTarget) -> Result<ArrayDesign, NvsimError> {
    let mut designs = sweep(req);
    // The paper's selected points stay performance-competitive ("within
    // 10% of the NVDLA baseline", §5.1): for the energy-oriented targets,
    // restrict candidates to within 1.5x of the minimum achievable read
    // latency before optimizing.
    if matches!(target, OptTarget::ReadEdp | OptTarget::ReadEnergy) {
        let min_lat = designs
            .iter()
            .map(|d| d.read_latency_ns)
            .fold(f64::INFINITY, f64::min);
        designs.retain(|d| d.read_latency_ns <= 1.5 * min_lat);
    }
    // Energy metrics are normalized per delivered bit, so the optimizer
    // does not degenerate to 8-bit outputs that starve the accelerator.
    let key = |d: &ArrayDesign| -> f64 {
        match target {
            OptTarget::Area => d.area_mm2,
            OptTarget::ReadLatency => d.read_latency_ns,
            // Fig. 8's points minimize "read energy-delay-product and
            // area": weight EDP by the macro area.
            OptTarget::ReadEdp => d.read_edp() / d.access_bits as f64 * d.area_mm2,
            OptTarget::ReadEnergy => d.read_energy_pj / d.access_bits as f64,
            OptTarget::Leakage => d.leakage_mw,
        }
    };
    designs
        .into_iter()
        .min_by(|a, b| key(a).total_cmp(&key(b)))
        .ok_or(NvsimError::NoFeasibleOrganization)
}

/// Like [`characterize`], but only considers organizations delivering at
/// least `min_access_bits` per access — the system studies require a wide
/// streaming interface to the accelerator (the NVDLA side reads 128-bit
/// beats), which a mux-heavy energy-optimal point cannot feed.
///
/// # Errors
///
/// Returns [`NvsimError::NoWideOrganization`] if no feasible organization
/// meets the width requirement.
pub fn characterize_min_width(
    req: &ArrayRequest,
    target: OptTarget,
    min_access_bits: u32,
) -> Result<ArrayDesign, NvsimError> {
    let mut designs = sweep(req);
    designs.retain(|d| d.access_bits >= min_access_bits);
    if designs.is_empty() {
        return Err(NvsimError::NoWideOrganization { min_access_bits });
    }
    if matches!(target, OptTarget::ReadEdp | OptTarget::ReadEnergy) {
        let min_lat = designs
            .iter()
            .map(|d| d.read_latency_ns)
            .fold(f64::INFINITY, f64::min);
        designs.retain(|d| d.read_latency_ns <= 1.5 * min_lat);
    }
    let key = |d: &ArrayDesign| -> f64 {
        match target {
            OptTarget::Area => d.area_mm2,
            OptTarget::ReadLatency => d.read_latency_ns,
            OptTarget::ReadEdp => d.read_edp() / d.access_bits as f64 * d.area_mm2,
            OptTarget::ReadEnergy => d.read_energy_pj / d.access_bits as f64,
            OptTarget::Leakage => d.leakage_mw,
        }
    };
    designs
        .into_iter()
        .min_by(|a, b| key(a).total_cmp(&key(b)))
        .ok_or(NvsimError::NoFeasibleOrganization)
}

/// Pareto front over (area, latency, energy): designs not dominated on all
/// three axes — what the paper selects its final points from.
pub fn pareto_front(designs: &[ArrayDesign]) -> Vec<ArrayDesign> {
    let dominated = |a: &ArrayDesign, b: &ArrayDesign| {
        b.area_mm2 <= a.area_mm2
            && b.read_latency_ns <= a.read_latency_ns
            && b.read_energy_pj <= a.read_energy_pj
            && (b.area_mm2 < a.area_mm2
                || b.read_latency_ns < a.read_latency_ns
                || b.read_energy_pj < a.read_energy_pj)
    };
    designs
        .iter()
        .filter(|a| !designs.iter().any(|b| dominated(a, b)))
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mb_cells(mb: u64, bpc: u8) -> u64 {
        mb * 1024 * 1024 * 8 / bpc as u64
    }

    #[test]
    fn request_capacity_round_trip() {
        let r = ArrayRequest::with_capacity_bits(CellTechnology::MlcCtt, 3000, 3);
        assert_eq!(r.cells, 1000);
        assert_eq!(r.capacity_bits(), 3000);
    }

    #[test]
    #[should_panic(expected = "supports 1..=1")]
    fn slc_rram_rejects_mlc_request() {
        ArrayRequest::new(CellTechnology::SlcRram, 100, 2);
    }

    #[test]
    fn table4_vgg16_areas_land_in_band() {
        // Paper Table 4, VGG16 (32MB): Opt 1.3mm², CTT 2.0, RRAM 5.7,
        // SLC 19.2. Require each within 2x and the exact ordering.
        let opt = characterize(
            &ArrayRequest::new(CellTechnology::OptMlcRram, mb_cells(32, 3), 3),
            OptTarget::ReadEdp,
        )
        .expect("feasible organization");
        let ctt = characterize(
            &ArrayRequest::new(CellTechnology::MlcCtt, mb_cells(32, 3), 3),
            OptTarget::ReadEdp,
        )
        .expect("feasible organization");
        let rram = characterize(
            &ArrayRequest::new(CellTechnology::MlcRram, mb_cells(32, 3), 3),
            OptTarget::ReadEdp,
        )
        .expect("feasible organization");
        let slc = characterize(
            &ArrayRequest::new(CellTechnology::SlcRram, mb_cells(32, 1), 1),
            OptTarget::ReadEdp,
        )
        .expect("feasible organization");
        for (d, want, name) in [
            (&opt, 1.3, "opt"),
            (&ctt, 2.0, "ctt"),
            (&rram, 5.7, "rram"),
            (&slc, 19.2, "slc"),
        ] {
            let ratio = d.area_mm2 / want;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{name}: {} mm² vs paper {want} (ratio {ratio})",
                d.area_mm2
            );
        }
        assert!(opt.area_mm2 < ctt.area_mm2);
        assert!(ctt.area_mm2 < rram.area_mm2);
        assert!(rram.area_mm2 < slc.area_mm2);
    }

    #[test]
    fn mlc_ctt_is_about_an_order_denser_than_slc_rram() {
        // §5.1: "the MLC-CTT array requires an average of 9.6x less area"
        // than SLC-RRAM for the same payload.
        let mut ratios = Vec::new();
        for (mlc_mb, slc_mb) in [(32u64, 32u64), (12, 12), (4, 4)] {
            let ctt = characterize(
                &ArrayRequest::new(CellTechnology::MlcCtt, mb_cells(mlc_mb, 3), 3),
                OptTarget::ReadEdp,
            )
            .expect("feasible organization");
            let slc = characterize(
                &ArrayRequest::new(CellTechnology::SlcRram, mb_cells(slc_mb, 1), 1),
                OptTarget::ReadEdp,
            )
            .expect("feasible organization");
            ratios.push(slc.area_mm2 / ctt.area_mm2);
        }
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!((5.0..16.0).contains(&avg), "avg ratio {avg} (paper 9.6x)");
    }

    #[test]
    fn read_latencies_are_nanoseconds_and_ordered() {
        // Table 4 latencies are 1.4–5.2ns; CTT senses faster than the
        // optimistic RRAM at the same bits-per-cell.
        let ctt = characterize(
            &ArrayRequest::new(CellTechnology::MlcCtt, mb_cells(32, 3), 3),
            OptTarget::ReadEdp,
        )
        .expect("feasible organization");
        let opt = characterize(
            &ArrayRequest::new(CellTechnology::OptMlcRram, mb_cells(32, 3), 3),
            OptTarget::ReadEdp,
        )
        .expect("feasible organization");
        assert!(
            (0.7..6.0).contains(&ctt.read_latency_ns),
            "{}",
            ctt.read_latency_ns
        );
        assert!(
            (0.7..8.0).contains(&opt.read_latency_ns),
            "{}",
            opt.read_latency_ns
        );
        assert!(ctt.read_latency_ns < opt.read_latency_ns);
    }

    #[test]
    fn ctt_read_energy_beats_opt_rram_by_4x() {
        // §5.1: "MLC-CTT is consistently lower energy per access than even
        // the Optimistic MLC-RRAM solution by over 4x".
        let ctt = characterize(
            &ArrayRequest::new(CellTechnology::MlcCtt, mb_cells(12, 2), 2),
            OptTarget::ReadEdp,
        )
        .expect("feasible organization");
        let opt = characterize(
            &ArrayRequest::new(CellTechnology::OptMlcRram, mb_cells(12, 2), 2),
            OptTarget::ReadEdp,
        )
        .expect("feasible organization");
        assert!(
            opt.read_energy_pj > 4.0 * ctt.read_energy_pj,
            "opt {} vs ctt {}",
            opt.read_energy_pj,
            ctt.read_energy_pj
        );
    }

    #[test]
    fn ctt_bandwidth_reaches_several_gbps() {
        // §5.1: CTT maintains read bandwidth "up to 9 GB/s".
        let d = characterize(
            &ArrayRequest::new(CellTechnology::MlcCtt, mb_cells(12, 2), 2),
            OptTarget::ReadLatency,
        )
        .expect("feasible organization");
        assert!(d.read_bandwidth_gbps > 3.0, "{}", d.read_bandwidth_gbps);
        assert!(d.read_bandwidth_gbps < 100.0, "{}", d.read_bandwidth_gbps);
    }

    #[test]
    fn more_bits_per_cell_shrinks_area_but_slows_sensing() {
        let slc = characterize(
            &ArrayRequest::with_capacity_bits(CellTechnology::MlcCtt, 8 * 1024 * 1024 * 8, 1),
            OptTarget::Area,
        )
        .expect("feasible organization");
        let mlc3 = characterize(
            &ArrayRequest::with_capacity_bits(CellTechnology::MlcCtt, 8 * 1024 * 1024 * 8, 3),
            OptTarget::Area,
        )
        .expect("feasible organization");
        assert!(mlc3.area_mm2 < slc.area_mm2);
        let slc_l = characterize(
            &ArrayRequest::with_capacity_bits(CellTechnology::MlcCtt, 8 * 1024 * 1024 * 8, 1),
            OptTarget::ReadLatency,
        )
        .expect("feasible organization");
        let mlc3_l = characterize(
            &ArrayRequest::with_capacity_bits(CellTechnology::MlcCtt, 8 * 1024 * 1024 * 8, 3),
            OptTarget::ReadLatency,
        )
        .expect("feasible organization");
        assert!(mlc3_l.read_latency_ns > slc_l.read_latency_ns);
    }

    #[test]
    fn optimization_targets_actually_optimize() {
        let req = ArrayRequest::new(CellTechnology::MlcRram, mb_cells(4, 2), 2);
        let designs = sweep(&req);
        assert!(designs.len() > 20, "sweep too small: {}", designs.len());
        let a = characterize(&req, OptTarget::Area).expect("feasible organization");
        let l = characterize(&req, OptTarget::ReadLatency).expect("feasible organization");
        let e = characterize(&req, OptTarget::ReadEnergy).expect("feasible organization");
        let min_lat = designs
            .iter()
            .map(|d| d.read_latency_ns)
            .fold(f64::INFINITY, f64::min);
        for d in &designs {
            assert!(a.area_mm2 <= d.area_mm2 + 1e-12);
            assert!(l.read_latency_ns <= d.read_latency_ns + 1e-12);
            // The energy target optimizes within the latency-competitive
            // subset (see `characterize`).
            if d.read_latency_ns <= 1.5 * min_lat {
                assert!(
                    e.read_energy_pj / e.access_bits as f64
                        <= d.read_energy_pj / d.access_bits as f64 + 1e-12
                );
            }
        }
    }

    #[test]
    fn pareto_front_is_non_dominated() {
        let req = ArrayRequest::new(CellTechnology::MlcCtt, mb_cells(4, 3), 3);
        let designs = sweep(&req);
        let front = pareto_front(&designs);
        assert!(!front.is_empty() && front.len() < designs.len());
        for a in &front {
            for b in &designs {
                let dominates = b.area_mm2 < a.area_mm2
                    && b.read_latency_ns < a.read_latency_ns
                    && b.read_energy_pj < a.read_energy_pj;
                assert!(!dominates, "front point dominated");
            }
        }
    }

    #[test]
    fn min_width_characterization_delivers_wide_interfaces() {
        let req = ArrayRequest::new(CellTechnology::OptMlcRram, mb_cells(12, 3), 3);
        let narrow = characterize(&req, OptTarget::ReadEdp).expect("feasible organization");
        let wide =
            characterize_min_width(&req, OptTarget::ReadEdp, 96).expect("feasible organization");
        assert!(wide.access_bits >= 96);
        assert!(wide.read_bandwidth_gbps >= narrow.read_bandwidth_gbps);
    }

    #[test]
    fn access_width_respects_nvsim_range() {
        let req = ArrayRequest::new(CellTechnology::MlcCtt, mb_cells(4, 3), 3);
        for d in sweep(&req) {
            assert!((8..=128).contains(&d.access_bits));
        }
    }

    #[test]
    fn design_derived_write_model_tracks_organization() {
        // A bigger array (more subarrays) writes with more parallelism —
        // until the program-power cap — so write time is sublinear in
        // cells for small arrays and linear past the cap.
        let small = characterize(
            &ArrayRequest::new(CellTechnology::MlcRram, mb_cells(1, 2), 2),
            OptTarget::ReadEdp,
        )
        .expect("feasible organization");
        let large = characterize(
            &ArrayRequest::new(CellTechnology::MlcRram, mb_cells(32, 2), 2),
            OptTarget::ReadEdp,
        )
        .expect("feasible organization");
        let t_small = write_model_for_design(&small).total_write_time_s(small.request.cells);
        let t_large = write_model_for_design(&large).total_write_time_s(large.request.cells);
        assert!(t_large > t_small);
        // 32x the cells but well under 32x the time would indicate a
        // parallelism win; with both past the cap the ratio approaches 32.
        let ratio = t_large / t_small;
        assert!((4.0..40.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn write_energy_ordering_follows_pulse_times() {
        // CTT's 100ms HCI pulses dwarf RRAM's µs pulse trains per cell.
        let ctt = characterize(
            &ArrayRequest::new(CellTechnology::MlcCtt, mb_cells(4, 3), 3),
            OptTarget::ReadEdp,
        )
        .expect("feasible organization");
        let rram = characterize(
            &ArrayRequest::new(CellTechnology::MlcRram, mb_cells(4, 3), 3),
            OptTarget::ReadEdp,
        )
        .expect("feasible organization");
        assert!(
            ctt.write_energy_per_cell_pj > 100.0 * rram.write_energy_per_cell_pj,
            "ctt {} vs rram {}",
            ctt.write_energy_per_cell_pj,
            rram.write_energy_per_cell_pj
        );
        let total = write_energy_mj(&ctt, 1_000_000);
        assert!(total > 0.0);
        assert!((write_energy_mj(&ctt, 2_000_000) / total - 2.0).abs() < 1e-9);
    }

    #[test]
    fn energy_for_bytes_scales_with_volume() {
        let d = characterize(
            &ArrayRequest::new(CellTechnology::MlcCtt, mb_cells(4, 3), 3),
            OptTarget::ReadEdp,
        )
        .expect("feasible organization");
        let one = d.read_energy_for_bytes(1024);
        let two = d.read_energy_for_bytes(2048);
        assert!((two / one - 2.0).abs() < 0.01);
    }
}
