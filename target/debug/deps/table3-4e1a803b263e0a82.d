/root/repo/target/debug/deps/table3-4e1a803b263e0a82.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-4e1a803b263e0a82: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
