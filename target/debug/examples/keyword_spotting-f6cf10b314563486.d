/root/repo/target/debug/examples/keyword_spotting-f6cf10b314563486.d: examples/keyword_spotting.rs Cargo.toml

/root/repo/target/debug/examples/libkeyword_spotting-f6cf10b314563486.rmeta: examples/keyword_spotting.rs Cargo.toml

examples/keyword_spotting.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
