//! Regenerates paper Fig. 1: area vs read latency for the evaluated eNVM
//! proposals, each characterized as a fixed-capacity 4MB array
//! (read-latency-optimized, as the paper's NVSim runs were).

use maxnvm_envm::CellTechnology;
use maxnvm_nvsim::extrapolate::fig1_points;
use maxnvm_nvsim::{characterize, ArrayRequest, OptTarget};

fn main() {
    let capacity = 4u64 * 1024 * 1024 * 8;
    println!("Fig. 1 (top): published chips extrapolated to 4MB");
    println!("{:<8} {:>12} {:>14}", "Ref", "Area(mm2)", "Read");
    for p in fig1_points(capacity) {
        let lat = p.read_latency_ns.map_or("-".into(), |l| {
            if l >= 1000.0 {
                format!("{:.0}us", l / 1000.0)
            } else {
                format!("{l:.1}ns")
            }
        });
        println!(
            "{:<8} {:>12} {:>14}",
            p.reference,
            p.area_mm2.map_or("-".into(), |a| format!("{a:.2}")),
            lat
        );
    }
    println!();
    println!("Fig. 1 (bottom): this reproduction's 4MB arrays per technology");
    println!(
        "{:<16} {:>4} {:>12} {:>12} {:>14} {:>10}",
        "Technology", "BPC", "Area(mm2)", "Read(ns)", "Energy(pJ)", "BW(GB/s)"
    );
    let capacity_bits = 4u64 * 1024 * 1024 * 8;
    for tech in CellTechnology::ALL {
        for bpc in [1u8, tech.max_bits_per_cell()] {
            if bpc > tech.max_bits_per_cell() {
                continue;
            }
            let req = ArrayRequest::with_capacity_bits(tech, capacity_bits, bpc);
            let d = characterize(&req, OptTarget::ReadLatency).expect("feasible organization");
            println!(
                "{:<16} {:>4} {:>12.3} {:>12.2} {:>14.2} {:>10.2}",
                tech.name(),
                bpc,
                d.area_mm2,
                d.read_latency_ns,
                d.read_energy_pj,
                d.read_bandwidth_gbps
            );
            if tech.max_bits_per_cell() == 1 {
                break;
            }
        }
    }
    println!();
    println!("Shape checks vs paper: CMOS-access arrays land at ns-scale reads;");
    println!("MLC packing shrinks area at a sensing-latency cost.");
}
