/root/repo/target/debug/deps/maxnvm-388f1d9124e575ee.d: crates/core/src/bin/maxnvm.rs Cargo.toml

/root/repo/target/debug/deps/libmaxnvm-388f1d9124e575ee.rmeta: crates/core/src/bin/maxnvm.rs Cargo.toml

crates/core/src/bin/maxnvm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
