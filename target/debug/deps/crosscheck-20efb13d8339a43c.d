/root/repo/target/debug/deps/crosscheck-20efb13d8339a43c.d: tests/crosscheck.rs

/root/repo/target/debug/deps/crosscheck-20efb13d8339a43c: tests/crosscheck.rs

tests/crosscheck.rs:
