/root/repo/target/debug/deps/system_models-8a05fc19fcd179ad.d: crates/bench/benches/system_models.rs Cargo.toml

/root/repo/target/debug/deps/libsystem_models-8a05fc19fcd179ad.rmeta: crates/bench/benches/system_models.rs Cargo.toml

crates/bench/benches/system_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
