/root/repo/target/debug/deps/maxnvm_nvdla-80e6da01558e5119.d: crates/nvdla/src/lib.rs crates/nvdla/src/config.rs crates/nvdla/src/hybrid.rs crates/nvdla/src/nonvolatility.rs crates/nvdla/src/perf.rs crates/nvdla/src/source.rs Cargo.toml

/root/repo/target/debug/deps/libmaxnvm_nvdla-80e6da01558e5119.rmeta: crates/nvdla/src/lib.rs crates/nvdla/src/config.rs crates/nvdla/src/hybrid.rs crates/nvdla/src/nonvolatility.rs crates/nvdla/src/perf.rs crates/nvdla/src/source.rs Cargo.toml

crates/nvdla/src/lib.rs:
crates/nvdla/src/config.rs:
crates/nvdla/src/hybrid.rs:
crates/nvdla/src/nonvolatility.rs:
crates/nvdla/src/perf.rs:
crates/nvdla/src/source.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
