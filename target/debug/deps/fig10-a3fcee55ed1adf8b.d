/root/repo/target/debug/deps/fig10-a3fcee55ed1adf8b.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-a3fcee55ed1adf8b: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
