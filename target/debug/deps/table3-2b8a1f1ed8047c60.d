/root/repo/target/debug/deps/table3-2b8a1f1ed8047c60.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-2b8a1f1ed8047c60: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
