//! Offline polyfill of the small slice of `crossbeam` this workspace
//! uses: `crossbeam::thread::scope` with `Scope::spawn` closures that
//! receive the scope again (crossbeam's signature, which std's scoped
//! threads dropped). Backed entirely by `std::thread::scope`, so the
//! semantics — join-before-return, borrow of non-'static data — match.

pub mod thread {
    /// Mirror of `crossbeam::thread::Result`: `Err` carries the payload
    /// of a panicking spawned thread.
    pub type Result<T> = std::thread::Result<T>;

    /// Scope handle passed to `scope` closures and re-passed to every
    /// spawned closure, mirroring crossbeam's API shape.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope again
        /// (unused by this workspace, but part of crossbeam's shape).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Create a scope for spawning borrowing threads. Unlike upstream
    /// crossbeam (which catches panics of the scope closure itself),
    /// the `Err` case here only reports panics from spawned threads
    /// that were left unjoined; explicitly joined threads report their
    /// panics through their own `join` result, as upstream does.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4];
            let total: u64 = super::scope(|s| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            })
            .unwrap();
            assert_eq!(total, 10);
        }

        #[test]
        fn spawned_panic_surfaces_through_join() {
            let result = super::scope(|s| {
                let h = s.spawn(|_| -> u32 { panic!("boom") });
                h.join()
            })
            .unwrap();
            assert!(result.is_err());
        }
    }
}
