/root/repo/target/release/deps/fig6-3c1076c6477ad166.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-3c1076c6477ad166: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
