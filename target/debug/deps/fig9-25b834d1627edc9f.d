/root/repo/target/debug/deps/fig9-25b834d1627edc9f.d: crates/bench/src/bin/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-25b834d1627edc9f.rmeta: crates/bench/src/bin/fig9.rs Cargo.toml

crates/bench/src/bin/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
