/root/repo/target/release/deps/table5-93fd562697599b81.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-93fd562697599b81: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
