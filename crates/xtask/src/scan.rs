//! A minimal Rust source scanner for `maxnvm-lint`.
//!
//! The build environment is offline, so the lint cannot depend on `syn`;
//! instead this module lexes a source file just far enough to separate
//! *code* from *comments and string contents*, and to mark lines that
//! belong to test-only items (`#[cfg(test)]` / `#[cfg(loom)]` / `#[test]`).
//! That is all the rule matchers need: they operate on identifier
//! occurrences in the code channel, never on comment or literal text.

/// The per-line result of scanning one source file.
pub struct FileScan {
    /// Source lines with comment text and string/char-literal contents
    /// replaced by spaces (delimiters are kept). Rule matching runs on
    /// this channel so `"HashMap"` in a string never fires D1.
    pub code: Vec<String>,
    /// Comment text per line (line, doc, and block comments), used for
    /// `// SAFETY:` and `maxnvm-lint: allow(...)` detection.
    pub comments: Vec<String>,
    /// Lines inside `#[cfg(test)]`, `#[cfg(loom)]`, or `#[test]` items.
    pub excluded: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    LineComment,
    /// Block comments nest in Rust; the payload is the nesting depth.
    BlockComment(u32),
    Str,
    /// Raw string; the payload is the number of `#` marks in the opener.
    RawStr(usize),
    CharLit,
}

/// Lexes `src` into code and comment channels.
pub fn scan(src: &str) -> FileScan {
    let chars: Vec<char> = src.chars().collect();
    let mut code = vec![String::new()];
    let mut comments = vec![String::new()];
    let mut mode = Mode::Code;
    let mut i = 0usize;

    // Pushes a character to the code channel of the current line.
    macro_rules! code_push {
        ($c:expr) => {
            code.last_mut().map(|l| l.push($c));
        };
    }
    macro_rules! comment_push {
        ($c:expr) => {
            comments.last_mut().map(|l| l.push($c));
        };
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if mode == Mode::LineComment {
                mode = Mode::Code;
            }
            code.push(String::new());
            comments.push(String::new());
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                let next = chars.get(i + 1).copied();
                match c {
                    '/' if next == Some('/') => {
                        mode = Mode::LineComment;
                        i += 2;
                    }
                    '/' if next == Some('*') => {
                        mode = Mode::BlockComment(1);
                        code_push!(' ');
                        code_push!(' ');
                        i += 2;
                    }
                    '"' => {
                        mode = Mode::Str;
                        code_push!('"');
                        i += 1;
                    }
                    'r' | 'b' | 'c' if is_raw_string_start(&chars, i) => {
                        // Skip the prefix (r, br, cr, b, c) up to the
                        // hashes/quote.
                        let mut j = i;
                        while matches!(chars.get(j), Some(&'r') | Some(&'b') | Some(&'c')) {
                            code_push!(chars[j]);
                            j += 1;
                        }
                        let mut hashes = 0usize;
                        while chars.get(j) == Some(&'#') {
                            code_push!('#');
                            hashes += 1;
                            j += 1;
                        }
                        // j now points at the opening quote.
                        code_push!('"');
                        mode = Mode::RawStr(hashes);
                        i = j + 1;
                    }
                    'b' | 'c' if next == Some('"') => {
                        code_push!(c);
                        code_push!('"');
                        mode = Mode::Str;
                        i += 2;
                    }
                    '\'' => {
                        if is_char_literal(&chars, i) {
                            code_push!('\'');
                            mode = Mode::CharLit;
                        } else {
                            // Lifetime: emit as-is, stay in code mode.
                            code_push!('\'');
                        }
                        i += 1;
                    }
                    _ => {
                        code_push!(c);
                        i += 1;
                    }
                }
            }
            Mode::LineComment => {
                comment_push!(c);
                i += 1;
            }
            Mode::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment_push!(c);
                    i += 1;
                }
            }
            Mode::Str => match c {
                // A `\` at end of line is a string continuation: leave the
                // newline for the line-break handler so numbering stays
                // in sync.
                '\\' if chars.get(i + 1) == Some(&'\n') => {
                    code_push!(' ');
                    i += 1;
                }
                '\\' => {
                    code_push!(' ');
                    code_push!(' ');
                    i += 2;
                }
                '"' => {
                    code_push!('"');
                    mode = Mode::Code;
                    i += 1;
                }
                _ => {
                    code_push!(' ');
                    i += 1;
                }
            },
            Mode::RawStr(hashes) => {
                if c == '"' && closes_raw_string(&chars, i, hashes) {
                    code_push!('"');
                    for _ in 0..hashes {
                        code_push!('#');
                    }
                    i += 1 + hashes;
                    mode = Mode::Code;
                } else {
                    code_push!(' ');
                    i += 1;
                }
            }
            Mode::CharLit => match c {
                '\\' => {
                    code_push!(' ');
                    code_push!(' ');
                    i += 2;
                }
                '\'' => {
                    code_push!('\'');
                    mode = Mode::Code;
                    i += 1;
                }
                _ => {
                    code_push!(' ');
                    i += 1;
                }
            },
        }
    }

    let excluded = mark_excluded(&code);
    FileScan {
        code,
        comments,
        excluded,
    }
}

/// Lexes `src` into a normalized token stream: comments and whitespace
/// are dropped, identifier/number runs are single tokens, string and
/// char literals are single tokens kept in their exact written form
/// (prefix, hashes, and escapes included), and every other character
/// stands alone. Two sources produce the same stream iff they differ
/// only in comments and formatting — the equivalence class the S1
/// semantics-drift fingerprint is defined over (DESIGN.md §16). Note
/// the comparison of literals is spelling-based, so `r"a"` and `"a"`
/// are *different* tokens: conservative in the right direction for a
/// drift gate.
pub fn token_stream(src: &str) -> Vec<String> {
    let chars: Vec<char> = src.chars().collect();
    let mut tokens: Vec<String> = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments: dropped entirely.
        if c == '/' && next == Some('/') {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && next == Some('*') {
            let mut depth = 1u32;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // String literals (plain, byte, C, and the raw forms of each).
        let is_raw = matches!(c, 'r' | 'b' | 'c') && is_raw_string_start(&chars, i);
        let is_prefixed = matches!(c, 'b' | 'c') && next == Some('"');
        if c == '"' || is_raw || is_prefixed {
            let start = i;
            let mut j = i;
            while matches!(chars.get(j), Some(&'r') | Some(&'b') | Some(&'c')) {
                j += 1;
            }
            let mut hashes = 0usize;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            j += 1; // the opening quote
            if is_raw {
                while j < chars.len() {
                    if chars[j] == '"' && closes_raw_string(&chars, j, hashes) {
                        j += 1 + hashes;
                        break;
                    }
                    j += 1;
                }
            } else {
                while j < chars.len() {
                    match chars[j] {
                        '\\' => j += 2,
                        '"' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
            }
            let j = j.min(chars.len());
            tokens.push(chars[start..j].iter().collect());
            i = j;
            continue;
        }
        // Char literals vs. lifetimes.
        if c == '\'' {
            if is_char_literal(&chars, i) {
                let start = i;
                let mut j = i + 1;
                while j < chars.len() {
                    match chars[j] {
                        '\\' => j += 2,
                        '\'' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                let j = j.min(chars.len());
                tokens.push(chars[start..j].iter().collect());
                i = j;
                continue;
            }
            tokens.push("'".to_string());
            i += 1;
            continue;
        }
        // Identifier / number runs.
        if is_ident_char(c) {
            let mut j = i;
            while j < chars.len() && is_ident_char(chars[j]) {
                j += 1;
            }
            tokens.push(chars[i..j].iter().collect());
            i = j;
            continue;
        }
        // Any other character is a token of its own.
        tokens.push(c.to_string());
        i += 1;
    }
    tokens
}

/// `r"` / `r#"` / `br"` / `br#"` / `cr"` / `cr#"` at position `i`?
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // Must not be the tail of a longer identifier (e.g. `for r` vs `var`).
    if i > 0 && is_ident_char(chars[i - 1]) {
        return false;
    }
    let mut j = i;
    if matches!(chars.get(j), Some(&'b') | Some(&'c')) {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Does the `"` at `i` close a raw string opened with `hashes` marks?
fn closes_raw_string(chars: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Distinguishes `'a'` / `'\n'` (char literal) from `'static` (lifetime).
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(c) if is_ident_char(*c) => chars.get(i + 2) == Some(&'\''),
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Identifier constituent characters.
pub fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Marks lines inside `#[cfg(test)]` / `#[cfg(loom)]` / `#[test]` items.
///
/// Tracks brace depth through the code channel; when a test attribute is
/// seen, the next braced body at the same depth is excluded. A `;` at
/// that depth first (an item with no body, e.g. a gated `use`) cancels
/// the pending exclusion.
fn mark_excluded(code: &[String]) -> Vec<bool> {
    let mut excluded = vec![false; code.len()];
    let mut depth: i32 = 0;
    let mut pending: Option<i32> = None;
    let mut skip_floor: Option<i32> = None;
    let mut attr: Option<(String, i32)> = None; // (buffer, bracket depth)

    for (ln, line) in code.iter().enumerate() {
        if skip_floor.is_some() {
            excluded[ln] = true;
        }
        let chars: Vec<char> = line.chars().collect();
        let mut j = 0usize;
        while j < chars.len() {
            let c = chars[j];
            if let Some((buf, bdepth)) = attr.as_mut() {
                match c {
                    '[' => *bdepth += 1,
                    ']' => {
                        *bdepth -= 1;
                        if *bdepth == 0 {
                            if is_test_attr(buf) {
                                pending = Some(depth);
                            }
                            attr = None;
                        }
                    }
                    _ => buf.push(c),
                }
                j += 1;
                continue;
            }
            match c {
                '#' if skip_floor.is_none() => {
                    // `#[...]` or `#![...]`; inner attributes (`#!`) apply
                    // to the enclosing module, which we do not exclude.
                    let mut k = j + 1;
                    if chars.get(k) == Some(&'!') {
                        k += 1;
                    }
                    if chars.get(k) == Some(&'[') {
                        attr = Some((String::new(), 1));
                        j = k + 1;
                        continue;
                    }
                }
                '{' => {
                    depth += 1;
                    if pending == Some(depth - 1) {
                        skip_floor = Some(depth - 1);
                        pending = None;
                        excluded[ln] = true;
                    }
                }
                '}' => {
                    depth -= 1;
                    if skip_floor == Some(depth) {
                        skip_floor = None;
                    }
                }
                ';' if pending == Some(depth) => pending = None,
                _ => {}
            }
            j += 1;
        }
    }
    excluded
}

/// Is this attribute body a test/loom gate?
///
/// Matches `test`, `cfg(test)`, `cfg(loom)`, and `cfg(all/any(...))`
/// combinations containing the `test` or `loom` words — but not
/// `cfg(not(...))` gates, which guard *production* code.
fn is_test_attr(attr: &str) -> bool {
    let t = attr.trim();
    if t == "test" {
        return true;
    }
    if !has_word(t, "cfg") || has_word(t, "not") {
        return false;
    }
    has_word(t, "test") || has_word(t, "loom")
}

/// Whole-identifier containment check.
pub fn has_word(haystack: &str, word: &str) -> bool {
    !find_word(haystack, word).is_empty()
}

/// Byte offsets of whole-identifier occurrences of `word` in `line`.
pub fn find_word(line: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let wlen = word.len();
    let mut start = 0usize;
    while let Some(pos) = line[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1] as char);
        let after_ok = at + wlen >= bytes.len() || !is_ident_char(bytes[at + wlen] as char);
        if before_ok && after_ok {
            out.push(at);
        }
        start = at + wlen.max(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let s = scan("let x = \"HashMap\"; // Instant in comment\n");
        assert!(!s.code[0].contains("HashMap"));
        assert!(s.comments[0].contains("Instant"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let s = scan("let x = r#\"unwrap() inside\"#;\nlet y = 1;\n");
        assert!(!s.code[0].contains("unwrap"));
        assert!(s.code[1].contains("let y = 1;"));
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let s = scan("fn f<'a>(x: &'a str) { x.unwrap() }\n");
        assert!(s.code[0].contains("unwrap"));
    }

    #[test]
    fn char_literal_contents_are_blanked() {
        let s = scan("let c = '\"'; let d = x.unwrap();\n");
        assert!(s.code[0].contains("unwrap"));
    }

    #[test]
    fn cfg_test_modules_are_excluded() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let s = scan(src);
        assert!(!s.excluded[0]);
        assert!(s.excluded[3]);
        assert!(!s.excluded[5]);
    }

    #[test]
    fn cfg_not_test_is_not_excluded() {
        let src = "#[cfg(not(test))]\nfn prod() { real(); }\n";
        let s = scan(src);
        assert!(!s.excluded[1]);
    }

    #[test]
    fn gated_use_does_not_eat_the_next_block() {
        let src = "#[cfg(loom)]\nuse loom::sync::Mutex;\nfn prod() { body(); }\n";
        let s = scan(src);
        assert!(!s.excluded[2]);
    }

    #[test]
    fn find_word_respects_boundaries() {
        assert_eq!(find_word("unwrap_or(x)", "unwrap"), Vec::<usize>::new());
        assert_eq!(find_word("a.unwrap()", "unwrap"), vec![2]);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let s = scan("/* outer /* inner */ still comment */ let x = 1;\n");
        assert!(s.code[0].contains("let x = 1;"));
        assert!(!s.code[0].contains("inner"));
    }

    #[test]
    fn rules_after_a_nested_comment_are_still_seen() {
        // A depth-unaware lexer would end the comment at the *first*
        // `*/` and hide the trailing code — or, inversely, treat
        // `x.unwrap()` inside the outer comment as code.
        let s = scan("/* /* inner */ */ x.unwrap();\n");
        assert!(s.code[0].contains("unwrap"));
        let s = scan("/* outer /* inner */ x.unwrap() */ let y = 1;\n");
        assert!(!s.code[0].contains("unwrap"));
        assert!(s.code[0].contains("let y = 1;"));
    }

    #[test]
    fn byte_and_raw_byte_strings_are_blanked() {
        let s = scan("let a = b\"unwrap()\"; let b = br#\"HashMap\"#; let c = 1;\n");
        assert!(!s.code[0].contains("unwrap"));
        assert!(!s.code[0].contains("HashMap"));
        assert!(s.code[0].contains("let c = 1;"));
    }

    #[test]
    fn c_strings_and_raw_c_strings_are_blanked() {
        let s = scan("let p = c\"thread_rng\"; let q = cr#\"Instant\"#; let r = 2;\n");
        assert!(!s.code[0].contains("thread_rng"));
        assert!(!s.code[0].contains("Instant"));
        assert!(s.code[0].contains("let r = 2;"));
    }

    #[test]
    fn raw_string_with_inner_quote_hash_needs_full_delimiter() {
        // `"#` inside an `r##"…"##` literal must not close it.
        let s = scan("let x = r##\"tail\"# unwrap()\"##; let y = 3;\n");
        assert!(!s.code[0].contains("unwrap"));
        assert!(s.code[0].contains("let y = 3;"));
    }

    #[test]
    fn token_stream_ignores_comments_and_formatting() {
        let a = token_stream("fn f(x: u32) -> u32 { x + 1 }\n");
        let b = token_stream(
            "// leading comment\nfn f(\n    x: u32 /* inner */\n) -> u32 {\n    x + 1\n}\n",
        );
        assert_eq!(a, b);
    }

    #[test]
    fn token_stream_sees_any_token_change() {
        let a = token_stream("fn f(x: u32) -> u32 { x + 1 }\n");
        let b = token_stream("fn f(x: u32) -> u32 { x + 2 }\n");
        let c = token_stream("fn f(x: u32) -> u32 { x - 1 }\n");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn token_stream_keeps_literal_contents() {
        // String contents are semantics (e.g. a spool file extension):
        // unlike the rule channels, the fingerprint must see them.
        let a = token_stream("let e = \"ckpt\";\n");
        let b = token_stream("let e = \"tmp\";\n");
        assert_ne!(a, b);
        assert_eq!(a[3], "\"ckpt\"");
    }

    #[test]
    fn token_stream_handles_raw_strings_and_lifetimes() {
        let t = token_stream("fn f<'a>(s: &'a str) -> String { r#\"x\"#.to_string() }\n");
        assert!(t.contains(&"r#\"x\"#".to_string()));
        assert!(t.contains(&"'".to_string()));
        let t = token_stream("let c = 'q'; let lf: &'static str = \"\";\n");
        assert!(t.contains(&"'q'".to_string()));
    }
}
