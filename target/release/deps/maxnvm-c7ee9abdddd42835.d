/root/repo/target/release/deps/maxnvm-c7ee9abdddd42835.d: crates/core/src/lib.rs

/root/repo/target/release/deps/libmaxnvm-c7ee9abdddd42835.rlib: crates/core/src/lib.rs

/root/repo/target/release/deps/libmaxnvm-c7ee9abdddd42835.rmeta: crates/core/src/lib.rs

crates/core/src/lib.rs:
