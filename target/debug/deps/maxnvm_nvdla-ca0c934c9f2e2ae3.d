/root/repo/target/debug/deps/maxnvm_nvdla-ca0c934c9f2e2ae3.d: crates/nvdla/src/lib.rs crates/nvdla/src/config.rs crates/nvdla/src/hybrid.rs crates/nvdla/src/nonvolatility.rs crates/nvdla/src/perf.rs crates/nvdla/src/source.rs

/root/repo/target/debug/deps/maxnvm_nvdla-ca0c934c9f2e2ae3: crates/nvdla/src/lib.rs crates/nvdla/src/config.rs crates/nvdla/src/hybrid.rs crates/nvdla/src/nonvolatility.rs crates/nvdla/src/perf.rs crates/nvdla/src/source.rs

crates/nvdla/src/lib.rs:
crates/nvdla/src/config.rs:
crates/nvdla/src/hybrid.rs:
crates/nvdla/src/nonvolatility.rs:
crates/nvdla/src/perf.rs:
crates/nvdla/src/source.rs:
