/root/repo/target/debug/deps/crosscheck-e44d70994a829346.d: tests/crosscheck.rs Cargo.toml

/root/repo/target/debug/deps/libcrosscheck-e44d70994a829346.rmeta: tests/crosscheck.rs Cargo.toml

tests/crosscheck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
