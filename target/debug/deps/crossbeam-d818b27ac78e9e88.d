/root/repo/target/debug/deps/crossbeam-d818b27ac78e9e88.d: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/crossbeam-d818b27ac78e9e88: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
