//! Fixed-point quantization (§3.1.2) — the alternative bit-reduction
//! technique the paper compares k-means clustering against.
//!
//! "Depending on the dynamic range of the DNN weight values, the number
//! of integer and fractional bits can be drastically reduced [...] We
//! find clustering uses strictly fewer bits per weight than fixed-point
//! quantization without significant re-training for all DNNs." This
//! module provides the fixed-point side of that comparison, plus the
//! bits-at-iso-error search the claim rests on.

use maxnvm_dnn::network::LayerMatrix;
use serde::{Deserialize, Serialize};

/// A signed fixed-point format: one sign bit, `int_bits` integer bits,
/// `frac_bits` fractional bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FixedPoint {
    /// Integer bits (excluding sign).
    pub int_bits: u8,
    /// Fractional bits.
    pub frac_bits: u8,
}

impl FixedPoint {
    /// Creates a format.
    ///
    /// # Panics
    ///
    /// Panics if the total width (with sign) exceeds 16 bits or is zero.
    pub fn new(int_bits: u8, frac_bits: u8) -> Self {
        let total = 1 + int_bits as u32 + frac_bits as u32;
        assert!((2..=16).contains(&total), "width {total} out of range");
        Self {
            int_bits,
            frac_bits,
        }
    }

    /// Total bits per weight, including the sign bit.
    pub fn total_bits(&self) -> u8 {
        1 + self.int_bits + self.frac_bits
    }

    /// The largest representable magnitude.
    pub fn max_value(&self) -> f32 {
        let scale = (1u32 << self.frac_bits) as f32;
        let max_q = (1i32 << (self.int_bits + self.frac_bits)) - 1;
        max_q as f32 / scale
    }

    /// Quantizes one value (round-to-nearest, saturating).
    pub fn quantize(&self, v: f32) -> f32 {
        let scale = (1u32 << self.frac_bits) as f32;
        let max_q = (1i32 << (self.int_bits + self.frac_bits)) - 1;
        let q = (v * scale)
            .round()
            .clamp(-(max_q as f32) - 1.0, max_q as f32);
        q / scale
    }

    /// Quantizes a whole matrix, preserving exact zeros (pruned weights
    /// stay pruned).
    pub fn quantize_matrix(&self, m: &LayerMatrix) -> LayerMatrix {
        let data = m
            .data
            .iter()
            .map(|&v| if v == 0.0 { 0.0 } else { self.quantize(v) })
            .collect();
        LayerMatrix::new(&m.name, m.rows, m.cols, data)
    }

    /// Mean squared quantization error over a matrix.
    pub fn mse(&self, m: &LayerMatrix) -> f64 {
        if m.data.is_empty() {
            return 0.0;
        }
        m.data
            .iter()
            .map(|&v| {
                let q = if v == 0.0 { 0.0 } else { self.quantize(v) };
                ((v - q) as f64).powi(2)
            })
            .sum::<f64>()
            / m.data.len() as f64
    }

    /// The narrowest format of `total_bits` width for a weight range:
    /// integer bits to cover `max_abs`, the rest fractional.
    pub fn for_range(total_bits: u8, max_abs: f32) -> Self {
        assert!((2..=16).contains(&total_bits), "width out of range");
        let mut int_bits = 0u8;
        while int_bits < total_bits - 1 && (1i32 << int_bits) as f32 <= max_abs {
            int_bits += 1;
        }
        Self::new(int_bits, total_bits - 1 - int_bits)
    }
}

/// The fewest total bits at which fixed-point quantization reaches a mean
/// squared error at or below `target_mse` for `matrix` — the fixed-point
/// side of the paper's "clustering uses strictly fewer bits" comparison.
///
/// Returns `None` if even 16 bits cannot reach the target.
pub fn min_bits_for_mse(matrix: &LayerMatrix, target_mse: f64) -> Option<u8> {
    let max_abs = matrix.data.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
    (2..=16u8).find(|&bits| FixedPoint::for_range(bits, max_abs).mse(matrix) <= target_mse)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusteredLayer;
    use rand::{Rng, SeedableRng};

    fn weights(seed: u64) -> LayerMatrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // Gaussian-ish DNN weights in (-1, 1) with 50% pruned zeros.
        let data = (0..64 * 64)
            .map(|_| {
                if rng.gen::<f64>() < 0.5 {
                    0.0
                } else {
                    (rng.gen::<f32>() - 0.5) + (rng.gen::<f32>() - 0.5) + (rng.gen::<f32>() - 0.5)
                }
            })
            .collect();
        LayerMatrix::new("w", 64, 64, data)
    }

    #[test]
    fn quantize_is_idempotent() {
        let f = FixedPoint::new(1, 6);
        for v in [-1.3f32, 0.0, 0.01, 0.5, 1.99] {
            let q = f.quantize(v);
            assert_eq!(f.quantize(q), q, "v = {v}");
        }
    }

    #[test]
    fn quantize_saturates() {
        let f = FixedPoint::new(1, 2);
        assert_eq!(f.quantize(100.0), f.max_value());
        assert!(f.quantize(-100.0) <= -f.max_value());
    }

    #[test]
    fn more_frac_bits_reduce_error() {
        let m = weights(1);
        let coarse = FixedPoint::new(1, 2).mse(&m);
        let fine = FixedPoint::new(1, 8).mse(&m);
        assert!(fine < coarse / 10.0, "{fine} vs {coarse}");
    }

    #[test]
    fn zeros_survive_quantization() {
        // Pruned zeros stay exactly zero (a small non-zero may also round
        // to zero — that's quantization, not corruption).
        let m = weights(2);
        let q = FixedPoint::new(1, 4).quantize_matrix(&m);
        for (a, b) in m.data.iter().zip(&q.data) {
            if *a == 0.0 {
                assert_eq!(*b, 0.0);
            }
        }
        assert!(q.sparsity() >= m.sparsity());
    }

    #[test]
    fn for_range_covers_the_range() {
        let f = FixedPoint::for_range(8, 3.2);
        assert!(f.max_value() >= 3.2);
        assert_eq!(f.total_bits(), 8);
        let g = FixedPoint::for_range(8, 0.4);
        assert_eq!(g.int_bits, 0, "small range needs no integer bits");
    }

    #[test]
    fn clustering_beats_fixed_point_at_iso_error() {
        // §3.1.2: clustering uses strictly fewer bits per weight than
        // fixed-point at the same representational fidelity.
        let m = weights(3);
        for cluster_bits in [4u8, 5, 6] {
            let clustered = ClusteredLayer::from_matrix(&m, cluster_bits, 7);
            let target = clustered.quantization_mse(&m);
            let fp_bits =
                min_bits_for_mse(&m, target).expect("16 bits must reach any k-means MSE here");
            assert!(
                fp_bits > cluster_bits,
                "{cluster_bits}-bit clustering (mse {target:.2e}) matched by only {fp_bits} fixed-point bits"
            );
        }
    }

    #[test]
    fn min_bits_is_monotone_in_target() {
        let m = weights(4);
        let loose = min_bits_for_mse(&m, 1e-3).unwrap();
        let tight = min_bits_for_mse(&m, 1e-6).unwrap();
        assert!(tight >= loose);
    }
}
