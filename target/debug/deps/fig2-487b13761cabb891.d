/root/repo/target/debug/deps/fig2-487b13761cabb891.d: crates/bench/src/bin/fig2.rs Cargo.toml

/root/repo/target/debug/deps/libfig2-487b13761cabb891.rmeta: crates/bench/src/bin/fig2.rs Cargo.toml

crates/bench/src/bin/fig2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
