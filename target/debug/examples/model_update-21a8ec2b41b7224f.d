/root/repo/target/debug/examples/model_update-21a8ec2b41b7224f.d: examples/model_update.rs

/root/repo/target/debug/examples/model_update-21a8ec2b41b7224f: examples/model_update.rs

examples/model_update.rs:
