/root/repo/target/debug/deps/fig6-55f29a573341385f.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-55f29a573341385f: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
