//! Extrapolation of the published Table 1 chips to a common capacity —
//! how the paper builds Fig. 1 ("extrapolated and characterized for a
//! fixed capacity (4MB)").
//!
//! A published macro gives (capacity, area, read latency). Scaling to a
//! target capacity: cell-array area scales linearly with bits (same cell,
//! same node); periphery amortizes, captured with a sublinear exponent;
//! random-access latency grows with the decoder depth, i.e. with
//! `log2(capacity)`.

use maxnvm_envm::reference::ReferenceChip;
use serde::{Deserialize, Serialize};

/// A published chip scaled to a target capacity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtrapolatedArray {
    /// Citation tag of the source chip.
    pub reference: &'static str,
    /// Target capacity in bits.
    pub capacity_bits: u64,
    /// Extrapolated macro area (mm²), if the source published an area.
    pub area_mm2: Option<f64>,
    /// Extrapolated random read latency (ns), if published.
    pub read_latency_ns: Option<f64>,
}

/// Periphery amortization: total area scales with `(ratio)^AREA_EXP`
/// (slightly sublinear — bigger macros amortize decoders and pads).
const AREA_EXP: f64 = 0.95;
/// Latency grows by this many ns per doubling of capacity (global
/// decode + H-tree depth), on top of the published access time.
const LATENCY_NS_PER_DOUBLING: f64 = 0.15;

/// Scales one published chip to `capacity_bits`.
pub fn extrapolate_reference(chip: &ReferenceChip, capacity_bits: u64) -> ExtrapolatedArray {
    assert!(capacity_bits > 0, "empty capacity");
    let ratio = capacity_bits as f64 / chip.capacity_bits as f64;
    let area_mm2 = chip.macro_area_mm2.map(|a| a * ratio.powf(AREA_EXP));
    let read_latency_ns = chip.read_latency_ns.map(|l| {
        let doublings = ratio.log2();
        (l + LATENCY_NS_PER_DOUBLING * doublings).max(l * 0.5)
    });
    ExtrapolatedArray {
        reference: chip.reference,
        capacity_bits,
        area_mm2,
        read_latency_ns,
    }
}

/// All Table 1 chips extrapolated to a capacity (the Fig. 1 scatter).
pub fn fig1_points(capacity_bits: u64) -> Vec<ExtrapolatedArray> {
    maxnvm_envm::reference::table1_chips()
        .iter()
        .map(|c| extrapolate_reference(c, capacity_bits))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxnvm_envm::reference::table1_chips;

    const FOUR_MB: u64 = 4 * 1024 * 1024 * 8;

    #[test]
    fn identity_extrapolation_is_exact() {
        for chip in table1_chips() {
            let e = extrapolate_reference(&chip, chip.capacity_bits);
            if let (Some(a), Some(b)) = (e.area_mm2, chip.macro_area_mm2) {
                assert!((a - b).abs() < 1e-9, "{}", chip.reference);
            }
            assert_eq!(e.read_latency_ns, chip.read_latency_ns);
        }
    }

    #[test]
    fn scaling_up_grows_area_and_latency() {
        let chips = table1_chips();
        let small = &chips[0]; // 1Mb RRAM
        let e = extrapolate_reference(small, FOUR_MB);
        assert!(e.area_mm2.unwrap() > small.macro_area_mm2.unwrap() * 10.0);
        assert!(e.read_latency_ns.unwrap() > small.read_latency_ns.unwrap());
    }

    #[test]
    fn scaling_down_a_gigachip_shrinks_it() {
        let chips = table1_chips();
        let giga = chips.iter().find(|c| c.reference == "[45]").unwrap();
        let e = extrapolate_reference(giga, FOUR_MB);
        assert!(e.area_mm2.unwrap() < 1.0, "{:?}", e.area_mm2);
        // Crossbar latency stays dominated by the access mechanism.
        assert!(e.read_latency_ns.unwrap() > 10_000.0);
    }

    #[test]
    fn fig1_preserves_the_papers_groupings() {
        // At 4MB, CMOS-access RRAM/STT sit at ns latencies and sub-10mm²;
        // diode crossbars are orders slower.
        let pts = fig1_points(FOUR_MB);
        assert_eq!(pts.len(), 7);
        let stt = pts.iter().find(|p| p.reference == "[19]").unwrap();
        let rram = pts.iter().find(|p| p.reference == "[8]").unwrap();
        let xbar = pts.iter().find(|p| p.reference == "[45]").unwrap();
        assert!(stt.read_latency_ns.unwrap() < 5.0);
        assert!(rram.read_latency_ns.unwrap() < 10.0);
        assert!(xbar.read_latency_ns.unwrap() / rram.read_latency_ns.unwrap() > 1000.0);
    }
}
