//! The supervisor actor: one event-loop thread multiplexing many
//! campaign streams over the shared engine pool.
//!
//! Clients talk to the loop through a *bounded* event channel (backing
//! the admission-control guarantee) and observe stream lifecycles
//! through a shared status table + condvar. Runner threads execute one
//! stream each via `Campaign::run_controlled`, spooling checkpoints
//! through the configured [`CheckpointStore`]; the loop's periodic tick
//! drives the per-stream watchdog.

use crate::config::SupervisorConfig;
use crate::error::Rejected;
use crate::job::{CampaignJob, StreamId, StreamState, StreamStatus};
use maxnvm_dnn::network::{LayerMatrix, WeightDelta};
use maxnvm_faultsim::checkpoint::{CheckpointConfig, CheckpointStore};
use maxnvm_faultsim::evaluate::{AccuracyEval, EvalScratch, SparseModel};
use maxnvm_faultsim::{CampaignResult, CancelToken, EngineError, RunControl};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Wraps a job's evaluator so every evaluation bumps a shared progress
/// counter — the watchdog's liveness signal. All five trait methods
/// forward, so the engine's fast sparse/delta paths (and their
/// bit-exactness) are preserved; only the counter is added.
struct HeartbeatEval {
    inner: Arc<dyn AccuracyEval + Send + Sync>,
    beats: Arc<AtomicU64>,
}

impl HeartbeatEval {
    fn beat(&self) {
        self.beats.fetch_add(1, Ordering::Relaxed);
    }
}

impl AccuracyEval for HeartbeatEval {
    fn baseline_error(&self) -> f64 {
        self.inner.baseline_error()
    }

    fn eval(&self, mats: &[LayerMatrix]) -> f64 {
        self.beat();
        self.inner.eval(mats)
    }

    fn eval_scratch(&self, mats: &[LayerMatrix], scratch: &mut EvalScratch) -> f64 {
        self.beat();
        self.inner.eval_scratch(mats, scratch)
    }

    fn eval_deltas(
        &self,
        key: u64,
        clean: &[LayerMatrix],
        deltas: &[Vec<WeightDelta>],
        scratch: &mut EvalScratch,
    ) -> f64 {
        self.beat();
        self.inner.eval_deltas(key, clean, deltas, scratch)
    }

    fn eval_deltas_sparse(
        &self,
        key: u64,
        clean: &SparseModel,
        deltas: &[Vec<WeightDelta>],
        scratch: &mut EvalScratch,
    ) -> f64 {
        self.beat();
        self.inner.eval_deltas_sparse(key, clean, deltas, scratch)
    }
}

/// Wraps a job's checkpoint store so every snapshot I/O attempt — the
/// resume-time load, each retry attempt inside the backoff loop, the
/// self-heal removal — bumps the same progress counter the evaluator
/// does. Without it, a stream riding out transient spool faults (whose
/// per-attempt backoff can dwarf the eval cadence) would look stalled
/// to the watchdog and be spuriously quarantined.
#[derive(Debug)]
struct HeartbeatStore {
    inner: Arc<dyn CheckpointStore>,
    beats: Arc<AtomicU64>,
}

impl HeartbeatStore {
    fn beat(&self) {
        self.beats.fetch_add(1, Ordering::Relaxed);
    }
}

impl CheckpointStore for HeartbeatStore {
    fn write_atomic(&self, path: &Path, text: &str) -> Result<(), EngineError> {
        self.beat();
        self.inner.write_atomic(path, text)
    }

    fn read(&self, path: &Path) -> Result<String, EngineError> {
        self.beat();
        self.inner.read(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.beat();
        self.inner.exists(path)
    }

    fn remove(&self, path: &Path) -> Result<(), EngineError> {
        self.beat();
        self.inner.remove(path)
    }
}

/// Messages into the event loop. Client-facing sends go through the
/// bounded channel, so a wedged loop turns into backpressure at the
/// API, never unbounded queue growth.
enum Event {
    Submit {
        id: StreamId,
        job: CampaignJob,
    },
    Cancel {
        id: StreamId,
    },
    Evict {
        id: StreamId,
    },
    Done {
        id: StreamId,
        /// The generation of the runner reporting in; a `Done` whose
        /// generation does not match the live [`Running`] entry is
        /// stale and must not touch the current run.
        gen: u64,
        outcome: Result<CampaignResult, EngineError>,
    },
    Shutdown,
}

/// State shared between the API handles and the loop thread.
struct Shared {
    table: Mutex<BTreeMap<StreamId, StreamStatus>>,
    cond: Condvar,
    shutting_down: AtomicBool,
}

impl Shared {
    /// Updates a stream's status and wakes every waiter.
    fn set(&self, id: &StreamId, update: impl FnOnce(&mut StreamStatus)) {
        let mut table = self.table.lock();
        if let Some(status) = table.get_mut(id) {
            update(status);
        }
        self.cond.notify_all();
    }
}

/// A stream currently on a runner thread.
struct Running {
    /// Monotonic per-spawn generation; pairs this entry with the `Done`
    /// event of exactly the runner it describes.
    gen: u64,
    token: CancelToken,
    beats: Arc<AtomicU64>,
    last_beat: u64,
    last_progress: Instant,
    /// Quarantined streams no longer hold an execution slot.
    quarantined: bool,
    /// Terminal state to apply when the runner drains, decided by a
    /// cancel/evict/shutdown that raced the run.
    override_state: Option<StreamState>,
    handle: JoinHandle<()>,
}

/// The campaign supervisor: accepts streams, runs up to
/// `max_running` concurrently, watches them for stalls, and survives
/// both its own crash (spool checkpoints + resubmission resume) and
/// its storage's misbehaviour (typed disk-full eviction, bounded
/// retries, torn-snapshot self-heal).
pub struct Supervisor {
    shared: Arc<Shared>,
    tx: SyncSender<Event>,
    loop_handle: Option<JoinHandle<()>>,
    capacity: usize,
}

impl Supervisor {
    /// Starts the event loop.
    ///
    /// Errors with [`EngineError::InvalidConfig`] if
    /// `MAXNVM_WATCHDOG_SECS` or `MAXNVM_CHECKPOINT_RETRIES` is set but
    /// malformed (the same boundary-validation contract as
    /// `MAXNVM_THREADS`/`MAXNVM_FORCE_SCALAR`), and with
    /// [`EngineError::CheckpointIo`] if the spool directory cannot be
    /// created.
    pub fn start(config: SupervisorConfig) -> Result<Self, EngineError> {
        crate::config::env_watchdog_secs()?;
        maxnvm_faultsim::checkpoint::env_checkpoint_retries()?;
        std::fs::create_dir_all(&config.spool_dir).map_err(|e| EngineError::CheckpointIo {
            path: config.spool_dir.display().to_string(),
            detail: e.to_string(),
        })?;
        let shared = Arc::new(Shared {
            table: Mutex::new(BTreeMap::new()),
            cond: Condvar::new(),
            shutting_down: AtomicBool::new(false),
        });
        // Channel capacity = in-flight bound: even a storm of submits
        // racing the admission check degrades to typed QueueFull.
        let (tx, rx) = sync_channel::<Event>(config.max_inflight.max(1));
        let capacity = config.max_inflight;
        let loop_shared = Arc::clone(&shared);
        let loop_tx = tx.clone();
        let loop_handle = std::thread::Builder::new()
            .name("maxnvm-supervisor".to_string())
            .spawn(move || event_loop(config, loop_shared, loop_tx, rx))
            .map_err(|e| EngineError::Internal {
                detail: format!("failed to spawn supervisor thread: {e}"),
            })?;
        Ok(Self {
            shared,
            tx,
            loop_handle: Some(loop_handle),
            capacity,
        })
    }

    /// Submits a stream. Admission is checked synchronously: an invalid
    /// id, a duplicate *active* id, a full supervisor, or one shutting
    /// down is a typed [`Rejected`] — the job is returned to the caller
    /// untouched in spirit (nothing was queued).
    ///
    /// Resubmitting a *terminal* stream id is allowed and is the resume
    /// path: the fresh run picks up the stream's spool checkpoint (if
    /// one survived) and completes byte-identically to an uninterrupted
    /// run. A quarantined id resubmitted while its stalled runner is
    /// still draining is accepted but deferred — the fresh run starts
    /// only once the old runner exits, so two runners never share one
    /// spool file.
    pub fn submit(&self, id: impl Into<String>, job: CampaignJob) -> Result<StreamId, Rejected> {
        let id = StreamId::new(id)?;
        if self.shared.shutting_down.load(Ordering::Acquire) {
            return Err(Rejected::ShuttingDown);
        }
        let prev = {
            let mut table = self.shared.table.lock();
            let active = table.values().filter(|s| s.state.is_active()).count();
            if active >= self.capacity {
                return Err(Rejected::QueueFull {
                    capacity: self.capacity,
                });
            }
            if table.get(&id).is_some_and(|s| s.state.is_active()) {
                return Err(Rejected::DuplicateStream {
                    id: id.as_str().to_string(),
                });
            }
            table.insert(id.clone(), StreamStatus::submitted())
        };
        match self.tx.try_send(Event::Submit {
            id: id.clone(),
            job,
        }) {
            Ok(()) => Ok(id),
            Err(e) => {
                // Roll the reservation back. A first submission never
                // existed; a failed *re*submission must restore the
                // prior terminal status — the client may still query
                // the finished stream — not erase it.
                {
                    let mut table = self.shared.table.lock();
                    match prev {
                        Some(prior) => {
                            table.insert(id.clone(), prior);
                        }
                        None => {
                            table.remove(&id);
                        }
                    }
                }
                self.shared.cond.notify_all();
                match e {
                    TrySendError::Full(_) => Err(Rejected::QueueFull {
                        capacity: self.capacity,
                    }),
                    TrySendError::Disconnected(_) => Err(Rejected::ShuttingDown),
                }
            }
        }
    }

    /// Requests cooperative cancellation of a queued or running stream.
    /// Returns `false` for unknown/terminal streams (nothing to do).
    pub fn cancel(&self, id: &StreamId) -> bool {
        self.signal(id, Event::Cancel { id: id.clone() })
    }

    /// Evicts a queued or running stream: it stops (cooperatively) and
    /// its spool checkpoint is *kept*, so resubmitting later resumes
    /// it. Returns `false` for unknown/terminal streams.
    pub fn evict(&self, id: &StreamId) -> bool {
        self.signal(id, Event::Evict { id: id.clone() })
    }

    fn signal(&self, id: &StreamId, event: Event) -> bool {
        let live = self
            .shared
            .table
            .lock()
            .get(id)
            .is_some_and(|s| s.state.is_active());
        if !live {
            return false;
        }
        self.tx.send(event).is_ok()
    }

    /// The stream's current status, if the supervisor knows the id.
    pub fn status(&self, id: &StreamId) -> Option<StreamStatus> {
        self.shared.table.lock().get(id).cloned()
    }

    /// Blocks until the stream reaches a terminal state and returns its
    /// final status (`None` for ids never submitted).
    pub fn wait(&self, id: &StreamId) -> Option<StreamStatus> {
        let mut table = self.shared.table.lock();
        loop {
            match table.get(id) {
                None => return None,
                Some(s) if s.state.is_terminal() => return Some(s.clone()),
                Some(_) => self.shared.cond.wait(&mut table),
            }
        }
    }

    /// Stops accepting work, cancels running streams, evicts queued
    /// ones (their spool checkpoints survive for resumption), drains
    /// the loop, and returns the final status table.
    pub fn shutdown(mut self) -> BTreeMap<StreamId, StreamStatus> {
        self.shutdown_impl();
        self.shared.table.lock().clone()
    }

    fn shutdown_impl(&mut self) {
        self.shared.shutting_down.store(true, Ordering::Release);
        if let Some(handle) = self.loop_handle.take() {
            let _ = self.tx.send(Event::Shutdown);
            let _ = handle.join();
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Ids of the spool checkpoints under `dir` — the streams a restarted
/// service can resume by resubmitting their jobs.
pub fn spooled_streams(dir: &Path) -> Result<Vec<String>, EngineError> {
    let io = |e: std::io::Error| EngineError::CheckpointIo {
        path: dir.display().to_string(),
        detail: e.to_string(),
    };
    let mut ids = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(io)? {
        let path = entry.map_err(io)?.path();
        if path.extension().and_then(|e| e.to_str()) == Some("ckpt") {
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                ids.push(stem.to_string());
            }
        }
    }
    ids.sort();
    Ok(ids)
}

/// One stream's execution, entirely on the runner thread: wrap the
/// evaluator with the heartbeat, spool checkpoints through the
/// configured store, and self-heal a corrupt/foreign spool snapshot by
/// discarding it and rerunning from scratch (byte-identical by D1 —
/// the snapshot only ever caches prefixes of the same deterministic
/// trial sequence).
fn run_stream(
    job: &CampaignJob,
    spool: &PathBuf,
    config: &SupervisorConfig,
    token: CancelToken,
    beats: Arc<AtomicU64>,
) -> Result<CampaignResult, EngineError> {
    // Both the evaluator and the checkpoint store feed the same
    // liveness counter: a stream deep in retry backoff (or loading a
    // large snapshot at resume) is making progress, not stalling.
    let store: Arc<dyn CheckpointStore> = Arc::new(HeartbeatStore {
        inner: Arc::clone(&config.store),
        beats: Arc::clone(&beats),
    });
    let eval = HeartbeatEval {
        inner: Arc::clone(&job.eval),
        beats,
    };
    let control = RunControl {
        cancel: token,
        checkpoint: Some(
            CheckpointConfig::new(spool)
                .every(config.checkpoint_every)
                .with_store(Arc::clone(&store))
                .with_retry(config.retry.clone()),
        ),
        ..RunControl::default()
    };
    let run = || {
        job.campaign
            .run_controlled(&job.stored, job.tech, &job.sa, &eval, &control)
    };
    match run() {
        Err(EngineError::CheckpointParse { .. }) | Err(EngineError::CheckpointMismatch { .. }) => {
            // The spool file is torn or belongs to a different
            // configuration of this stream id. It cannot help and can
            // only block the stream: discard and run clean.
            store.remove(spool)?;
            run()
        }
        other => other,
    }
}

fn event_loop(
    config: SupervisorConfig,
    shared: Arc<Shared>,
    tx: SyncSender<Event>,
    rx: Receiver<Event>,
) {
    let mut queue: VecDeque<(StreamId, CampaignJob)> = VecDeque::new();
    let mut running: BTreeMap<StreamId, Running> = BTreeMap::new();
    let mut next_gen: u64 = 0;
    let mut shutting_down = false;
    let mut shutdown_deadline: Option<Instant> = None;
    loop {
        match rx.recv_timeout(config.tick) {
            Ok(Event::Submit { id, job }) => {
                if shutting_down {
                    shared.set(&id, |s| s.state = StreamState::Evicted);
                } else {
                    queue.push_back((id, job));
                }
            }
            Ok(Event::Cancel { id }) => {
                if let Some(pos) = queue.iter().position(|(q, _)| *q == id) {
                    queue.remove(pos);
                    shared.set(&id, |s| s.state = StreamState::Cancelled);
                } else if let Some(r) = running.get_mut(&id) {
                    r.token.cancel();
                    if !r.quarantined && r.override_state.is_none() {
                        r.override_state = Some(StreamState::Cancelled);
                    }
                }
            }
            Ok(Event::Evict { id }) => {
                if let Some(pos) = queue.iter().position(|(q, _)| *q == id) {
                    queue.remove(pos);
                    shared.set(&id, |s| s.state = StreamState::Evicted);
                } else if let Some(r) = running.get_mut(&id) {
                    r.token.cancel();
                    if !r.quarantined {
                        r.override_state = Some(StreamState::Evicted);
                    }
                }
            }
            Ok(Event::Done { id, gen, outcome }) => {
                if let Some(r) = running.remove(&id) {
                    if r.gen != gen {
                        // A Done from a superseded runner generation.
                        // `start_queued` defers restarting an id whose
                        // old runner has not drained, so this is pure
                        // defense in depth: put the live entry back and
                        // drop the stale outcome.
                        running.insert(id, r);
                    } else if r.quarantined {
                        // The quarantine decision was published as the
                        // terminal state when the watchdog fired; it is
                        // never rewritten — even for an error drain.
                        // Attach the drained partial outcome only while
                        // the table entry still belongs to this run: a
                        // resubmission of the terminal id replaces the
                        // entry, and this stale outcome must not
                        // clobber the new run's status.
                        shared.set(&id, |s| {
                            if s.state == StreamState::Quarantined {
                                match outcome {
                                    Ok(result) => s.result = Some(result),
                                    Err(e) => s.error = Some(e),
                                }
                            }
                        });
                        // The runner sent Done as its last act; join is
                        // immediate (or the thread is in its epilogue).
                        // maxnvm-lint: allow(C1/thread-join): the runner sent Done as its last act, so this join reaps a thread already past its final send; it cannot stall the loop.
                        let _ = r.handle.join();
                    } else {
                        let state = terminal_state(&r, &outcome);
                        shared.set(&id, |s| {
                            s.state = state;
                            match outcome {
                                Ok(result) => s.result = Some(result),
                                Err(e) => s.error = Some(e),
                            }
                        });
                        // maxnvm-lint: allow(C1/thread-join): the runner sent Done as its last act, so this join reaps a thread already past its final send; it cannot stall the loop.
                        let _ = r.handle.join();
                    }
                }
            }
            Ok(Event::Shutdown) => {
                shutting_down = true;
                shutdown_deadline = Some(Instant::now() + config.shutdown_grace);
                for (id, _) in queue.drain(..) {
                    shared.set(&id, |s| s.state = StreamState::Evicted);
                }
                for r in running.values_mut() {
                    r.token.cancel();
                    if !r.quarantined && r.override_state.is_none() {
                        r.override_state = Some(StreamState::Evicted);
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            // Unreachable while the loop runs — it holds a sender clone
            // itself (`tx`, also cloned into every runner) — but kept
            // as a defensive exit rather than a busy branch if that
            // ever changes. A dropped API handle without an explicit
            // shutdown is covered by `Supervisor`'s `Drop`.
            Err(RecvTimeoutError::Disconnected) => break,
        }
        watchdog_scan(&config, &shared, &mut running);
        if !shutting_down {
            start_queued(
                &config,
                &shared,
                &tx,
                &mut queue,
                &mut running,
                &mut next_gen,
            );
        }
        if shutting_down {
            if running.is_empty() {
                break;
            }
            if let Some(deadline) = shutdown_deadline {
                if Instant::now() >= deadline {
                    // Whatever is left is stalled past quarantine and
                    // past the grace period: detach, report, leave.
                    for (id, r) in std::mem::take(&mut running) {
                        let state = if r.quarantined {
                            StreamState::Quarantined
                        } else {
                            StreamState::Evicted
                        };
                        shared.set(&id, |s| s.state = state);
                        drop(r.handle);
                    }
                    break;
                }
            }
        }
    }
}

/// The terminal state for a drained runner: an explicit
/// quarantine/cancel/evict decision wins over the natural outcome —
/// including error outcomes, so a state a client may already have
/// observed as terminal (quarantine publishes immediately) is never
/// rewritten; absent a decision, disk-full is an eviction (the
/// previous snapshot is still resumable) and any other engine error is
/// a failure.
fn terminal_state(r: &Running, outcome: &Result<CampaignResult, EngineError>) -> StreamState {
    if r.quarantined {
        return StreamState::Quarantined;
    }
    if let Some(state) = r.override_state {
        return state;
    }
    match outcome {
        Ok(result) if result.cancelled => StreamState::Cancelled,
        Ok(_) => StreamState::Done,
        Err(EngineError::CheckpointDiskFull { .. }) => StreamState::Evicted,
        Err(_) => StreamState::Failed,
    }
}

/// Fires the watchdog for any running stream that has made no progress
/// — neither an evaluator call nor a checkpoint-store I/O attempt —
/// within the deadline: cancel its token, mark it quarantined
/// (terminal for clients; the stalled thread drains cooperatively),
/// and free its execution slot immediately. The clock starts at spawn,
/// so the deadline must also cover a stream's pre-first-eval setup
/// (snapshot parse, fault-map build).
fn watchdog_scan(
    config: &SupervisorConfig,
    shared: &Shared,
    running: &mut BTreeMap<StreamId, Running>,
) {
    let now = Instant::now();
    for (id, r) in running.iter_mut() {
        if r.quarantined {
            continue;
        }
        let beats = r.beats.load(Ordering::Relaxed);
        if beats != r.last_beat {
            r.last_beat = beats;
            r.last_progress = now;
        } else if now.duration_since(r.last_progress) >= config.watchdog {
            r.token.cancel();
            r.quarantined = true;
            shared.set(id, |s| s.state = StreamState::Quarantined);
        }
    }
}

/// Starts queued streams while execution slots are free (quarantined
/// streams no longer count against the slots).
///
/// A queued id whose previous runner is still draining (a quarantined
/// stream that was resubmitted before its stalled thread exited) is
/// *deferred*, not started: two runners must never share one spool
/// file, and the old runner's `Done` must never be mistakable for the
/// new one's. The deferred stream starts on a later pass, once the old
/// runner's `Done` retires its `running` entry; later queued streams
/// are not blocked behind it.
fn start_queued(
    config: &SupervisorConfig,
    shared: &Shared,
    tx: &SyncSender<Event>,
    queue: &mut VecDeque<(StreamId, CampaignJob)>,
    running: &mut BTreeMap<StreamId, Running>,
    next_gen: &mut u64,
) {
    loop {
        let active = running.values().filter(|r| !r.quarantined).count();
        if active >= config.max_running.max(1) {
            return;
        }
        let Some(pos) = queue.iter().position(|(id, _)| !running.contains_key(id)) else {
            return;
        };
        let Some((id, job)) = queue.remove(pos) else {
            return;
        };
        let gen = *next_gen;
        *next_gen = next_gen.wrapping_add(1);
        let token = CancelToken::new();
        let beats = Arc::new(AtomicU64::new(0));
        let spool = id.spool_path(&config.spool_dir);
        let runner_token = token.clone();
        let runner_beats = Arc::clone(&beats);
        let runner_tx = tx.clone();
        let runner_id = id.clone();
        let runner_config = config.clone();
        let spawned = std::thread::Builder::new()
            .name(format!("maxnvm-stream-{id}"))
            .spawn(move || {
                let outcome = run_stream(&job, &spool, &runner_config, runner_token, runner_beats);
                // If the loop is already gone (post-grace shutdown),
                // the result is simply dropped — the stream was
                // reported evicted/quarantined.
                let _ = runner_tx.send(Event::Done {
                    id: runner_id,
                    gen,
                    outcome,
                });
            });
        match spawned {
            Ok(handle) => {
                shared.set(&id, |s| s.state = StreamState::Running);
                running.insert(
                    id,
                    Running {
                        gen,
                        token,
                        beats,
                        last_beat: 0,
                        last_progress: Instant::now(),
                        quarantined: false,
                        override_state: None,
                        handle,
                    },
                );
            }
            Err(e) => {
                shared.set(&id, |s| {
                    s.state = StreamState::Failed;
                    s.error = Some(EngineError::Internal {
                        detail: format!("failed to spawn runner thread: {e}"),
                    });
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Rejected;
    use maxnvm_envm::{CellTechnology, SenseAmp};
    use maxnvm_faultsim::Campaign;

    /// A do-nothing evaluator; these tests never run a stream.
    #[derive(Debug)]
    struct NullEval;

    impl AccuracyEval for NullEval {
        fn baseline_error(&self) -> f64 {
            0.0
        }

        fn eval(&self, _mats: &[LayerMatrix]) -> f64 {
            0.0
        }
    }

    fn null_job() -> CampaignJob {
        CampaignJob {
            campaign: Campaign {
                trials: 1,
                seed: 0,
                rate_scale: 1.0,
            },
            stored: Vec::new(),
            tech: CellTechnology::MlcCtt,
            sa: SenseAmp::paper_default(),
            eval: Arc::new(NullEval),
        }
    }

    /// A supervisor with no event loop and an already-full channel, so
    /// `try_send` fails deterministically. The receiver is returned so
    /// the failure is `Full`, not `Disconnected`.
    fn full_channel_supervisor() -> (Supervisor, Receiver<Event>) {
        let (tx, rx) = sync_channel::<Event>(1);
        tx.try_send(Event::Shutdown).expect("fill the only slot");
        let sup = Supervisor {
            shared: Arc::new(Shared {
                table: Mutex::new(BTreeMap::new()),
                cond: Condvar::new(),
                shutting_down: AtomicBool::new(false),
            }),
            tx,
            loop_handle: None,
            capacity: 4,
        };
        (sup, rx)
    }

    #[test]
    fn failed_enqueue_restores_the_prior_terminal_status() {
        let (sup, _rx) = full_channel_supervisor();
        let id = StreamId::new("finished").expect("valid id");
        let prior = StreamStatus {
            state: StreamState::Failed,
            result: None,
            error: Some(EngineError::Internal {
                detail: "previous run's terminal error".to_string(),
            }),
        };
        sup.shared.table.lock().insert(id.clone(), prior.clone());
        // Admission passes (the id is terminal, capacity is free), but
        // the enqueue fails: the prior terminal status must survive the
        // rollback, not be erased.
        let err = sup
            .submit("finished", null_job())
            .expect_err("full channel");
        assert_eq!(err, Rejected::QueueFull { capacity: 4 });
        assert_eq!(sup.status(&id), Some(prior));
    }

    #[test]
    fn failed_enqueue_of_a_new_stream_leaves_no_trace() {
        let (sup, _rx) = full_channel_supervisor();
        let err = sup.submit("fresh", null_job()).expect_err("full channel");
        assert_eq!(err, Rejected::QueueFull { capacity: 4 });
        let id = StreamId::new("fresh").expect("valid id");
        assert_eq!(sup.status(&id), None);
    }
}
