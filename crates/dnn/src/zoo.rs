//! The paper's four evaluation models (Table 2) plus small *trainable*
//! stand-ins.
//!
//! The big four are expressed as [`ModelSpec`]s — per-layer 2-D weight
//! matrix shapes (the NVDLA-compatible mapping of §3.2.1) together with
//! per-layer MAC counts and activation sizes for the performance model.
//! Topologies follow the standard definitions; parameter counts match the
//! paper's Table 2 within a fraction of a percent (exact deltas recorded in
//! `EXPERIMENTS.md`):
//!
//! | model    | ours        | paper       |
//! |----------|-------------|-------------|
//! | LeNet5   |     600,579 |     600,810 |
//! | VGG12    |   7,898,826 |   7,899,840 |
//! | VGG16    | 138,357,544 | 138,084,352 |
//! | ResNet50 |  ~25.6M     |  24,585,472 |
//!
//! Because the ImageNet-scale models cannot be trained in this substrate,
//! their weights are *synthesized* per layer with realistic statistics
//! (Gaussian magnitudes, magnitude-pruned to Table 2's sparsity); the
//! trainable stand-ins ([`lenet_mini`], [`mlp_mini`]) provide end-to-end
//! accuracy measurements for the fault-injection experiments.

use crate::layer::Layer;
use crate::network::{LayerMatrix, Network};
use crate::train::he_init;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// What kind of computation a spec layer performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Convolution with square kernel size `k`.
    Conv {
        /// Kernel side length.
        k: usize,
    },
    /// Fully connected layer.
    FullyConnected,
}

/// One weight-bearing layer of a [`ModelSpec`], in the 2-D mapping the
/// sparse encodings consume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Layer name.
    pub name: String,
    /// Computation kind.
    pub kind: LayerKind,
    /// Matrix rows (output channels / neurons).
    pub rows: usize,
    /// Matrix columns (fan-in: `in_ch*k*k` for conv, `in` for FC).
    pub cols: usize,
    /// Multiply-accumulates to execute this layer once.
    pub macs: u64,
    /// Input activation element count.
    pub in_elems: u64,
    /// Output activation element count.
    pub out_elems: u64,
    /// How many times the layer's weights are streamed per inference.
    /// 1 for CNN layers (fetched once, reused across the feature map);
    /// the timestep count for recurrent layers, whose weights are
    /// re-fetched every step — the low-reuse regime §5.2 says benefits
    /// most from on-chip eNVM.
    pub fetch_passes: u32,
}

impl LayerSpec {
    /// Number of weights in this layer.
    pub fn weights(&self) -> u64 {
        (self.rows * self.cols) as u64
    }

    /// Bias parameters (one per row).
    pub fn biases(&self) -> u64 {
        self.rows as u64
    }

    /// Synthesizes a representative weight matrix for this layer:
    /// Gaussian values, magnitude-pruned to `sparsity`, deterministic per
    /// `seed`. Dimensions are capped at `max_rows`/`max_cols` (aspect
    /// preserved against the true shape) so ImageNet-scale layers never
    /// materialize hundreds of megabytes.
    pub fn sample_matrix(
        &self,
        sparsity: f64,
        seed: u64,
        max_rows: usize,
        max_cols: usize,
    ) -> LayerMatrix {
        assert!((0.0..1.0).contains(&sparsity), "sparsity out of range");
        let rows = self.rows.min(max_rows);
        let cols = self.cols.min(max_cols);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
        let std = (2.0 / self.cols as f32).sqrt();
        let mut data: Vec<f32> = (0..rows * cols)
            .map(|_| {
                let u1: f32 = 1.0 - rng.gen::<f32>();
                let u2: f32 = rng.gen();
                std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
            })
            .collect();
        prune_to_sparsity(&mut data, sparsity);
        LayerMatrix::new(&self.name, rows, cols, data)
    }
}

/// Magnitude-prunes `data` in place so that (approximately) `sparsity` of
/// the entries become exactly zero — the paper's §3.1.2 pruning, without
/// the retraining loop.
// maxnvm-lint: allow(R1/index-arith): the k == 0 and empty-data early returns above guarantee k >= 1 and mags non-empty, so (k-1).min(mags.len()-1) is in range.
pub fn prune_to_sparsity(data: &mut [f32], sparsity: f64) {
    assert!((0.0..1.0).contains(&sparsity), "sparsity out of range");
    if data.is_empty() {
        return;
    }
    let k = ((data.len() as f64) * sparsity).round() as usize;
    if k == 0 {
        return;
    }
    let mut mags: Vec<f32> = data.iter().map(|v| v.abs()).collect();
    mags.sort_by(|a, b| a.total_cmp(b));
    let threshold = mags[(k - 1).min(mags.len() - 1)];
    for v in data.iter_mut() {
        if v.abs() <= threshold {
            *v = 0.0;
        }
    }
}

/// Table 2 facts reported by the paper, carried alongside each spec for
/// comparison printing and as pipeline inputs (sparsity and index bits are
/// used as optimization targets).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaperModelInfo {
    /// Parameter count as printed in Table 2.
    pub reported_params: u64,
    /// Baseline classification error (fraction, not percent).
    pub classification_error: f64,
    /// Iso-training-noise error bound (fraction).
    pub itn_bound: f64,
    /// Cluster index bits (k-means codebook of `2^bits` values).
    pub cluster_index_bits: u8,
    /// Fraction of zero-valued weights after pruning.
    pub sparsity: f64,
}

/// A model described at the storage/performance level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Model name as used in the paper ("LeNet5", "VGG16", ...).
    pub name: String,
    /// Dataset label ("MNIST", "CiFar10", "ImageNet").
    pub dataset: String,
    /// Weight-bearing layers in execution order.
    pub layers: Vec<LayerSpec>,
    /// Paper-reported facts (Table 2).
    pub paper: PaperModelInfo,
}

impl ModelSpec {
    /// Total parameters (weights + biases).
    pub fn params(&self) -> u64 {
        self.layers.iter().map(|l| l.weights() + l.biases()).sum()
    }

    /// Total weights (excluding biases).
    pub fn total_weights(&self) -> u64 {
        self.layers.iter().map(LayerSpec::weights).sum()
    }

    /// Total multiply-accumulates per inference.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Model size in bytes at 16-bit weights (Table 2's "16b Size").
    pub fn size_16b_bytes(&self) -> u64 {
        self.params() * 2
    }

    /// The four models of Table 2, in paper order.
    pub fn paper_models() -> Vec<ModelSpec> {
        vec![lenet5(), vgg12(), vgg16(), resnet50()]
    }
}

/// Helper: build a conv `LayerSpec` given spatial geometry.
#[allow(clippy::too_many_arguments)]
fn conv(
    name: &str,
    out_ch: usize,
    in_ch: usize,
    k: usize,
    in_h: usize,
    in_w: usize,
    out_h: usize,
    out_w: usize,
) -> LayerSpec {
    LayerSpec {
        name: name.to_string(),
        kind: LayerKind::Conv { k },
        rows: out_ch,
        cols: in_ch * k * k,
        macs: (out_ch * in_ch * k * k * out_h * out_w) as u64,
        in_elems: (in_ch * in_h * in_w) as u64,
        out_elems: (out_ch * out_h * out_w) as u64,
        fetch_passes: 1,
    }
}

/// Helper: build a fully connected `LayerSpec`.
fn fc(name: &str, out: usize, inp: usize) -> LayerSpec {
    LayerSpec {
        name: name.to_string(),
        kind: LayerKind::FullyConnected,
        rows: out,
        cols: inp,
        macs: (out * inp) as u64,
        in_elems: inp as u64,
        out_elems: out as u64,
        fetch_passes: 1,
    }
}

/// Helper: a recurrent layer — an FC weight matrix streamed once per
/// timestep (`steps` fetch passes, `steps ×` the MACs and activations).
fn recurrent(name: &str, out: usize, inp: usize, steps: u32) -> LayerSpec {
    LayerSpec {
        name: name.to_string(),
        kind: LayerKind::FullyConnected,
        rows: out,
        cols: inp,
        macs: (out * inp) as u64 * steps as u64,
        in_elems: inp as u64 * steps as u64,
        out_elems: out as u64 * steps as u64,
        fetch_passes: steps,
    }
}

/// A two-layer LSTM keyword spotter (16 timesteps) — the recurrent,
/// low-reuse workload §5.2 argues benefits most from on-chip weights.
/// Each LSTM layer's matrix is the stacked 4-gate weight block.
pub fn keyword_lstm() -> ModelSpec {
    let steps = 16u32;
    let (input, hidden) = (256usize, 512usize);
    ModelSpec {
        name: "KeywordLSTM".into(),
        dataset: "Speech (synthetic)".into(),
        layers: vec![
            recurrent("lstm1", 4 * hidden, input + hidden, steps),
            recurrent("lstm2", 4 * hidden, 2 * hidden, steps),
            fc("fc", 12, hidden),
        ],
        paper: PaperModelInfo {
            reported_params: 0, // not a paper model: an extension workload
            classification_error: 0.05,
            itn_bound: 0.005,
            cluster_index_bits: 5,
            sparsity: 0.7,
        },
    }
}

/// LeNet5 for MNIST (paper variant; 600,579 params vs 600,810 reported).
pub fn lenet5() -> ModelSpec {
    ModelSpec {
        name: "LeNet5".into(),
        dataset: "MNIST".into(),
        layers: vec![
            conv("conv1", 20, 1, 5, 28, 28, 24, 24),
            conv("conv2", 50, 20, 5, 12, 12, 8, 8),
            fc("fc1", 709, 800),
            fc("fc2", 10, 709),
        ],
        paper: PaperModelInfo {
            reported_params: 600_810,
            classification_error: 0.0083,
            itn_bound: 0.0005,
            cluster_index_bits: 4,
            sparsity: 0.899,
        },
    }
}

/// VGG12 for CiFar10 (7,898,826 params vs 7,899,840 reported).
pub fn vgg12() -> ModelSpec {
    let cfg: [(usize, usize, usize); 10] = [
        // (out_ch, in_ch, spatial after this conv's pool boundary handled below)
        (64, 3, 32),
        (64, 64, 32),
        (128, 64, 16),
        (128, 128, 16),
        (256, 128, 8),
        (256, 256, 8),
        (256, 256, 8),
        (512, 256, 4),
        (512, 512, 4),
        (512, 512, 4),
    ];
    let mut layers = Vec::new();
    let mut in_side = 32;
    for (i, &(out_ch, in_ch, side)) in cfg.iter().enumerate() {
        layers.push(conv(
            &format!("conv{}", i + 1),
            out_ch,
            in_ch,
            3,
            in_side,
            in_side,
            side,
            side,
        ));
        in_side = side;
    }
    layers.push(fc("fc1", 128, 512 * 2 * 2));
    layers.push(fc("fc2", 10, 128));
    ModelSpec {
        name: "VGG12".into(),
        dataset: "CiFar10".into(),
        layers,
        paper: PaperModelInfo {
            reported_params: 7_899_840,
            classification_error: 0.1038,
            itn_bound: 0.0040,
            cluster_index_bits: 4,
            sparsity: 0.409,
        },
    }
}

/// Standard VGG16 for ImageNet (138,357,544 params vs 138,084,352
/// reported).
pub fn vgg16() -> ModelSpec {
    // (out_ch, spatial side of the conv's output)
    let cfg: [(usize, usize); 13] = [
        (64, 224),
        (64, 224),
        (128, 112),
        (128, 112),
        (256, 56),
        (256, 56),
        (256, 56),
        (512, 28),
        (512, 28),
        (512, 28),
        (512, 14),
        (512, 14),
        (512, 14),
    ];
    let mut layers = Vec::new();
    let mut in_ch = 3;
    let mut in_side = 224;
    for (i, &(out_ch, side)) in cfg.iter().enumerate() {
        layers.push(conv(
            &format!("conv{}", i + 1),
            out_ch,
            in_ch,
            3,
            in_side,
            in_side,
            side,
            side,
        ));
        in_ch = out_ch;
        in_side = side;
    }
    layers.push(fc("fc6", 4096, 512 * 7 * 7));
    layers.push(fc("fc7", 4096, 4096));
    layers.push(fc("fc8", 1000, 4096));
    ModelSpec {
        name: "VGG16".into(),
        dataset: "ImageNet".into(),
        layers,
        paper: PaperModelInfo {
            reported_params: 138_084_352,
            classification_error: 0.3507,
            itn_bound: 0.0057,
            cluster_index_bits: 6,
            sparsity: 0.811,
        },
    }
}

/// Standard ResNet50 for ImageNet (54 weight layers; ~25.6M params vs
/// 24,585,472 reported — the paper excludes batch-norm parameters, which
/// this spec does not model).
pub fn resnet50() -> ModelSpec {
    let mut layers = Vec::new();
    layers.push(conv("conv1", 64, 3, 7, 224, 224, 112, 112));
    let stage_blocks = [3usize, 4, 6, 3];
    let stage_width = [64usize, 128, 256, 512];
    let stage_side = [56usize, 28, 14, 7];
    let mut in_ch = 64;
    for (s, (&blocks, (&w, &side))) in stage_blocks
        .iter()
        .zip(stage_width.iter().zip(stage_side.iter()))
        .enumerate()
    {
        for b in 0..blocks {
            let tag = format!("s{}b{}", s + 1, b);
            // Bottleneck: 1x1 reduce, 3x3, 1x1 expand (x4).
            layers.push(conv(
                &format!("{tag}_c1"),
                w,
                in_ch,
                1,
                side,
                side,
                side,
                side,
            ));
            layers.push(conv(&format!("{tag}_c2"), w, w, 3, side, side, side, side));
            layers.push(conv(
                &format!("{tag}_c3"),
                w * 4,
                w,
                1,
                side,
                side,
                side,
                side,
            ));
            if b == 0 {
                layers.push(conv(
                    &format!("{tag}_down"),
                    w * 4,
                    in_ch,
                    1,
                    side,
                    side,
                    side,
                    side,
                ));
            }
            in_ch = w * 4;
        }
    }
    layers.push(fc("fc", 1000, 2048));
    ModelSpec {
        name: "ResNet50".into(),
        dataset: "ImageNet".into(),
        layers,
        paper: PaperModelInfo {
            reported_params: 24_585_472,
            classification_error: 0.3115,
            itn_bound: 0.0102,
            cluster_index_bits: 7,
            sparsity: 0.6484,
        },
    }
}

/// A small trainable CNN for the 16×16 synthetic digits — the runnable
/// stand-in for LeNet5 in the fault-injection experiments (Fig. 5).
pub fn lenet_mini(seed: u64) -> Network {
    let mut net = Network::new(
        "lenet-mini",
        vec![
            Layer::conv2d("conv1", 8, 1, 5, 1, 0), // 16 -> 12
            Layer::ReLU,
            Layer::MaxPool2,                        // -> 6
            Layer::conv2d("conv2", 16, 8, 3, 1, 0), // -> 4
            Layer::ReLU,
            Layer::MaxPool2, // -> 2
            Layer::Flatten,
            Layer::linear("fc1", 32, 16 * 2 * 2),
            Layer::ReLU,
            Layer::linear("fc2", 10, 32),
        ],
    );
    he_init(&mut net, seed);
    net
}

/// A small trainable MLP for Gaussian-cluster features.
pub fn mlp_mini(inputs: usize, classes: usize, hidden: usize, seed: u64) -> Network {
    let mut net = Network::new(
        "mlp-mini",
        vec![
            Layer::linear("fc1", hidden, inputs),
            Layer::ReLU,
            Layer::linear("fc2", classes, hidden),
        ],
    );
    he_init(&mut net, seed);
    net
}

/// Converts a trainable [`Network`]'s weights into a [`ModelSpec`]-style
/// description, so the same pipeline APIs work on both.
pub fn spec_from_network(net: &Network, dataset: &str, paper: PaperModelInfo) -> ModelSpec {
    let layers = net
        .weight_matrices()
        .into_iter()
        .map(|m| LayerSpec {
            name: m.name.clone(),
            kind: LayerKind::FullyConnected,
            rows: m.rows,
            cols: m.cols,
            macs: (m.rows * m.cols) as u64,
            in_elems: m.cols as u64,
            out_elems: m.rows as u64,
            fetch_passes: 1,
        })
        .collect();
    ModelSpec {
        name: net.name.clone(),
        dataset: dataset.to_string(),
        layers,
        paper,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lenet5_params_match_paper_within_tolerance() {
        let m = lenet5();
        let delta = (m.params() as f64 - m.paper.reported_params as f64).abs()
            / m.paper.reported_params as f64;
        assert!(
            delta < 0.005,
            "LeNet5 params {} vs paper {}",
            m.params(),
            m.paper.reported_params
        );
        assert_eq!(m.layers.len(), 4, "paper: 4 layers");
    }

    #[test]
    fn vgg12_params_match_paper_within_tolerance() {
        let m = vgg12();
        let delta = (m.params() as f64 - m.paper.reported_params as f64).abs()
            / m.paper.reported_params as f64;
        assert!(
            delta < 0.005,
            "VGG12 params {} vs paper {}",
            m.params(),
            m.paper.reported_params
        );
        assert_eq!(m.layers.len(), 12, "paper: 12 layers");
    }

    #[test]
    fn vgg16_params_match_paper_within_tolerance() {
        let m = vgg16();
        let delta = (m.params() as f64 - m.paper.reported_params as f64).abs()
            / m.paper.reported_params as f64;
        assert!(
            delta < 0.01,
            "VGG16 params {} vs paper {}",
            m.params(),
            m.paper.reported_params
        );
        assert_eq!(m.layers.len(), 16, "paper: 16 layers");
    }

    #[test]
    fn resnet50_matches_paper_shape() {
        let m = resnet50();
        assert_eq!(m.layers.len(), 54, "paper: 54 layers");
        let delta = (m.params() as f64 - m.paper.reported_params as f64).abs()
            / m.paper.reported_params as f64;
        assert!(
            delta < 0.06,
            "ResNet50 params {} vs paper {}",
            m.params(),
            m.paper.reported_params
        );
    }

    #[test]
    fn sixteen_bit_sizes_match_table2_shape() {
        // Table 2 reports 1.26MB / 15.4MB / 270MB / 70MB. Our params×2B
        // gives 1.20 / 15.8 / 277 / ~51 decimal MB — LeNet/VGG12/VGG16
        // land within a few percent; the paper's 70MB ResNet50 row is
        // internally inconsistent with its own 24.6M-parameter count
        // (24.6M × 2B = 49MB), so we only assert the ordering there.
        let mb = |b: u64| b as f64 / 1e6;
        assert!((mb(lenet5().size_16b_bytes()) - 1.26).abs() < 0.15);
        assert!((mb(vgg12().size_16b_bytes()) - 15.4).abs() < 0.8);
        assert!((mb(vgg16().size_16b_bytes()) - 270.0).abs() < 10.0);
        let r = mb(resnet50().size_16b_bytes());
        assert!(r > mb(vgg12().size_16b_bytes()) && r < mb(vgg16().size_16b_bytes()));
    }

    #[test]
    fn macs_are_plausible() {
        // VGG16 ≈ 15.5 GMACs, ResNet50 ≈ 4.1 GMACs.
        let v = vgg16().total_macs() as f64 / 1e9;
        assert!(v > 14.0 && v < 17.0, "VGG16 GMACs {v}");
        let r = resnet50().total_macs() as f64 / 1e9;
        assert!(r > 3.0 && r < 5.0, "ResNet50 GMACs {r}");
    }

    #[test]
    fn prune_hits_target_sparsity() {
        let mut data: Vec<f32> = (1..=1000).map(|i| i as f32 / 1000.0).collect();
        prune_to_sparsity(&mut data, 0.8);
        let zeros = data.iter().filter(|&&v| v == 0.0).count();
        assert!((zeros as f64 / 1000.0 - 0.8).abs() < 0.01, "zeros {zeros}");
    }

    #[test]
    fn prune_keeps_largest_magnitudes() {
        let mut data = vec![-5.0, 0.1, 3.0, -0.2, 4.0];
        prune_to_sparsity(&mut data, 0.4);
        assert_eq!(data, vec![-5.0, 0.0, 3.0, 0.0, 4.0]);
    }

    #[test]
    fn sample_matrix_caps_dimensions_and_hits_sparsity() {
        let spec = vgg16();
        let fc6 = spec.layers.iter().find(|l| l.name == "fc6").unwrap();
        let m = fc6.sample_matrix(0.811, 42, 256, 2048);
        assert_eq!(m.rows, 256);
        assert_eq!(m.cols, 2048);
        assert!(
            (m.sparsity() - 0.811).abs() < 0.01,
            "sparsity {}",
            m.sparsity()
        );
    }

    #[test]
    fn sample_matrix_is_deterministic() {
        let spec = lenet5();
        let a = spec.layers[0].sample_matrix(0.5, 7, 64, 64);
        let b = spec.layers[0].sample_matrix(0.5, 7, 64, 64);
        assert_eq!(a.data, b.data);
    }

    #[test]
    fn keyword_lstm_is_fetch_heavy() {
        let m = keyword_lstm();
        assert_eq!(m.layers.len(), 3);
        // Recurrent layers stream weights every timestep.
        assert_eq!(m.layers[0].fetch_passes, 16);
        assert_eq!(m.layers[2].fetch_passes, 1);
        // MACs scale with the timestep count.
        assert_eq!(
            m.layers[0].macs,
            (m.layers[0].rows * m.layers[0].cols) as u64 * 16
        );
        assert!(m.total_weights() > 3_000_000);
    }

    #[test]
    fn lenet_mini_is_trainable_topology() {
        let net = lenet_mini(3);
        assert!(net.supports_backprop());
        assert!(net.weight_count() > 1000);
    }

    #[test]
    fn spec_from_network_round_trips_shapes() {
        let net = mlp_mini(8, 3, 16, 1);
        let spec = spec_from_network(
            &net,
            "synthetic",
            PaperModelInfo {
                reported_params: 0,
                classification_error: 0.0,
                itn_bound: 0.01,
                cluster_index_bits: 4,
                sparsity: 0.5,
            },
        );
        assert_eq!(spec.layers.len(), 2);
        assert_eq!(spec.total_weights() as usize, net.weight_count());
    }
}
