/root/repo/target/debug/deps/properties-42c531420c46c53d.d: crates/nvdla/tests/properties.rs

/root/repo/target/debug/deps/properties-42c531420c46c53d: crates/nvdla/tests/properties.rs

crates/nvdla/tests/properties.rs:
