/root/repo/target/debug/deps/maxnvm_bits-55955329e882c544.d: crates/bits/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmaxnvm_bits-55955329e882c544.rmeta: crates/bits/src/lib.rs Cargo.toml

crates/bits/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
