/root/repo/target/debug/deps/maxnvm_bench-d79a3585d407f05c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/maxnvm_bench-d79a3585d407f05c: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
