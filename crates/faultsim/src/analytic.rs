//! Closed-form expected-corruption model for layers too large to inject
//! concretely (the ImageNet-scale specs of Table 2).
//!
//! For each structure the expected number of cell faults is
//! `λ = cells × mean_fault_rate(bpc)`; ECC reduces this to the expected
//! *uncorrectable* events. Each structure's faults then translate into
//! corrupted weights according to its §4.2 propagation behaviour:
//!
//! | structure      | damage per fault                                  |
//! |----------------|---------------------------------------------------|
//! | values         | 1 weight, decorrelated                            |
//! | column index   | half the remaining row                            |
//! | row counter    | half the remaining layer (all later rows shift)   |
//! | mask (plain)   | everything after the fault                        |
//! | mask (IdxSync) | half the remaining block (Fig. 4)                 |
//! | sync counter   | half the remaining layer (later blocks shift)     |
//!
//! Decorrelated weights contribute `2·E[w²]` of squared error each, so the
//! aggregate relative weight-MSE is `2 × corrupted_fraction`. The model is
//! validated against the Monte-Carlo path in this module's tests.

use maxnvm_encoding::estimate::{encoded_bits_with_block, LayerGeometry};
use maxnvm_encoding::storage::StorageScheme;
use maxnvm_encoding::StructureKind;
use maxnvm_envm::{CellTechnology, MlcConfig, SenseAmp};
use serde::{Deserialize, Serialize};

/// Expected corruption of one stored layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DamageReport {
    /// Expected injected cell faults across all structures.
    pub expected_cell_faults: f64,
    /// Expected fraction of weights decoding to the wrong value.
    pub corrupted_weight_fraction: f64,
    /// Expected relative weight-MSE (`2 ×` the corrupted fraction, since a
    /// decorrelated replacement doubles the per-weight energy error).
    pub relative_mse: f64,
}

/// Mean per-cell fault rate for a technology at a bits-per-cell setting,
/// including the sense-amp offset.
pub fn mean_rate(tech: CellTechnology, bpc: MlcConfig, sa: &SenseAmp) -> f64 {
    if bpc.bits() > tech.max_bits_per_cell() {
        return f64::INFINITY; // unusable configuration
    }
    tech.cell_model(bpc)
        .with_sense_amp(sa)
        .fault_map()
        .mean_fault_rate()
}

/// Expected uncorrectable fault events after SEC-DED, given raw expected
/// faults `lambda` spread over `cells` cells protected in codewords of
/// `cells_per_cw` cells (Poisson approximation: a codeword with ≥2 faults
/// escapes correction, contributing ~2 residual faults).
fn ecc_residual(lambda: f64, cells: f64, cells_per_cw: f64) -> f64 {
    if cells == 0.0 || lambda == 0.0 {
        return 0.0;
    }
    let ncw = (cells / cells_per_cw).max(1.0);
    let lcw = lambda / ncw;
    let p_ge2 = 1.0 - (-lcw).exp() * (1.0 + lcw);
    2.0 * ncw * p_ge2
}

/// Computes the expected damage for one layer under a scheme.
pub fn layer_damage(
    geom: LayerGeometry,
    index_bits: u8,
    scheme: &StorageScheme,
    tech: CellTechnology,
    sa: &SenseAmp,
) -> DamageReport {
    let breakdown = encoded_bits_with_block(
        geom,
        index_bits,
        scheme.encoding,
        scheme.idx_sync,
        scheme.sync_block_bits,
    );
    let nnz = geom.nnz.max(1) as f64;
    let total = (geom.rows * geom.cols).max(1) as f64;
    let rows = geom.rows.max(1) as f64;
    let blocks = ((geom.rows * geom.cols) as f64 / scheme.sync_block_bits as f64).max(1.0);

    let mut expected_cell_faults = 0.0;
    // Corrupted weights, in units of weights (then normalized).
    let mut corrupted = 0.0f64;
    for &(kind, bits) in &breakdown.per_structure {
        if kind == StructureKind::Centroids || bits == 0 {
            continue; // SLC LUT: fault rates below 1e-10, ignored
        }
        let bpc = scheme.bpc.for_kind(kind);
        let rate = mean_rate(tech, bpc, sa);
        let cells = (bits as f64 / bpc.bits() as f64).ceil();
        let raw_lambda = cells * rate;
        expected_cell_faults += raw_lambda;
        let lambda = if scheme.ecc.covers(kind) {
            let cw_cells = (scheme.ecc_code.data_bits() as f64 / bpc.bits() as f64).max(1.0);
            ecc_residual(raw_lambda, cells, cw_cells)
        } else {
            raw_lambda
        };
        if lambda == 0.0 {
            continue;
        }
        corrupted += match kind {
            StructureKind::Values => lambda,
            StructureKind::ColIndex => lambda * (nnz / rows) / 2.0,
            StructureKind::RowCounter | StructureKind::SyncCounter => {
                // All subsequent rows/blocks shift: half the layer per
                // fault, saturating at the whole layer.
                (1.0 - (-lambda).exp()) * nnz / 2.0
            }
            StructureKind::Mask => {
                if scheme.idx_sync {
                    // Confined to the faulted block's remainder (Fig. 4).
                    lambda * (nnz / blocks) / 2.0
                } else if lambda < 1e-6 {
                    // Taylor guard: 1 - (1-e^-λ)/λ → λ/2 as λ → 0, but the
                    // direct form catastrophically cancels below ~1e-15.
                    lambda / 2.0 * nnz
                } else {
                    // Everything after the first fault: expected surviving
                    // prefix is (1 - e^-λ)/λ of the stream.
                    (1.0 - (1.0 - (-lambda).exp()) / lambda) * nnz
                }
            }
            StructureKind::Centroids => 0.0,
        };
    }
    let corrupted_weight_fraction = (corrupted / total).min(1.0);
    DamageReport {
        expected_cell_faults,
        corrupted_weight_fraction,
        // Relative to the energy of the *non-zero* weights (the reference
        // energy is carried by the nnz entries).
        relative_mse: (2.0 * corrupted / nnz).min(2.0),
    }
}

/// Aggregates per-layer damage into a model-level relative MSE (weighted
/// by non-zero count, i.e. by each layer's share of the weight energy).
pub fn aggregate_mse(layers: &[(LayerGeometry, DamageReport)]) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for (geom, dmg) in layers {
        let w = geom.nnz as f64;
        num += dmg.relative_mse * w;
        den += w;
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::fault_maps;
    use crate::evaluate::ProxyEval;
    use maxnvm_dnn::network::LayerMatrix;
    use maxnvm_encoding::cluster::ClusteredLayer;
    use maxnvm_encoding::EncodingKind;
    use rand::{Rng, SeedableRng};

    fn geom() -> LayerGeometry {
        LayerGeometry::from_sparsity(4096, 8192, 0.8)
    }

    #[test]
    fn slc_everything_is_essentially_fault_free() {
        let scheme = StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::SLC);
        let d = layer_damage(
            geom(),
            6,
            &scheme,
            CellTechnology::SlcRram,
            &SenseAmp::default(),
        );
        assert!(d.relative_mse < 1e-9, "{d:?}");
    }

    #[test]
    fn plain_mask_at_mlc3_is_catastrophic_idxsync_tames_it() {
        let plain = StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::MLC3);
        let mut synced = plain.clone().with_idx_sync();
        // The tiny counter structure is itself alignment-critical; store it
        // in SLC (costs <1% of cells), as the DSE-optimal points do.
        synced.bpc.sync_counter = MlcConfig::SLC;
        let sa = SenseAmp::default();
        let d_plain = layer_damage(geom(), 6, &plain, CellTechnology::MlcCtt, &sa);
        let d_sync = layer_damage(geom(), 6, &synced, CellTechnology::MlcCtt, &sa);
        // ~11M mask cells/3 at ~5e-6 => tens of faults: plain mask loses
        // most of the layer, IdxSync confines damage to a handful of blocks.
        assert!(
            d_plain.relative_mse > 100.0 * d_sync.relative_mse,
            "plain {} vs sync {}",
            d_plain.relative_mse,
            d_sync.relative_mse
        );
    }

    #[test]
    fn ecc_slashes_csr_metadata_damage() {
        let plain = StorageScheme::uniform(EncodingKind::Csr, MlcConfig::MLC3);
        let ecc = plain.clone().with_ecc();
        let sa = SenseAmp::default();
        let d_plain = layer_damage(geom(), 6, &plain, CellTechnology::MlcCtt, &sa);
        let d_ecc = layer_damage(geom(), 6, &ecc, CellTechnology::MlcCtt, &sa);
        assert!(
            d_ecc.relative_mse < d_plain.relative_mse / 20.0,
            "ecc {} vs plain {}",
            d_ecc.relative_mse,
            d_plain.relative_mse
        );
    }

    #[test]
    fn vulnerability_ordering_matches_fig5() {
        // Isolate each structure at MLC3: mask (unprotected) is the most
        // vulnerable, then CSR metadata, then plain values — §4.2's story.
        let sa = SenseAmp::default();
        let tech = CellTechnology::MlcCtt;
        let g = geom();
        let values_only = {
            let mut s = StorageScheme::uniform(EncodingKind::DenseClustered, MlcConfig::SLC);
            s.bpc.values = MlcConfig::MLC3;
            layer_damage(g, 6, &s, tech, &sa).relative_mse
        };
        let mask_only = {
            let mut s = StorageScheme::uniform(EncodingKind::BitMask, MlcConfig::SLC);
            s.bpc.mask = MlcConfig::MLC3;
            layer_damage(g, 6, &s, tech, &sa).relative_mse
        };
        let counter_only = {
            let mut s = StorageScheme::uniform(EncodingKind::Csr, MlcConfig::SLC);
            s.bpc.row_counter = MlcConfig::MLC3;
            layer_damage(g, 6, &s, tech, &sa).relative_mse
        };
        assert!(
            values_only < counter_only && counter_only < mask_only,
            "values {values_only}, counter {counter_only}, mask {mask_only}"
        );
    }

    #[test]
    fn analytic_matches_monte_carlo_on_small_layer() {
        // Compare the analytic expected relative MSE against a Monte-Carlo
        // campaign on a concrete layer, with exaggerated fault rates so
        // the Monte-Carlo mean is stable over few trials.
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let data: Vec<f32> = (0..128 * 256)
            .map(|_| {
                if rng.gen::<f64>() < 0.5 {
                    0.0
                } else {
                    rng.gen::<f32>() + 0.1
                }
            })
            .collect();
        let m = LayerMatrix::new("l", 128, 256, data);
        let c = ClusteredLayer::from_matrix(&m, 4, 1);
        let scheme = StorageScheme::uniform(EncodingKind::Csr, MlcConfig::MLC3);
        let stored = maxnvm_encoding::storage::StoredLayer::store(&c, &scheme);

        let tech = CellTechnology::MlcRram;
        let sa = SenseAmp::new(0.0);
        let scale = 200.0;
        let base_for = fault_maps(tech, &sa);
        let fault_for = move |bpc: MlcConfig| std::sync::Arc::new(base_for(bpc).scaled(scale));
        let proxy = ProxyEval::new(vec![c.reconstruct()], 0.0, 1.0);
        let trials = 60;
        let mut mc_mse = 0.0;
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..trials {
            let (mat, _) = stored.decode_with_faults(&fault_for, &mut rng2);
            mc_mse += proxy.relative_mse(std::slice::from_ref(&mat));
        }
        mc_mse /= trials as f64;

        // Analytic with the same scaled rate: patch via a manual compute.
        let geom = LayerGeometry {
            rows: 128,
            cols: 256,
            nnz: c.nonzeros() as u64,
        };
        let d = {
            // mean_rate uses the unscaled model; emulate scaling by scaling
            // the resulting expected damage linearly is wrong for the
            // saturating terms, so recompute with the scaled rate inline.
            let rate = tech
                .cell_model(MlcConfig::MLC3)
                .fault_map()
                .scaled(scale)
                .mean_fault_rate();
            let bd = encoded_bits_with_block(geom, 4, EncodingKind::Csr, false, 1024);
            let nnz = geom.nnz as f64;
            let rows = geom.rows as f64;
            let mut corrupted = 0.0;
            for &(kind, bits) in &bd.per_structure {
                if kind == StructureKind::Centroids {
                    continue;
                }
                let lambda = (bits as f64 / 3.0).ceil() * rate;
                corrupted += match kind {
                    StructureKind::Values => lambda,
                    StructureKind::ColIndex => lambda * (nnz / rows) / 2.0,
                    StructureKind::RowCounter => (1.0 - (-lambda).exp()) * nnz / 2.0,
                    _ => 0.0,
                };
            }
            (2.0 * corrupted / nnz).min(2.0)
        };
        let ratio = mc_mse / d;
        assert!(
            (0.3..3.0).contains(&ratio),
            "Monte-Carlo {mc_mse} vs analytic {d} (ratio {ratio})"
        );
    }

    #[test]
    fn aggregate_weights_by_layer_size() {
        let g1 = LayerGeometry {
            rows: 1,
            cols: 10,
            nnz: 10,
        };
        let g2 = LayerGeometry {
            rows: 1,
            cols: 10,
            nnz: 90,
        };
        let d = |m| DamageReport {
            expected_cell_faults: 0.0,
            corrupted_weight_fraction: 0.0,
            relative_mse: m,
        };
        let agg = aggregate_mse(&[(g1, d(1.0)), (g2, d(0.0))]);
        assert!((agg - 0.1).abs() < 1e-12);
    }

    #[test]
    fn infeasible_bpc_is_marked_unusable() {
        assert!(mean_rate(
            CellTechnology::SlcRram,
            MlcConfig::MLC3,
            &SenseAmp::default()
        )
        .is_infinite());
    }
}
